"""The database: named tables, ACID-ish transactions, WAL persistence.

Transactions collect *undo* closures (for rollback) and *redo* operation
records (for the write-ahead journal). Commit appends one journal line per
transaction — crash recovery replays the snapshot plus every complete
journal line, so a transaction is either fully visible after recovery or
not at all. Nested ``transaction()`` blocks behave as savepoints: an inner
rollback undoes only the inner operations.

Concurrency model (see DESIGN.md "Concurrent bank core"):

* Transaction frames are **per thread** (``threading.local``), so many
  threads can run transactions concurrently. The internal lock guards
  individual table operations only — it is *not* held across a
  transaction block or during journal I/O.
* Commit durability goes through a **leader-based group commit**:
  committers queue their journal lines and whoever holds the flush lock
  (the *leader*) drains the whole queue into a single
  ``write()+flush()`` (plus ``fsync`` when ``durability="fsync"``),
  waking every committer in the batch only after the shared flush. An
  uncontended commit skips the queue and writes its own line directly —
  single-threaded cost is the same as without group commit. Journal
  format is unchanged — one line per transaction — so recovery replays
  batched and unbatched WALs identically.
* The database does NOT provide row locking: concurrent transactions
  writing the *same* rows must be serialized by the caller (the bank
  holds per-account striped locks across each transaction). Readers that
  race a writer may observe uncommitted state (read-uncommitted); the
  bank's read paths take the same account locks where that matters.
* WAL replay is idempotent over absolute redo ops (replace-on-insert,
  skip-missing on update/delete) so a journal line racing a checkpoint
  can never corrupt recovery.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from repro.db import integrity
from repro.db.faultfs import crashpoint
from repro.db.query import Condition
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.errors import (
    CorruptionError,
    DatabaseError,
    DuplicateError,
    NotFoundError,
    TransactionError,
    TransactionRequiredError,
    ValidationError,
)
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = ["Database"]

_SNAPSHOT_NAME = integrity.SNAPSHOT_NAME
_WAL_NAME = integrity.WAL_NAME
_EPOCH_NAME = integrity.EPOCH_NAME


def _metrics():
    """Lazy obs import: ``repro.obs`` persists through this module
    (``obs.store`` imports ``Database`` at load), so a top-level import
    here would be circular."""
    from repro.obs import metrics

    return metrics


def _log():
    from repro.obs.logging import get_logger

    return get_logger("db.integrity")

#: upper bound on the group-commit linger knob (seconds)
_MAX_LINGER = 0.002


class _TxnFrame:
    __slots__ = ("undo", "redo")

    def __init__(self) -> None:
        self.undo: list = []
        self.redo: list = []


class _CommitTicket:
    """One committer's seat in a group-commit batch."""

    __slots__ = ("event", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.error: Optional[BaseException] = None

    def wait(self) -> None:
        self.event.wait()
        if self.error is not None:
            raise DatabaseError(f"journal write failed: {self.error}") from self.error


#: returned by the uncontended fast path, where the write already happened
_COMPLETED_TICKET = _CommitTicket()
_COMPLETED_TICKET.event.set()


# WAL-path observability (the diagnosis plane, :mod:`repro.obs.diag`):
# when a hook is installed it receives ``hook(kind, seconds, batch)`` for
# each timed phase — ``commit_wait`` (a committer that took the slow
# path and waited on durability performed by a batch leader; the
# uncontended fast path never waits and is not timed), ``linger`` (the
# leader's batch-accumulation wait) and ``flush`` (the actual
# write+flush, with batch size). Disabled, every call site pays a single
# ``is not None`` check.
_wal_wait_hook = None


def set_wal_wait_hook(hook) -> None:
    """Install (or clear, with ``None``) the WAL flush-path hook."""
    global _wal_wait_hook
    _wal_wait_hook = hook


def wal_wait_hook():
    return _wal_wait_hook


def _notify_diag_corruption(exc: BaseException) -> None:
    """Tell any flight recorder a corruption latch just closed; lazy and
    fail-silent — diagnostics never alter the corruption path itself."""
    try:
        from repro.obs import diag as obs_diag

        obs_diag.notify_trigger(
            "corruption", error=type(exc).__name__, message=str(exc)
        )
    except Exception:  # noqa: BLE001
        pass


class _GroupCommitWriter:
    """Leader-based group commit: one committer flushes for the batch.

    A committer enqueues its serialized journal line, then competes for
    the flush lock. Whoever acquires it is the *leader*: it drains every
    record queued by then (its own included, plus — when a ``linger`` is
    configured — anything arriving within that bound, up to
    ``max_batch``), hands the whole batch to ``write_batch`` for a single
    write+flush, and releases every ticket it covered. Committers that
    find their ticket already released when they get the lock were
    covered by the previous leader and return immediately.

    The batching is self-clocking: while a leader is inside a flush —
    especially an ``fsync``, which drops the GIL — later committers pile
    up behind the flush lock with their records queued, and the first
    one in becomes the leader of the accumulated batch. That is where
    the amortization comes from; crucially, an **uncontended** commit
    degenerates to the committer writing its own single record (one lock
    acquisition of overhead, no thread handoff), so single-threaded
    callers pay nothing for the concurrent case's win. The linger knob
    only adds latency to buy bigger batches and defaults to 0.
    """

    def __init__(self, write_batch, linger: float = 0.0, max_batch: int = 128) -> None:
        self._write_batch = write_batch
        self._linger = min(max(linger, 0.0), _MAX_LINGER)
        self._max_batch = max(max_batch, 1)
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._flush_lock = threading.Lock()
        self._stopped = False

    def submit(self, payload: Optional[bytes]) -> _CommitTicket:
        # uncontended fast path: nothing queued, no linger, and the flush
        # lock is free right now — write our own record directly with no
        # ticket and no queue round trip, so a single-threaded committer
        # pays only one uncontended lock over a plain write
        if (
            payload is not None
            and self._linger == 0.0
            and not self._queue
            and self._flush_lock.acquire(blocking=False)
        ):
            try:
                if self._stopped:
                    raise DatabaseError("storage closed")
                hook = _wal_wait_hook
                if hook is None:
                    self._write_batch([payload])
                else:
                    started = time.perf_counter()
                    self._write_batch([payload])
                    hook("flush", time.perf_counter() - started, 1)
                return _COMPLETED_TICKET
            finally:
                self._flush_lock.release()
        # slow path: another committer holds the flush lock (or a linger
        # is configured), so this commit genuinely waits on durability
        # performed by the batch leader — the window ``commit_wait``
        # measures. The uncontended fast path above never waits and is
        # deliberately not timed: it records only its own ``flush``.
        hook = _wal_wait_hook
        started = time.perf_counter() if hook is not None else 0.0
        ticket = _CommitTicket()
        with self._cond:
            if self._stopped:
                raise DatabaseError("storage closed")
            self._queue.append((payload, ticket))
            self._cond.notify()  # wake a lingering leader; the batch grew
        with self._flush_lock:
            if not ticket.event.is_set():
                self._flush_as_leader()
        if hook is not None:
            hook("commit_wait", time.perf_counter() - started, 1)
        return ticket

    def drain(self) -> None:
        """Block until everything enqueued before this call is durable."""
        self.submit(None).wait()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        with self._flush_lock:
            self._flush_as_leader()  # whatever a raced committer left queued

    def _flush_as_leader(self) -> None:
        """Drain the queue and flush it as one batch. Caller holds the
        flush lock; the caller's own record (if any) is still queued —
        FIFO order and the lock guarantee no one else drained it."""
        hook = _wal_wait_hook
        with self._cond:
            if self._linger > 0.0 and not self._stopped:
                started = time.perf_counter() if hook is not None else 0.0
                deadline = time.monotonic() + self._linger
                while len(self._queue) < self._max_batch and not self._stopped:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._cond.wait(remaining)
                if hook is not None:
                    hook("linger", time.perf_counter() - started, len(self._queue))
            batch = [self._queue.popleft() for _ in range(len(self._queue))]
        error: Optional[BaseException] = None
        payloads = [payload for payload, _ in batch if payload is not None]
        if payloads:
            try:
                if hook is None:
                    self._write_batch(payloads)
                else:
                    started = time.perf_counter()
                    self._write_batch(payloads)
                    hook("flush", time.perf_counter() - started, len(payloads))
            except BaseException as exc:  # propagate to every committer
                error = exc
        for _, ticket in batch:
            ticket.error = error
            ticket.event.set()


class Database:
    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        durability: str = "flush",
        group_commit: bool = True,
        commit_linger: float = 0.0,
        max_batch: int = 128,
        wal_integrity: bool = True,
        storage=None,
    ) -> None:
        if durability not in ("flush", "fsync"):
            raise ValidationError("durability must be 'flush' or 'fsync'")
        self._tables: dict[str, Table] = {}
        self._lock = threading.RLock()  # guards table structure + per-op mutations
        self._io_lock = threading.Lock()  # guards the WAL handle
        self._tls = threading.local()
        self._active_txns = 0  # threads with an outermost transaction open
        self._path: Optional[Path] = Path(path) if path is not None else None
        self._wal_handle = None
        self._recovered = False
        self._durability = durability
        self._group_commit = group_commit
        self._commit_linger = commit_linger
        self._max_batch = max_batch
        self._writer: Optional[_GroupCommitWriter] = None
        # replication position: journal lines committed since the last
        # snapshot, and which snapshot generation they belong to (see
        # repro.db.replication for the epoch rules)
        self._wal_seq = 0
        self._snapshot_epoch = 1
        self._replication = None  # Optional[ReplicationLog], attached lazily
        # storage integrity: frame every WAL line with length+CRC32
        # (wal_integrity=False exists for the overhead benchmark only);
        # ``storage`` is a FaultyStorage-compatible shim routing file
        # opens and fsyncs through a disk fault plan in tests
        self._wal_integrity = bool(wal_integrity)
        self._storage = storage
        # once a WAL write raises OSError the handle may hold a torn
        # prefix; further appends would merge into garbage, so the WAL
        # is poisoned until restart/repair (fsyncgate semantics)
        self._wal_poisoned: Optional[str] = None
        self._corruption: Optional[CorruptionError] = None

    # -- schema ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        with self._lock:
            if schema.name in self._tables:
                raise DuplicateError(f"table {schema.name!r} already exists")
            table = Table(schema)
            self._tables[schema.name] = table
            return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NotFoundError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- transactions ----------------------------------------------------------

    def _frames(self) -> list:
        frames = getattr(self._tls, "frames", None)
        if frames is None:
            frames = self._tls.frames = []
        return frames

    @property
    def in_transaction(self) -> bool:
        """True while the *calling thread* is inside a :meth:`transaction`.

        Consumers that must commit atomically with other effects (the
        bank's reply cache writes its row in the same WAL transaction as
        the operation's ledger writes) assert on this instead of silently
        autocommitting a row that could then survive a rollback.
        """
        return bool(getattr(self._tls, "frames", None))

    def require_transaction(self, what: str) -> None:
        """Raise :class:`~repro.errors.TransactionRequiredError` unless a
        :meth:`transaction` block is open on the calling thread.

        *what* names the guarded effect for the error message. Typed (not
        a bare ``RuntimeError``) so the failure survives the RPC boundary
        as itself — the class is in :data:`repro.errors.__all__`, which is
        exactly the set the client-side envelope decoder re-raises by
        class.
        """
        if not self.in_transaction:
            raise TransactionRequiredError(
                f"{what} must run inside a database transaction"
            )

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Atomic block; nested blocks act as savepoints.

        The commit of an outermost block enqueues one journal line with
        the group-commit writer and returns only once that line is on
        disk (shared flush) — so callers may treat return as durability,
        exactly as before group commit.
        """
        frames = self._frames()
        frame = _TxnFrame()
        if not frames:
            with self._lock:
                self._active_txns += 1
        frames.append(frame)
        try:
            yield
        except BaseException:
            with self._lock:
                self._rollback_frame(frame)
            frames.pop()
            if not frames:
                with self._lock:
                    self._active_txns -= 1
            raise
        frames.pop()
        if frames:
            outer = frames[-1]
            outer.undo.extend(frame.undo)
            outer.redo.extend(frame.redo)
        else:
            try:
                self._write_journal(frame.redo)
            finally:
                with self._lock:
                    self._active_txns -= 1

    def _rollback_frame(self, frame: _TxnFrame) -> None:
        for undo in reversed(frame.undo):
            undo()

    def _record(self, undo, redo_op: Optional[dict]) -> Optional[list]:
        """Called under ``self._lock``. Returns ops to autocommit (if any)
        so the caller can journal them *after* releasing the lock — the
        commit wait must never happen while holding the table lock."""
        frames = getattr(self._tls, "frames", None)
        if frames:
            frames[-1].undo.append(undo)
            if redo_op is not None:
                frames[-1].redo.append(redo_op)
            return None
        if redo_op is not None:
            return [redo_op]
        return None

    # -- mutations ---------------------------------------------------------------

    def insert(self, table_name: str, row: dict) -> tuple:
        with self._lock:
            table = self.table(table_name)
            pk = table.insert(row)
            stored = table.get(pk)
            pending = self._record(
                lambda: table.delete(pk),
                {"op": "insert", "table": table_name, "row": stored},
            )
        if pending:
            self._write_journal(pending)
        return pk

    def update(self, table_name: str, pk: tuple, changes: dict) -> None:
        with self._lock:
            table = self.table(table_name)
            before = table.update(pk, changes)
            restore = {k: before[k] for k in changes if k in before}
            pending = self._record(
                lambda: table.update(pk, restore),
                {"op": "update", "table": table_name, "pk": list(pk), "changes": dict(changes)},
            )
        if pending:
            self._write_journal(pending)

    def delete(self, table_name: str, pk: tuple) -> None:
        with self._lock:
            table = self.table(table_name)
            removed = table.delete(pk)
            pending = self._record(
                lambda: table.insert(removed),
                {"op": "delete", "table": table_name, "pk": list(pk)},
            )
        if pending:
            self._write_journal(pending)

    # -- reads --------------------------------------------------------------------

    def get(self, table_name: str, pk: tuple) -> dict:
        with self._lock:
            return self.table(table_name).get(pk)

    def find(self, table_name: str, pk: tuple) -> Optional[dict]:
        with self._lock:
            return self.table(table_name).find(pk)

    def select(
        self,
        table_name: str,
        conditions: Sequence[Condition] = (),
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> list[dict]:
        with self._lock:
            return self.table(table_name).select(conditions, order_by, descending, limit)

    def count(self, table_name: str, conditions: Sequence[Condition] = ()) -> int:
        with self._lock:
            return self.table(table_name).count(conditions)

    # -- persistence ----------------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._path is not None

    def _open_wal(self, wal_file: Path, mode: str):
        if self._storage is not None:
            return self._storage.open(wal_file, mode)
        return open(wal_file, mode)

    def _fsync_handle(self, handle) -> None:
        if self._storage is not None:
            self._storage.fsync(handle)
        else:
            os.fsync(handle.fileno())

    def recover(self) -> int:
        """Load snapshot + journal from the storage path, verifying every byte.

        Must be called after all tables are created and before any
        writes. Returns the number of journal transactions replayed.

        Verification policy (see DESIGN §10): the snapshot's embedded
        manifest (whole-file CRC32 + record count) and every WAL line's
        length+CRC32 frame are checked before anything is applied. A
        torn *final* line — no terminating newline, the expected residue
        of a crash mid-append — is tolerated: it is truncated away,
        logged, and counted (``db.wal_torn_tail``). Anything else that
        fails to verify is *corruption*: the damaged suffix is
        quarantined (``wal.quarantine.gbdb``), a refusal marker
        (``CORRUPT.gbdb``) is left so later recoveries cannot silently
        serve a shortened history, and a typed
        :class:`~repro.errors.CorruptionError` with the exact
        seq/offset is raised instead of replaying garbage.
        """
        if self._path is None:
            raise DatabaseError("no storage path configured")
        with self._lock:
            if self._recovered:
                raise DatabaseError("recover() may only run once")
            self._path.mkdir(parents=True, exist_ok=True)
            marker = integrity.read_marker(self._path)
            if marker is not None:
                self._corruption = CorruptionError(
                    "unresolved corruption marker: "
                    f"{marker.get('reason', 'unknown')} — run `gridbank fsck` "
                    "(--repair --peer ADDR to restore from a healthy peer)",
                    seq=marker.get("seq", -1), offset=marker.get("offset", -1),
                )
                _metrics().counter("db.integrity.corruptions_detected").inc()
                _notify_diag_corruption(self._corruption)
                raise self._corruption
            # a crash mid-atomic-write can strand a *.tmp next to the
            # real file; the real file is still the complete old copy
            for stale in self._path.glob("*.tmp"):
                stale.unlink()
            # the epoch file carries "epoch base_seq": which snapshot
            # generation the local snapshot belongs to and the sequence
            # number it corresponds to (non-zero on a standby, whose
            # snapshot is a mid-stream state dump rather than a local
            # checkpoint)
            base_seq = 0
            epoch_file = self._path / _EPOCH_NAME
            if epoch_file.exists():
                try:
                    parts = epoch_file.read_bytes().split()
                    self._snapshot_epoch = int(parts[0])
                    if len(parts) > 1:
                        base_seq = int(parts[1])
                except (ValueError, IndexError):
                    raise DatabaseError(f"corrupt epoch file {epoch_file}") from None
            snapshot_file = self._path / _SNAPSHOT_NAME
            if snapshot_file.exists():
                try:
                    payload, records = integrity.decode_snapshot(snapshot_file.read_bytes())
                except CorruptionError as exc:
                    self._corruption = exc
                    _metrics().counter("db.integrity.corruptions_detected").inc()
                    _log().error("snapshot.corrupt", path=str(snapshot_file), reason=str(exc))
                    _notify_diag_corruption(exc)
                    raise
                dump = canonical_loads(payload) if payload else {}
                loaded = 0
                for table_name, rows in dump.items():
                    table = self.table(table_name)
                    for row in rows:
                        table.insert(row)
                        loaded += 1
                if records >= 0 and records != loaded:
                    self._corruption = CorruptionError(
                        f"snapshot: manifest promises {records} record(s), decoded {loaded}"
                    )
                    _metrics().counter("db.integrity.corruptions_detected").inc()
                    _notify_diag_corruption(self._corruption)
                    raise self._corruption
            replayed = 0
            wal_file = self._path / _WAL_NAME
            if wal_file.exists():
                scan = integrity.scan_wal(wal_file.read_bytes(), base_seq=base_seq)
                if scan.corruption is not None:
                    # quarantine the damaged suffix, keep the verified
                    # prefix, refuse to serve until an operator (or
                    # fsck --repair) restores the quarantined records
                    integrity.quarantine_wal_suffix(
                        self._path, scan.corruption, scan.valid_bytes
                    )
                    self._corruption = scan.corruption
                    _metrics().counter("db.integrity.corruptions_detected").inc()
                    _log().error(
                        "wal.corrupt", path=str(wal_file),
                        seq=scan.corruption.seq, offset=scan.corruption.offset,
                        quarantined_bytes=len(
                            (self._path / integrity.QUARANTINE_NAME).read_bytes()
                        ) if (self._path / integrity.QUARANTINE_NAME).exists() else 0,
                    )
                    _notify_diag_corruption(scan.corruption)
                    raise scan.corruption
                if scan.torn_bytes:
                    # expected crash residue — but never silent: count it
                    # and truncate so the next append starts a clean line
                    # instead of fusing with the torn bytes
                    with open(wal_file, "r+b") as handle:
                        handle.truncate(scan.valid_bytes)
                        handle.flush()
                        os.fsync(handle.fileno())
                    _metrics().counter("db.wal_torn_tail").inc()
                    _log().warning(
                        "wal.torn_tail", path=str(wal_file),
                        dropped_bytes=scan.torn_bytes, kept_records=len(scan.records),
                    )
                for entry in scan.records:
                    self._apply_ops(entry["ops"])
                    replayed += 1
                _metrics().counter("db.integrity.records_verified").inc(len(scan.records))
            self._wal_seq = base_seq + replayed
            self._wal_handle = self._open_wal(wal_file, "ab")
            if self._group_commit:
                self._writer = _GroupCommitWriter(
                    self._write_batch, linger=self._commit_linger, max_batch=self._max_batch
                )
            self._recovered = True
            return replayed

    def _apply_ops(self, ops: list[dict]) -> None:
        """Replay redo ops. Idempotent: redo values are absolute, so a
        line whose effects already landed in the snapshot (a commit racing
        a checkpoint) re-applies to the same state instead of failing."""
        for op in ops:
            table = self.table(op["table"])
            if op["op"] == "insert":
                row = op["row"]
                pk = table.schema.pk_of(table.schema.validate_row(row))
                if pk in table:
                    table.delete(pk)
                table.insert(row)
            elif op["op"] == "update":
                try:
                    table.update(tuple(op["pk"]), op["changes"])
                except NotFoundError:
                    pass
            elif op["op"] == "delete":
                try:
                    table.delete(tuple(op["pk"]))
                except NotFoundError:
                    pass
            else:
                raise DatabaseError(f"unknown journal op {op['op']!r}")

    def _write_batch(self, payloads: Sequence[bytes]) -> None:
        """One shared write+flush for a whole group-commit batch.

        Any ``OSError`` on the way to disk — short write, failing flush,
        failing fsync — *poisons* the WAL: the handle may hold a torn
        prefix, and appending after it would fuse the next record into
        garbage, so every subsequent commit fails fast until the process
        restarts (recovery truncates the torn bytes) or a repair runs.
        """
        with self._io_lock:
            handle = self._wal_handle
            if handle is None:
                raise DatabaseError("storage closed")
            if self._wal_poisoned is not None:
                raise DatabaseError(
                    f"WAL poisoned by earlier write failure ({self._wal_poisoned}); "
                    "restart to recover"
                )
            crashpoint("db.commit.pre_write")
            try:
                handle.write(b"".join(payloads))
                handle.flush()
                if self._durability == "fsync":
                    self._fsync_handle(handle)
            except OSError as exc:
                self._wal_poisoned = str(exc)
                _metrics().counter("db.wal_write_errors").inc()
                _log().error("wal.write_failed", reason=str(exc))
                raise DatabaseError(f"journal write failed: {exc}") from exc
            crashpoint("db.commit.post_write")
            self._record_committed(payloads)

    def _record_committed(self, payloads: Sequence[bytes]) -> None:
        """Advance the replication position past *payloads*, in the order
        they hit the WAL. Caller holds ``_io_lock``, which is also what
        makes log order identical to file order — the replication stream
        a standby replays IS the byte sequence recovery would replay."""
        log = self._replication
        for payload in payloads:
            self._wal_seq += 1
            if log is not None:
                log.append(self._snapshot_epoch, self._wal_seq, payload)

    def _frame(self, serialized: bytes) -> bytes:
        """One WAL line: CRC32+length framed by default, bare legacy
        newline-terminated JSON when integrity framing is disabled (the
        overhead benchmark's control arm)."""
        if self._wal_integrity:
            return integrity.frame_record(serialized)
        return serialized + b"\n"

    def _write_journal(self, redo_ops: list[dict]) -> None:
        if not redo_ops:
            return
        if self._path is None:
            # in-memory databases have no WAL, but a replicated in-memory
            # primary still ships its committed lines — same serialized
            # form, same ordering lock. The sequence number advances even
            # while no log is attached: enable_replication() must see a
            # truthful base so a standby that missed earlier commits is
            # forced into a snapshot resync rather than silently
            # streaming from a diverged position.
            with self._io_lock:
                if self._replication is not None:
                    payload = self._frame(canonical_dumps({"ops": redo_ops}))
                    self._record_committed([payload])
                else:
                    self._wal_seq += 1
            return
        if self._wal_handle is None:
            if self._recovered:
                raise DatabaseError("storage closed")
            raise DatabaseError("call recover() before writing to a persistent database")
        payload = self._frame(canonical_dumps({"ops": redo_ops}))
        writer = self._writer
        if writer is not None:
            writer.submit(payload).wait()
        else:
            self._write_batch([payload])

    def checkpoint(self) -> None:
        """Write a full snapshot and truncate the journal.

        Refuses (typed :class:`TransactionError`) while ANY thread has a
        transaction open: checkpointing mid-transaction would snapshot
        uncommitted state and truncate the frame's redo ops out of the
        journal, so a crash right after would resurrect half a
        transaction. Holding the table lock for the duration keeps new
        mutations out; draining the group-commit writer first makes sure
        every already-acknowledged commit is in the old journal before it
        is truncated.
        """
        if self._path is None:
            raise DatabaseError("no storage path configured")
        with self._lock:
            if self._active_txns or self.in_transaction:
                raise TransactionError("cannot checkpoint inside a transaction")
            if self._writer is not None:
                self._writer.drain()
            dump = {name: table.all_rows() for name, table in self._tables.items()}
            snapshot_file = self._path / _SNAPSHOT_NAME
            # atomic publication: tmp + flush + fsync + rename + dir
            # fsync. A crash at any crashpoint below leaves either the
            # old complete snapshot or the new complete snapshot — and
            # because WAL replay is idempotent over absolute redo ops, a
            # crash after the rename but before the WAL truncation just
            # re-applies the old journal onto the new snapshot.
            crashpoint("db.checkpoint.pre_write")
            records = sum(len(rows) for rows in dump.values())
            blob = integrity.encode_snapshot(canonical_dumps(dump), records)
            tmp = snapshot_file.with_suffix(snapshot_file.suffix + ".tmp")
            handle = self._open_wal(tmp, "wb")
            try:
                handle.write(blob)
                handle.flush()
                self._fsync_handle(handle)
            finally:
                handle.close()
            crashpoint("db.checkpoint.pre_rename")
            os.replace(tmp, snapshot_file)
            integrity.fsync_dir(self._path)
            crashpoint("db.checkpoint.post_rename")
            with self._io_lock:
                if self._wal_handle is not None:
                    self._wal_handle.close()
                self._wal_handle = self._open_wal(self._path / _WAL_NAME, "wb")
                self._wal_handle.flush()
                self._wal_poisoned = None  # fresh handle, fresh file
                # new snapshot generation: sequence numbers restart and
                # standbys polling the old epoch are told to resync
                self._snapshot_epoch += 1
                self._wal_seq = 0
                integrity.atomic_write(
                    self._path / _EPOCH_NAME, b"%d 0" % self._snapshot_epoch
                )
                if self._replication is not None:
                    self._replication.reset(self._snapshot_epoch, 0)
            crashpoint("db.checkpoint.post_truncate")

    # -- replication --------------------------------------------------------------

    def enable_replication(self):
        """Attach (or return) the :class:`~repro.db.replication.ReplicationLog`
        that records every journal line committed from now on. Lines
        committed *before* attachment are not in the log — a standby that
        needs them bootstraps from :meth:`state_dump` instead."""
        from repro.db.replication import ReplicationLog

        with self._io_lock:
            if self._replication is None:
                self._replication = ReplicationLog(self._snapshot_epoch, self._wal_seq)
            return self._replication

    def replication_position(self) -> tuple:
        """``(snapshot_epoch, wal_seq)`` — how much committed history exists."""
        with self._io_lock:
            return self._snapshot_epoch, self._wal_seq

    def state_dump(self) -> dict:
        """Full-state bootstrap for a standby: every table's rows plus the
        replication position they correspond to.

        Refuses mid-transaction for the same reason :meth:`checkpoint`
        does. An autocommit writer may have mutated a table but not yet
        journaled (the table lock is released before the journal wait),
        so the dump can be *ahead* of ``seq`` by those in-flight lines —
        harmless, because replay is idempotent over absolute redo ops.
        """
        with self._lock:
            if self._active_txns or self.in_transaction:
                raise TransactionError("cannot dump state inside a transaction")
            if self._writer is not None:
                self._writer.drain()
            with self._io_lock:
                return {
                    "epoch": self._snapshot_epoch,
                    "seq": self._wal_seq,
                    "tables": {name: table.all_rows() for name, table in self._tables.items()},
                }

    def load_state(self, dump: dict) -> None:
        """Replace all table contents with *dump* (a :meth:`state_dump`)
        and adopt its replication position. On a persistent database the
        dump is also written down as the local snapshot (and the WAL
        truncated), so a standby restart recovers from local disk into
        the same position it had adopted."""
        with self._lock:
            if self._active_txns or self.in_transaction:
                raise TransactionError("cannot load state inside a transaction")
            if self._writer is not None:
                self._writer.drain()
            for name, rows in dump["tables"].items():
                table = self.table(name)
                for row in table.all_rows():
                    table.delete(table.schema.pk_of(row))
                for row in rows:
                    table.insert(row)
            with self._io_lock:
                self._snapshot_epoch = int(dump["epoch"])
                self._wal_seq = int(dump["seq"])
                if self._replication is not None:
                    self._replication.reset(self._snapshot_epoch, self._wal_seq)
                if self._path is not None and self._recovered:
                    snapshot_file = self._path / _SNAPSHOT_NAME
                    records = sum(len(rows) for rows in dump["tables"].values())
                    integrity.atomic_write(
                        snapshot_file,
                        integrity.encode_snapshot(canonical_dumps(dump["tables"]), records),
                        storage=self._storage,
                    )
                    if self._wal_handle is not None:
                        self._wal_handle.close()
                    self._wal_handle = self._open_wal(self._path / _WAL_NAME, "wb")
                    self._wal_handle.flush()
                    self._wal_poisoned = None  # fresh handle, fresh file
                    integrity.atomic_write(
                        self._path / _EPOCH_NAME,
                        b"%d %d" % (self._snapshot_epoch, self._wal_seq),
                    )

    def apply_replicated(self, seq: int, payload: bytes) -> None:
        """Replay one shipped journal line — the standby-side half of the
        stream. *payload* is the exact bytes the primary wrote to its
        WAL (trailing newline included); it is re-parsed through the
        same decoder recovery uses, applied through the same idempotent
        :meth:`_apply_ops`, and appended verbatim to this database's own
        WAL — which is what makes standby disk state byte-identical and
        lets a promoted standby serve its *own* replication stream.

        The shipped frame is CRC-verified *before* anything is applied:
        a record damaged in flight (or read back damaged from the
        primary's WAL) raises :class:`~repro.errors.CorruptionError`
        here rather than poisoning the standby's ledger."""
        try:
            serialized = integrity.parse_record(payload.rstrip(b"\n"), seq=seq)
        except CorruptionError as exc:
            _metrics().counter("db.integrity.corruptions_detected").inc()
            _notify_diag_corruption(exc)
            raise
        entry = canonical_loads(serialized)
        _metrics().counter("db.integrity.records_verified").inc()
        crashpoint("db.replication.pre_apply")
        with self._lock:
            if seq != self._wal_seq + 1:
                raise DatabaseError(
                    f"replication gap: expected seq {self._wal_seq + 1}, got {seq}"
                )
            self._apply_ops(entry["ops"])
        if self._path is not None:
            self._write_batch([payload])
        else:
            with self._io_lock:
                self._record_committed([payload])
        crashpoint("db.replication.post_apply")

    # -- storage integrity ---------------------------------------------------------

    def verify_storage(self) -> "integrity.IntegrityReport":
        """Re-verify every cold byte (snapshot manifest + all WAL frames).

        Read-only and safe on a live database: the group-commit writer is
        drained and the WAL handle flushed first so the file reflects
        every acknowledged commit, then the on-disk bytes are scanned
        under the I/O lock (commits block for the duration — scrubbing is
        a cold-path operation by design).
        """
        if self._path is None:
            raise DatabaseError("no storage path configured")
        if self._writer is not None:
            self._writer.drain()
        with self._io_lock:
            if self._wal_handle is not None:
                self._wal_handle.flush()
            return integrity.verify_dir(self._path)

    def scrub_once(self) -> "integrity.IntegrityReport":
        """One scrub pass: verify, count, and raise on corruption.

        The raised :class:`~repro.errors.CorruptionError` is also latched
        into :meth:`integrity_status` so health endpoints keep reporting
        the damage until :meth:`clear_corruption` (post-repair).
        """
        report = self.verify_storage()
        metrics = _metrics()
        metrics.counter("db.integrity.scrub_passes").inc()
        metrics.counter("db.integrity.records_verified").inc(
            report.wal_records + max(report.snapshot_records, 0)
        )
        if not report.ok:
            self._corruption = report.corruption
            metrics.counter("db.integrity.corruptions_detected").inc()
            _log().error(
                "scrub.corruption", source=report.corruption_source,
                seq=report.corruption.seq, offset=report.corruption.offset,
            )
            _notify_diag_corruption(report.corruption)
            raise report.corruption
        return report

    def integrity_status(self) -> dict:
        """Corruption state for health endpoints and ``gridbank top``."""
        error = self._corruption
        return {
            "ok": error is None and self._wal_poisoned is None,
            "corruption": str(error) if error is not None else "",
            "seq": error.seq if error is not None else -1,
            "offset": error.offset if error is not None else -1,
            "wal_poisoned": self._wal_poisoned or "",
        }

    def clear_corruption(self) -> None:
        """Forget latched corruption after a successful repair (removes
        the on-disk refusal marker; the quarantine file stays for
        forensics)."""
        self._corruption = None
        self._wal_poisoned = None
        if self._path is not None:
            integrity.clear_marker(self._path)

    def close(self) -> None:
        writer = self._writer
        if writer is not None:
            self._writer = None
            writer.stop()
        with self._io_lock:
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
