"""The database: named tables, ACID-ish transactions, WAL persistence.

Transactions collect *undo* closures (for rollback) and *redo* operation
records (for the write-ahead journal). Commit appends one journal line per
transaction — crash recovery replays the snapshot plus every complete
journal line, so a transaction is either fully visible after recovery or
not at all. Nested ``transaction()`` blocks behave as savepoints: an inner
rollback undoes only the inner operations.

Thread-safe via a single re-entrant lock (the paper's bank is a single
server process; concurrency correctness matters more than parallelism).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from repro.db.query import Condition
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.errors import (
    DatabaseError,
    DuplicateError,
    NotFoundError,
    TransactionError,
    TransactionRequiredError,
    ValidationError,
)
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = ["Database"]

_SNAPSHOT_NAME = "snapshot.gbdb"
_WAL_NAME = "wal.gbdb"


class _TxnFrame:
    __slots__ = ("undo", "redo")

    def __init__(self) -> None:
        self.undo: list = []
        self.redo: list = []


class Database:
    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._tables: dict[str, Table] = {}
        self._lock = threading.RLock()
        self._frames: list[_TxnFrame] = []
        self._path: Optional[Path] = Path(path) if path is not None else None
        self._wal_handle = None
        self._recovered = False

    # -- schema ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        with self._lock:
            if schema.name in self._tables:
                raise DuplicateError(f"table {schema.name!r} already exists")
            table = Table(schema)
            self._tables[schema.name] = table
            return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NotFoundError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- transactions ----------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while inside a :meth:`transaction` block.

        Consumers that must commit atomically with other effects (the
        bank's reply cache writes its row in the same WAL transaction as
        the operation's ledger writes) assert on this instead of silently
        autocommitting a row that could then survive a rollback.
        """
        with self._lock:
            return bool(self._frames)

    def require_transaction(self, what: str) -> None:
        """Raise :class:`~repro.errors.TransactionRequiredError` unless a
        :meth:`transaction` block is open.

        *what* names the guarded effect for the error message. Typed (not
        a bare ``RuntimeError``) so the failure survives the RPC boundary
        as itself — the class is in :data:`repro.errors.__all__`, which is
        exactly the set the client-side envelope decoder re-raises by
        class.
        """
        if not self.in_transaction:
            raise TransactionRequiredError(
                f"{what} must run inside a database transaction"
            )

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Atomic block; nested blocks act as savepoints."""
        with self._lock:
            frame = _TxnFrame()
            self._frames.append(frame)
            try:
                yield
            except BaseException:
                self._rollback_frame(frame)
                self._frames.pop()
                raise
            self._frames.pop()
            if self._frames:
                outer = self._frames[-1]
                outer.undo.extend(frame.undo)
                outer.redo.extend(frame.redo)
            else:
                self._write_journal(frame.redo)

    def _rollback_frame(self, frame: _TxnFrame) -> None:
        for undo in reversed(frame.undo):
            undo()

    def _record(self, undo, redo_op: Optional[dict]) -> None:
        if self._frames:
            self._frames[-1].undo.append(undo)
            if redo_op is not None:
                self._frames[-1].redo.append(redo_op)
        elif redo_op is not None:
            # autocommit: single-op transaction
            self._write_journal([redo_op])

    # -- mutations ---------------------------------------------------------------

    def insert(self, table_name: str, row: dict) -> tuple:
        with self._lock:
            table = self.table(table_name)
            pk = table.insert(row)
            stored = table.get(pk)
            self._record(
                lambda: table.delete(pk),
                {"op": "insert", "table": table_name, "row": stored},
            )
            return pk

    def update(self, table_name: str, pk: tuple, changes: dict) -> None:
        with self._lock:
            table = self.table(table_name)
            before = table.update(pk, changes)
            restore = {k: before[k] for k in changes if k in before}
            self._record(
                lambda: table.update(pk, restore),
                {"op": "update", "table": table_name, "pk": list(pk), "changes": dict(changes)},
            )

    def delete(self, table_name: str, pk: tuple) -> None:
        with self._lock:
            table = self.table(table_name)
            removed = table.delete(pk)
            self._record(
                lambda: table.insert(removed),
                {"op": "delete", "table": table_name, "pk": list(pk)},
            )

    # -- reads --------------------------------------------------------------------

    def get(self, table_name: str, pk: tuple) -> dict:
        with self._lock:
            return self.table(table_name).get(pk)

    def find(self, table_name: str, pk: tuple) -> Optional[dict]:
        with self._lock:
            return self.table(table_name).find(pk)

    def select(
        self,
        table_name: str,
        conditions: Sequence[Condition] = (),
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> list[dict]:
        with self._lock:
            return self.table(table_name).select(conditions, order_by, descending, limit)

    def count(self, table_name: str, conditions: Sequence[Condition] = ()) -> int:
        with self._lock:
            return self.table(table_name).count(conditions)

    # -- persistence ----------------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._path is not None

    def recover(self) -> int:
        """Load snapshot + journal from the storage path.

        Must be called after all tables are created and before any writes.
        Returns the number of journal transactions replayed. A torn final
        journal line (crash mid-write) is skipped.
        """
        if self._path is None:
            raise DatabaseError("no storage path configured")
        with self._lock:
            if self._recovered:
                raise DatabaseError("recover() may only run once")
            self._path.mkdir(parents=True, exist_ok=True)
            snapshot_file = self._path / _SNAPSHOT_NAME
            if snapshot_file.exists():
                dump = canonical_loads(snapshot_file.read_bytes())
                for table_name, rows in dump.items():
                    table = self.table(table_name)
                    for row in rows:
                        table.insert(row)
            replayed = 0
            wal_file = self._path / _WAL_NAME
            if wal_file.exists():
                for line in wal_file.read_bytes().splitlines():
                    if not line:
                        continue
                    try:
                        entry = canonical_loads(line)
                    except ValidationError:
                        break  # torn tail from a crash mid-append
                    self._apply_ops(entry["ops"])
                    replayed += 1
            self._wal_handle = open(wal_file, "ab")
            self._recovered = True
            return replayed

    def _apply_ops(self, ops: list[dict]) -> None:
        for op in ops:
            table = self.table(op["table"])
            if op["op"] == "insert":
                table.insert(op["row"])
            elif op["op"] == "update":
                table.update(tuple(op["pk"]), op["changes"])
            elif op["op"] == "delete":
                table.delete(tuple(op["pk"]))
            else:
                raise DatabaseError(f"unknown journal op {op['op']!r}")

    def _write_journal(self, redo_ops: list[dict]) -> None:
        if not redo_ops or self._path is None:
            return
        if self._wal_handle is None:
            if self._recovered:
                raise DatabaseError("storage closed")
            raise DatabaseError("call recover() before writing to a persistent database")
        self._wal_handle.write(canonical_dumps({"ops": redo_ops}) + b"\n")
        self._wal_handle.flush()

    def checkpoint(self) -> None:
        """Write a full snapshot and truncate the journal."""
        if self._path is None:
            raise DatabaseError("no storage path configured")
        with self._lock:
            if self._frames:
                raise TransactionError("cannot checkpoint inside a transaction")
            dump = {name: table.all_rows() for name, table in self._tables.items()}
            snapshot_file = self._path / _SNAPSHOT_NAME
            tmp = snapshot_file.with_suffix(".tmp")
            tmp.write_bytes(canonical_dumps(dump))
            tmp.replace(snapshot_file)
            if self._wal_handle is not None:
                self._wal_handle.close()
            self._wal_handle = open(self._path / _WAL_NAME, "wb")
            self._wal_handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
