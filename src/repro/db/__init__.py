"""A small relational engine standing in for the paper's MySQL database.

"GB database module is a relational database that stores account and
transaction information" (paper sec 3.2). The GridBank accounts layer needs
typed columns matching the sec 5.1 schemas (VARCHAR, FLOAT, BIGINT
UNSIGNED, TIMESTAMP(14), BLOB), primary keys, secondary indexes for
statement scans, and — critically for an accounting system — atomic
multi-row transactions with rollback and crash-recoverable persistence
(write-ahead journal + snapshots).

Single-node, single-writer, thread-safe; designed for correctness and
testability, not for beating a real RDBMS.
"""

from repro.db.types import (
    ColumnType,
    VarChar,
    Float,
    BigIntUnsigned,
    Integer,
    Timestamp14,
    Blob,
    Boolean,
)
from repro.db.schema import Column, TableSchema
from repro.db.query import Condition, eq, ne, lt, le, gt, ge, between, predicate
from repro.db.table import Table
from repro.db.integrity import IntegrityReport, Scrubber, verify_dir
from repro.db.faultfs import (
    DiskFaultPlan,
    FaultyFile,
    FaultyStorage,
    SimulatedCrashError,
    arm_crashpoint,
    clear_crashpoints,
    crashpoint,
)
from repro.db.database import Database
from repro.db.replication import ReplicationLog

__all__ = [
    "ColumnType",
    "VarChar",
    "Float",
    "BigIntUnsigned",
    "Integer",
    "Timestamp14",
    "Blob",
    "Boolean",
    "Column",
    "TableSchema",
    "Condition",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "between",
    "predicate",
    "Table",
    "Database",
    "ReplicationLog",
    "IntegrityReport",
    "Scrubber",
    "verify_dir",
    "DiskFaultPlan",
    "FaultyFile",
    "FaultyStorage",
    "SimulatedCrashError",
    "arm_crashpoint",
    "clear_crashpoints",
    "crashpoint",
]
