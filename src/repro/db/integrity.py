"""Storage integrity: CRC framing, snapshot manifests, scanning, repair.

The ledger is only as trustworthy as its bytes. This module gives the
database substrate an end-to-end integrity format:

* **WAL framing** — every journal line is wrapped as
  ``GB1 <payload-len> <crc32-hex8> <payload>\\n``. The CRC covers the
  payload bytes; the length makes truncation detectable even when the
  damaged bytes happen to contain a newline. Legacy unframed lines
  (canonical JSON starting with ``{``) are still accepted on read so
  pre-framing WALs recover cleanly.
* **Snapshot manifest** — a snapshot file carries its own whole-file
  checksum and record count in a first-line header:
  ``GBSNAP1 <payload-len> <crc32-hex8> <record-count>\\n<payload>``.
  Embedding the manifest *inside* the file (rather than a sidecar)
  means a single atomic rename publishes payload and manifest together
  — there is no crash window where they can disagree.
* **Torn-tail vs corruption policy** — a final WAL line without a
  terminating newline is a *torn tail*: an expected artifact of
  crashing mid-append, tolerated and truncated. A newline-*terminated*
  line that fails its frame, CRC, or decode is *corruption*: bytes
  that were once durable no longer verify, so recovery must stop,
  quarantine the damaged suffix, and raise a typed
  :class:`~repro.errors.CorruptionError` rather than replay garbage.
* **Atomic publication** — :func:`atomic_write` (tmp + flush + fsync +
  ``os.replace`` + parent-directory fsync) so a crash mid-write can
  never leave a half-written file as the only copy.
* **Scrubbing** — :class:`Scrubber` re-verifies cold bytes on an
  interval so latent corruption (bit rot under a page that is never
  read) is found before a failover depends on it.

Observability imports are deliberately lazy: ``repro.obs`` imports this
package at module load (``obs.store`` persists via ``db.database``), so
a top-level ``from repro.obs import metrics`` here would be circular.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.errors import CorruptionError, ValidationError
from repro.util.serialize import canonical_loads

__all__ = [
    "SNAPSHOT_NAME",
    "WAL_NAME",
    "EPOCH_NAME",
    "QUARANTINE_NAME",
    "MARKER_NAME",
    "crc32_hex",
    "frame_record",
    "parse_record",
    "scan_wal",
    "WalScan",
    "encode_snapshot",
    "decode_snapshot",
    "atomic_write",
    "fsync_dir",
    "verify_dir",
    "IntegrityReport",
    "quarantine_wal_suffix",
    "read_marker",
    "clear_marker",
    "Scrubber",
]

# Canonical on-disk names, shared with Database so fsck and the fault
# tooling address the same files without importing the whole engine.
SNAPSHOT_NAME = "snapshot.gbdb"
WAL_NAME = "wal.gbdb"
EPOCH_NAME = "epoch.gbdb"
QUARANTINE_NAME = "wal.quarantine.gbdb"
MARKER_NAME = "CORRUPT.gbdb"

_WAL_MAGIC = b"GB1"
_SNAP_MAGIC = b"GBSNAP1"


def crc32_hex(payload: bytes) -> bytes:
    """CRC32 of ``payload`` as 8 lowercase hex bytes (fixed width so the
    frame header length is predictable)."""
    return b"%08x" % (zlib.crc32(payload) & 0xFFFFFFFF)


def frame_record(payload: bytes) -> bytes:
    """Wrap one WAL payload in the ``GB1`` length+CRC frame.

    The payload must be newline-free (canonical JSON is); the frame adds
    the single record-terminating newline itself.
    """
    if b"\n" in payload:
        raise ValidationError("WAL payload must not contain newlines")
    return b"%s %d %s %s\n" % (_WAL_MAGIC, len(payload), crc32_hex(payload), payload)


def parse_record(line: bytes, seq: int = -1, offset: int = -1) -> bytes:
    """Verify one newline-stripped WAL line's frame and return its payload.

    Legacy unframed lines (canonical JSON, first byte ``{``) pass
    through untouched so WALs written before the integrity format still
    recover. Anything else — bad magic, bad length, bad CRC — raises
    :class:`CorruptionError` carrying ``seq``/``offset``.
    """
    if line.startswith(_WAL_MAGIC + b" "):
        parts = line.split(b" ", 3)
        if len(parts) != 4:
            raise CorruptionError(
                f"WAL record {seq} at offset {offset}: truncated frame header",
                seq=seq, offset=offset,
            )
        _, length_b, crc_b, payload = parts
        try:
            length = int(length_b)
        except ValueError:
            raise CorruptionError(
                f"WAL record {seq} at offset {offset}: unparsable frame length",
                seq=seq, offset=offset,
            ) from None
        if length != len(payload):
            raise CorruptionError(
                f"WAL record {seq} at offset {offset}: "
                f"length mismatch (header {length}, actual {len(payload)})",
                seq=seq, offset=offset,
            )
        if crc_b != crc32_hex(payload):
            raise CorruptionError(
                f"WAL record {seq} at offset {offset}: CRC32 mismatch",
                seq=seq, offset=offset,
            )
        return payload
    if line.startswith(b"{"):  # legacy unframed canonical JSON
        return line
    raise CorruptionError(
        f"WAL record {seq} at offset {offset}: unrecognized framing",
        seq=seq, offset=offset,
    )


@dataclass
class WalScan:
    """Result of scanning raw WAL bytes.

    ``records`` holds the fully verified, *decoded* journal entries in
    order (frame, CRC, and canonical-JSON decode all passed).
    ``valid_bytes`` is the length of the longest verified prefix —
    recovery truncates the file to this. ``torn_bytes`` counts trailing
    bytes dropped as a torn tail (no terminating newline). When a
    *complete* line fails verification, ``corruption`` carries the
    typed error (seq = 1-based record number, ``base_seq``-offset;
    offset = byte position of the damaged line) and scanning stops.
    """

    records: List[dict] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0
    corruption: Optional[CorruptionError] = None


def scan_wal(data: bytes, base_seq: int = 0) -> WalScan:
    """Walk raw WAL bytes, verifying and decoding each framed line.

    Applies the torn-vs-corrupt policy: only the *final, unterminated*
    line may fail without being corruption. A newline-terminated line
    that fails its frame, CRC, or decode is corruption. ``base_seq``
    offsets the reported record seq so errors name the global commit
    sequence when the caller knows the snapshot's base.
    """
    scan = WalScan()
    offset = 0
    seq = base_seq
    while offset < len(data):
        end = data.find(b"\n", offset)
        if end < 0:  # no terminating newline: torn tail, not corruption
            scan.torn_bytes = len(data) - offset
            break
        line = data[offset:end]
        seq += 1
        try:
            payload = parse_record(line, seq=seq, offset=offset)
            try:
                entry = canonical_loads(payload)
            except ValidationError as exc:
                raise CorruptionError(
                    f"WAL record {seq} at offset {offset}: undecodable payload ({exc})",
                    seq=seq, offset=offset,
                ) from exc
            if not isinstance(entry, dict) or "ops" not in entry:
                raise CorruptionError(
                    f"WAL record {seq} at offset {offset}: payload is not a journal entry",
                    seq=seq, offset=offset,
                )
            scan.records.append(entry)
        except CorruptionError as exc:
            scan.corruption = exc
            break
        offset = end + 1
        scan.valid_bytes = offset
    return scan


def encode_snapshot(payload: bytes, records: int) -> bytes:
    """Prefix ``payload`` with the ``GBSNAP1`` manifest header."""
    return b"%s %d %s %d\n%s" % (
        _SNAP_MAGIC, len(payload), crc32_hex(payload), records, payload,
    )


def decode_snapshot(data: bytes) -> Tuple[bytes, int]:
    """Verify a snapshot file's manifest; return ``(payload, records)``.

    Legacy headerless snapshots (raw canonical JSON) are passed through
    with ``records == -1`` (unknown). Manifest mismatches raise
    :class:`CorruptionError`.
    """
    if not data.startswith(_SNAP_MAGIC + b" "):
        if data.startswith(b"{") or not data:
            return data, -1  # legacy snapshot, no manifest to verify
        raise CorruptionError("snapshot: unrecognized header magic")
    header_end = data.find(b"\n")
    if header_end < 0:
        raise CorruptionError("snapshot: truncated manifest header")
    parts = data[:header_end].split(b" ")
    if len(parts) != 4:
        raise CorruptionError("snapshot: malformed manifest header")
    try:
        length = int(parts[1])
        records = int(parts[3])
    except ValueError:
        raise CorruptionError("snapshot: unparsable manifest header") from None
    payload = data[header_end + 1:]
    if length != len(payload):
        raise CorruptionError(
            f"snapshot: length mismatch (manifest {length}, actual {len(payload)})"
        )
    if parts[2] != crc32_hex(payload):
        raise CorruptionError("snapshot: whole-file CRC32 mismatch")
    return payload, records


def fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: some platforms/filesystems refuse O_RDONLY directory
    fds; the rename itself is still atomic there.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes, storage=None) -> None:
    """Publish ``data`` at ``path`` atomically.

    tmp file + flush + fsync + ``os.replace`` + parent-dir fsync: a
    crash at any point leaves either the old complete file or the new
    complete file, never a torn hybrid. ``storage`` (a
    :class:`~repro.db.faultfs.FaultyStorage`-compatible shim) lets the
    fault plan intercept the write path in tests.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    if storage is not None:
        handle = storage.open(tmp, "wb")
    else:
        handle = open(tmp, "wb")
    try:
        handle.write(data)
        handle.flush()
        if storage is not None:
            storage.fsync(handle)
        else:
            os.fsync(handle.fileno())
    finally:
        handle.close()
    os.replace(tmp, path)
    fsync_dir(path.parent)


@dataclass
class IntegrityReport:
    """What :func:`verify_dir` found in one database directory."""

    ok: bool = True
    snapshot_present: bool = False
    snapshot_records: int = -1
    snapshot_bytes: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    torn_tail_bytes: int = 0
    corruption: Optional[CorruptionError] = None
    corruption_source: str = ""  # "", "snapshot", "wal", "marker"
    marker: Optional[dict] = None
    epoch: int = 0
    base_seq: int = 0

    def describe(self) -> str:
        if self.ok:
            extra = f", torn tail {self.torn_tail_bytes}B" if self.torn_tail_bytes else ""
            return (
                f"clean: snapshot {self.snapshot_records} record(s) "
                f"({self.snapshot_bytes}B), wal {self.wal_records} record(s) "
                f"({self.wal_bytes}B){extra}"
            )
        return f"CORRUPT ({self.corruption_source}): {self.corruption}"


def _read_epoch(directory: Path) -> Tuple[int, int]:
    epoch_file = directory / EPOCH_NAME
    if not epoch_file.exists():
        return 0, 0
    try:
        epoch_b, base_b = epoch_file.read_bytes().split()
        return int(epoch_b), int(base_b)
    except (ValueError, OSError):
        return 0, 0


def verify_dir(directory: Path) -> IntegrityReport:
    """Offline verification of one database directory (fsck's engine).

    Read-only: verifies snapshot manifest and every WAL frame, reports
    the first failure with exact seq/offset, but mutates nothing.
    """
    directory = Path(directory)
    report = IntegrityReport()
    report.epoch, report.base_seq = _read_epoch(directory)

    marker = read_marker(directory)
    if marker is not None:
        report.ok = False
        report.marker = marker
        report.corruption_source = "marker"
        report.corruption = CorruptionError(
            f"unresolved corruption marker: {marker.get('reason', 'unknown')}",
            seq=marker.get("seq", -1), offset=marker.get("offset", -1),
        )
        return report

    snapshot_file = directory / SNAPSHOT_NAME
    if snapshot_file.exists():
        report.snapshot_present = True
        data = snapshot_file.read_bytes()
        report.snapshot_bytes = len(data)
        try:
            _, report.snapshot_records = decode_snapshot(data)
        except CorruptionError as exc:
            report.ok = False
            report.corruption = exc
            report.corruption_source = "snapshot"
            return report

    wal_file = directory / WAL_NAME
    if wal_file.exists():
        data = wal_file.read_bytes()
        report.wal_bytes = len(data)
        scan = scan_wal(data, base_seq=report.base_seq)
        report.wal_records = len(scan.records)
        report.torn_tail_bytes = scan.torn_bytes
        if scan.corruption is not None:
            report.ok = False
            report.corruption = scan.corruption
            report.corruption_source = "wal"
    return report


def quarantine_wal_suffix(directory: Path, error: CorruptionError,
                          valid_bytes: int) -> None:
    """Preserve the damaged WAL suffix and leave a refusal marker.

    The suffix from the first bad byte onward moves to
    ``wal.quarantine.gbdb`` (forensics — never deleted automatically),
    the WAL is truncated to its verified prefix, and ``CORRUPT.gbdb``
    records what happened. Recovery refuses to run while the marker
    exists: an operator (or ``fsck --repair``) must decide whether the
    quarantined records can be restored from a peer before the node
    serves traffic on a silently shortened history.
    """
    directory = Path(directory)
    wal_file = directory / WAL_NAME
    data = wal_file.read_bytes() if wal_file.exists() else b""
    suffix = data[valid_bytes:]
    if suffix:
        (directory / QUARANTINE_NAME).write_bytes(suffix)
    with open(wal_file, "wb") as handle:
        handle.write(data[:valid_bytes])
        handle.flush()
        os.fsync(handle.fileno())
    marker = {
        "reason": str(error),
        "seq": error.seq,
        "offset": error.offset,
        "quarantined_bytes": len(suffix),
    }
    atomic_write(directory / MARKER_NAME,
                 json.dumps(marker, sort_keys=True).encode("utf-8"))


def read_marker(directory: Path) -> Optional[dict]:
    marker_file = Path(directory) / MARKER_NAME
    if not marker_file.exists():
        return None
    try:
        loaded = json.loads(marker_file.read_text("utf-8"))
        return loaded if isinstance(loaded, dict) else {"reason": "unparsable marker"}
    except (ValueError, OSError):
        return {"reason": "unparsable marker"}


def clear_marker(directory: Path) -> None:
    """Remove the corruption marker (quarantine file is kept for forensics)."""
    marker_file = Path(directory) / MARKER_NAME
    try:
        marker_file.unlink()
    except FileNotFoundError:
        pass
    fsync_dir(Path(directory))


class Scrubber:
    """Background thread re-verifying cold storage bytes on an interval.

    Latent corruption — a flipped bit under a page nobody reads — is
    only dangerous if it is discovered *during* a recovery or failover,
    when the healthy copy may already be gone. The scrubber calls
    ``scrub()`` (typically ``Database.scrub_once``) every ``interval``
    seconds; on the first detected corruption it invokes
    ``on_corruption`` (e.g. ``ClusterNode.repair``) and keeps running so
    a repaired node is re-checked on the next pass.
    """

    def __init__(self, scrub: Callable[[], None], interval: float = 30.0,
                 on_corruption: Optional[Callable[[CorruptionError], None]] = None) -> None:
        self._scrub = scrub
        self._interval = max(0.05, float(interval))
        self._on_corruption = on_corruption
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, name="gridbank-scrubber",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._scrub()
            except CorruptionError as exc:
                if self._on_corruption is not None:
                    try:
                        self._on_corruption(exc)
                    except Exception:  # repair failures must not kill the loop
                        pass
            except Exception:
                # Scrubbing is advisory; an unexpected error (e.g. the
                # database closing mid-pass) must not crash the server.
                pass
