"""Replication log: the stream a primary ships to its standbys.

The log retains every committed journal line since the last snapshot,
tagged with the snapshot epoch it belongs to and its 1-based sequence
number within that epoch. A standby streams ``(epoch, seq, payload)``
records and replays each payload through the exact recovery path used
after a crash (:meth:`repro.db.database.Database.apply_replicated`), so
replica state — including the replica's own WAL file — is byte-identical
to the primary's by construction.

Epoch rules:

* The epoch identifies *which snapshot* the sequence numbers are
  relative to. A checkpoint on the primary truncates the WAL, bumps the
  epoch, and resets the log; a standby polling with the old epoch gets
  a ``resync`` answer and re-bootstraps from a fresh state dump.
* A standby whose requested ``from_seq`` predates the log's base (the
  log was attached after some lines were already written, or reset by a
  checkpoint) also gets ``resync`` — the log never invents history.

The log lives entirely in memory: its contents are exactly the WAL
lines since the last snapshot, which recovery would replay from disk
anyway, so a primary restart rebuilds an equivalent stream position
from durable state alone.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.db import integrity

__all__ = ["ReplicationLog", "FETCH_OK", "FETCH_RESYNC"]

FETCH_OK = "ok"
FETCH_RESYNC = "resync"

#: retention guard — a primary that never checkpoints would otherwise
#: grow the log without bound; past this many records the oldest are
#: dropped and slow standbys are forced into a snapshot resync.
_MAX_RETAINED = 100_000


class ReplicationLog:
    """In-memory, condition-guarded tail of committed journal lines."""

    def __init__(self, epoch: int, base_seq: int, max_retained: int = _MAX_RETAINED) -> None:
        self._cond = threading.Condition()
        self._epoch = int(epoch)
        self._base_seq = int(base_seq)  # records held: base_seq+1 .. base_seq+len
        self._records: list[bytes] = []
        self._max_retained = max(int(max_retained), 1)

    # -- primary side -------------------------------------------------------

    def append(self, epoch: int, seq: int, payload: bytes) -> None:
        """Record one committed journal line. Caller (the database, under
        its I/O lock) guarantees *seq* is contiguous within *epoch*."""
        with self._cond:
            if epoch != self._epoch:
                # the database bumped its epoch (checkpoint) without
                # calling reset() first — treat as an implicit reset
                self._epoch = int(epoch)
                self._base_seq = int(seq) - 1
                self._records = []
            self._records.append(payload)
            if len(self._records) > self._max_retained:
                overflow = len(self._records) - self._max_retained
                del self._records[:overflow]
                self._base_seq += overflow
            self._cond.notify_all()

    def reset(self, epoch: int, base_seq: int) -> None:
        """Start a new epoch (checkpoint on the primary, or a state load
        on a standby that may later be promoted)."""
        with self._cond:
            self._epoch = int(epoch)
            self._base_seq = int(base_seq)
            self._records = []
            self._cond.notify_all()

    # -- standby side -------------------------------------------------------

    def position(self) -> tuple[int, int]:
        """``(epoch, last_seq)`` of the newest record the log covers."""
        with self._cond:
            return self._epoch, self._base_seq + len(self._records)

    def fetch(
        self,
        epoch: int,
        from_seq: int,
        max_records: int = 256,
        timeout: float = 0.0,
    ) -> tuple[str, int, int, list]:
        """Long-poll for records after ``(epoch, from_seq)``.

        Returns ``(status, epoch, last_seq, records)`` where *records*
        is a list of ``[seq, payload]`` pairs. ``status`` is
        :data:`FETCH_RESYNC` when the caller's position cannot be served
        from the log (wrong epoch, or history already dropped) — the
        caller must re-bootstrap from a snapshot.
        """
        max_records = max(int(max_records), 1)
        with self._cond:
            if timeout > 0.0 and epoch == self._epoch:
                last = self._base_seq + len(self._records)
                if from_seq >= last:
                    self._cond.wait(timeout)
            last = self._base_seq + len(self._records)
            if epoch != self._epoch or from_seq < self._base_seq:
                return FETCH_RESYNC, self._epoch, last, []
            start = from_seq - self._base_seq
            chunk = self._records[start : start + max_records]
            # verify each frame before shipping: a record damaged after
            # commit (bit rot in this process's heap is unlikely, but the
            # bytes may have been re-read from a damaged WAL) must raise
            # CorruptionError on the serving side, never stream garbage
            # a standby would then durably append
            records = []
            for i, payload in enumerate(chunk):
                integrity.parse_record(payload.rstrip(b"\n"), seq=from_seq + i + 1)
                records.append([from_seq + i + 1, payload])
            return FETCH_OK, self._epoch, last, records

    def __len__(self) -> int:
        with self._cond:
            return len(self._records)
