"""Query conditions — a tiny composable predicate algebra.

Selections take a list of conditions ANDed together. Equality conditions on
indexed columns are served from the index; everything else scans. This is
deliberately the smallest query surface the bank needs (point lookups,
range scans over timestamps for statements, filtered joins done in Python).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["Condition", "eq", "ne", "lt", "le", "gt", "ge", "between", "predicate"]


@dataclass(frozen=True)
class Condition:
    """A single-column (or row-level) predicate.

    ``column`` is None for row-level predicates. ``op`` is informational;
    ``test`` does the work. ``eq_value`` is set only for index-servable
    equality conditions.
    """

    column: Optional[str]
    op: str
    test: Callable[[dict], bool]
    eq_value: Any = None
    is_equality: bool = False

    def __call__(self, row: dict) -> bool:
        return self.test(row)


def eq(column: str, value: Any) -> Condition:
    return Condition(
        column=column,
        op="=",
        test=lambda row: row.get(column) == value,
        eq_value=value,
        is_equality=True,
    )


def ne(column: str, value: Any) -> Condition:
    return Condition(column=column, op="!=", test=lambda row: row.get(column) != value)


def _cmp(column: str, op: str, check: Callable[[Any], bool]) -> Condition:
    def test(row: dict) -> bool:
        value = row.get(column)
        return value is not None and check(value)

    return Condition(column=column, op=op, test=test)


def lt(column: str, value: Any) -> Condition:
    return _cmp(column, "<", lambda v: v < value)


def le(column: str, value: Any) -> Condition:
    return _cmp(column, "<=", lambda v: v <= value)


def gt(column: str, value: Any) -> Condition:
    return _cmp(column, ">", lambda v: v > value)


def ge(column: str, value: Any) -> Condition:
    return _cmp(column, ">=", lambda v: v >= value)


def between(column: str, low: Any, high: Any) -> Condition:
    """Inclusive range — statement queries use this over TIMESTAMP(14)."""
    return _cmp(column, "BETWEEN", lambda v: low <= v <= high)


def predicate(fn: Callable[[dict], bool], description: str = "") -> Condition:
    """Arbitrary row-level predicate (not index-servable)."""
    return Condition(column=None, op=description or "predicate", test=fn)
