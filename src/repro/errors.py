"""Exception hierarchy for the GridBank (GASA) reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors. The hierarchy
mirrors the paper's layering: security failures, protocol failures,
account/funds failures, database failures, and grid/broker failures are
distinct branches.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SecurityError",
    "AuthenticationError",
    "AuthorizationError",
    "CertificateError",
    "SignatureError",
    "ChannelError",
    "DatabaseError",
    "SchemaError",
    "TransactionError",
    "TransactionRequiredError",
    "IntegrityError",
    "CorruptionError",
    "NotFoundError",
    "DuplicateError",
    "BankError",
    "AccountError",
    "InsufficientFundsError",
    "AccountClosedError",
    "NotPrimaryError",
    "WrongShardError",
    "ReplicaStaleError",
    "PaymentError",
    "InstrumentError",
    "DoubleSpendError",
    "ConformanceError",
    "ProtocolError",
    "TransportError",
    "TransportTimeout",
    "RPCError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "Overloaded",
    "RateLimited",
    "GridError",
    "SchedulingError",
    "MeteringError",
    "NegotiationError",
    "PoolExhaustedError",
    "BrokerError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "SettlementError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ValidationError(ReproError, ValueError):
    """A value failed structural or semantic validation."""


# --------------------------------------------------------------------------
# Security layer (crypto / pki / gsi)
# --------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for security-layer failures."""


class AuthenticationError(SecurityError):
    """Peer identity could not be established (GSS handshake failed)."""


class AuthorizationError(SecurityError):
    """Authenticated subject is not permitted to perform the operation."""


class CertificateError(SecurityError):
    """Certificate is malformed, expired, revoked, or chain-invalid."""


class SignatureError(SecurityError):
    """A digital signature failed verification."""


class ChannelError(SecurityError):
    """Secure channel framing, sequencing, or MAC verification failed."""


# --------------------------------------------------------------------------
# Database substrate
# --------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SchemaError(DatabaseError):
    """Table schema definition or row/schema mismatch."""


class TransactionError(DatabaseError):
    """Transaction lifecycle misuse (commit without begin, nested, ...)."""


class TransactionRequiredError(TransactionError):
    """An operation that must commit atomically with other effects was
    invoked outside a :meth:`~repro.db.database.Database.transaction`
    block (the bank's reply cache is the canonical example: a reply row
    autocommitted outside the operation's transaction could survive a
    rollback of the operation itself). Listed in :data:`__all__` so the
    RPC layer re-raises it by class on the client side like every other
    library error."""


class IntegrityError(DatabaseError):
    """Primary-key or uniqueness violation."""


class CorruptionError(DatabaseError):
    """On-disk (or in-flight) storage bytes failed an integrity check.

    Raised when a WAL record's CRC32/length frame does not verify, a
    snapshot's whole-file checksum or record count disagrees with its
    manifest, or a quarantine marker from an earlier detection is still
    present. Carries the first damaged record's 1-based ``seq`` within
    its snapshot epoch and the byte ``offset`` of the damaged region
    (both ``-1`` when not applicable, e.g. snapshot corruption), so an
    operator — or ``gridbank fsck --repair`` — knows exactly which
    suffix must be re-fetched from a healthy peer. A torn *final* WAL
    line is NOT corruption (crash mid-append is expected) and is
    tolerated by recovery; this error means bytes that were once
    durable no longer verify, and replaying them would be garbage.
    """

    def __init__(self, message: str, seq: int = -1, offset: int = -1) -> None:
        super().__init__(message)
        self.seq = int(seq)
        self.offset = int(offset)


class NotFoundError(DatabaseError, KeyError):
    """Row, table, or record does not exist."""


class DuplicateError(IntegrityError):
    """Attempt to create an entity that already exists."""


# --------------------------------------------------------------------------
# Bank (accounts / admin / server)
# --------------------------------------------------------------------------


class BankError(ReproError):
    """Base class for GridBank server-side failures."""


class AccountError(BankError):
    """Account-level operation failure."""


class InsufficientFundsError(AccountError):
    """Available balance plus credit limit cannot cover the request."""


class AccountClosedError(AccountError):
    """Operation attempted on a closed account."""


class NotPrimaryError(BankError):
    """A mutating operation reached a standby (or fenced ex-primary).

    The current primary's address — when the rejecting node knows it —
    is embedded in the message inside a ``[primary=...]`` marker so the
    error survives the RPC layer's by-class, message-only reconstruction
    (:func:`repro.net.message.raise_remote_error` rebuilds errors as
    ``error_class(message)``). Clients use :attr:`primary_address` to
    re-route transparently.
    """

    _MARKER = "[primary="

    @classmethod
    def for_primary(cls, address: str | None, reason: str = "not the primary") -> "NotPrimaryError":
        if address:
            return cls(f"{reason} {cls._MARKER}{address}]")
        return cls(reason)

    @property
    def primary_address(self) -> str | None:
        message = str(self)
        start = message.find(self._MARKER)
        if start < 0:
            return None
        start += len(self._MARKER)
        end = message.find("]", start)
        if end < 0:
            return None
        address = message[start:end].strip()
        return address or None


class WrongShardError(BankError):
    """An operation reached a shard that does not own the account.

    Like :class:`NotPrimaryError`, the routing hint must survive the RPC
    layer's by-class, message-only reconstruction, so the owning shard's
    identity, the rejecting node's shard-map version, and the owner's
    addresses are embedded in the message inside a
    ``[shard=<id>@<version> addrs=<a,b>]`` marker. A shard-aware router
    uses :attr:`shard_id` / :attr:`map_version` / :attr:`addresses` to
    adopt the newer map (rebalance fencing: the old owner bounces
    misrouted ops stamped with the version that moved the range) and
    re-route the call.
    """

    _MARKER = "[shard="

    @classmethod
    def for_shard(
        cls,
        shard_id: str,
        map_version: int,
        addresses: tuple[str, ...] = (),
        reason: str = "account not owned by this shard",
    ) -> "WrongShardError":
        hint = f"{cls._MARKER}{shard_id}@{int(map_version)} addrs={','.join(addresses)}]"
        return cls(f"{reason} {hint}")

    def _hint(self) -> tuple[str, int, tuple[str, ...]] | None:
        message = str(self)
        start = message.find(self._MARKER)
        if start < 0:
            return None
        start += len(self._MARKER)
        end = message.find("]", start)
        if end < 0:
            return None
        body = message[start:end].strip()
        head, _, addr_part = body.partition(" addrs=")
        shard_id, _, version_text = head.partition("@")
        try:
            version = int(version_text)
        except ValueError:
            return None
        addresses = tuple(a.strip() for a in addr_part.split(",") if a.strip())
        return (shard_id.strip(), version, addresses)

    @property
    def shard_id(self) -> str | None:
        hint = self._hint()
        return hint[0] if hint and hint[0] else None

    @property
    def map_version(self) -> int:
        hint = self._hint()
        return hint[1] if hint else -1

    @property
    def addresses(self) -> tuple[str, ...]:
        hint = self._hint()
        return hint[2] if hint else ()


class ReplicaStaleError(BankError):
    """A read reached a standby whose replication lag exceeds the
    configured staleness bound — the answer could be arbitrarily old, so
    the standby refuses rather than serve it silently. Retryable from
    the client's perspective (the standby usually catches up within the
    retry budget), but classified terminal by default so callers opt in
    explicitly."""


# --------------------------------------------------------------------------
# Payments
# --------------------------------------------------------------------------


class PaymentError(ReproError):
    """Base class for payment-protocol failures."""


class InstrumentError(PaymentError):
    """Payment instrument is malformed, expired, or not redeemable."""


class DoubleSpendError(InstrumentError):
    """Instrument (cheque / hash-chain segment) was already redeemed."""


class ConformanceError(PaymentError):
    """Service-rates record and RUR do not conform to each other (sec 2.1)."""


# --------------------------------------------------------------------------
# Network / RPC
# --------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Malformed or out-of-order protocol message."""


class TransportError(ReproError):
    """Message could not be delivered (connection refused, dropped, ...)."""


class TransportTimeout(TransportError):
    """The peer did not answer in time — "slow", not provably "dead".

    The connection's state is unknown (a late response may still be in
    flight), so the transport must be reconnected before reuse; the retry
    classifier treats this as retryable on a fresh connection.
    """


class RPCError(ReproError):
    """Remote procedure call failed; carries the remote error message."""

    def __init__(self, message: str, remote_type: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type


class DeadlineExceeded(RPCError):
    """The per-call deadline expired before the call could complete.

    Raised server-side before dispatch when a request arrives past its
    envelope ``deadline`` (the bank refuses to start work nobody is
    waiting for), and client-side when the retry loop runs out of time.
    Terminal: retrying a call whose deadline passed cannot help.
    """


class CircuitOpenError(ReproError):
    """A circuit breaker is open; the call was rejected without dispatch.

    Deliberately NOT a :class:`TransportError`: the retry classifier must
    treat a fast-failed call as terminal, otherwise retries would burn
    their budget against an endpoint already known to be down.
    """


class Overloaded(ReproError):
    """The server shed this request *before dispatch* to protect itself.

    Raised when the front end's bounded dispatch queue is full (or the
    accept path is at its connection cap). Shedding happens strictly
    before any bank effect, so a re-send with the same idempotency key is
    always safe — the retry classifier treats this as retryable with
    backoff. Deliberately NOT a :class:`TransportError`: the server is
    alive and answering (it sealed and sent this very error), so the
    circuit breaker must count it as a success, not an infrastructure
    failure — opening the breaker on a busy-but-healthy bank would turn
    a load spike into an outage.
    """


class RateLimited(Overloaded):
    """A per-principal token bucket rejected the request.

    Subclass of :class:`Overloaded` so existing shed-handling (retry
    classification, breaker semantics) applies, while clients that want
    to distinguish "the server is busy" from "I specifically am over my
    allowance" still can.
    """


# --------------------------------------------------------------------------
# Grid / broker substrate
# --------------------------------------------------------------------------


class GridError(ReproError):
    """Base class for grid-resource-side failures."""


class SchedulingError(GridError):
    """Local scheduler could not place or run a job."""


class MeteringError(GridError):
    """Grid Resource Meter failed to collect or convert usage."""


class NegotiationError(GridError):
    """Trade negotiation failed to reach agreement."""


class PoolExhaustedError(GridError):
    """No free template account available (sec 2.3)."""


class BrokerError(ReproError):
    """Base class for Grid Resource Broker failures."""


class BudgetExceededError(BrokerError):
    """Campaign cannot proceed without exceeding the user budget."""


class DeadlineExceededError(BrokerError):
    """Campaign cannot complete before the user deadline."""


class SettlementError(BankError):
    """Inter-branch / inter-bank settlement failure (sec 6)."""
