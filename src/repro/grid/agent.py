"""Grid Agent — broker-deployed execution-environment setup.

"[The broker] deploys the Grid Agent responsible for setting up execution
environment on GSP's machine and downloading the application and data
from remote locations if they are not already on the machine" (sec 2.2).

The agent models exactly that: a fixed environment-setup delay plus WAN
transfers for any artifact (application binary, shared dataset) not
already present in the resource's cache — so the *first* job of a
campaign pays the deployment cost and subsequent jobs start immediately.
The agent also "keeps track of resource consumption" (sec 3.2): it
accounts the artifact traffic it generated so the GSP can include it in
the job's network usage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.grid.gsp import GridServiceProvider
from repro.grid.job import Job
from repro.sim.engine import Simulator

__all__ = ["Artifact", "GridAgent"]


@dataclass(frozen=True)
class Artifact:
    """Something the job needs on the machine: an app binary, a dataset."""

    name: str
    size_mb: float
    location: str = "remote"  # informational: where it is fetched from

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("artifact needs a name")
        if self.size_mb < 0:
            raise ValidationError("artifact size must be >= 0")


class GridAgent:
    """One agent per (broker, provider) pair; caches deployed artifacts."""

    def __init__(
        self,
        sim: Simulator,
        gsp: GridServiceProvider,
        wan_bandwidth_mbps: float = 10.0,
        setup_seconds: float = 5.0,
    ) -> None:
        if wan_bandwidth_mbps <= 0:
            raise ValidationError("WAN bandwidth must be positive")
        if setup_seconds < 0:
            raise ValidationError("setup time must be >= 0")
        self.sim = sim
        self.gsp = gsp
        self.wan_bandwidth_mbps = wan_bandwidth_mbps
        self.setup_seconds = setup_seconds
        self._cache: set[str] = set()
        self.downloads = 0
        self.downloaded_mb = 0.0
        self.cache_hits = 0
        self.environments_prepared = 0

    def is_cached(self, artifact: Artifact) -> bool:
        return artifact.name in self._cache

    def transfer_time(self, size_mb: float) -> float:
        return size_mb * 8.0 / self.wan_bandwidth_mbps

    def prepare(self, artifacts: tuple[Artifact, ...] = ()):
        """Simulation process: set up the environment, fetch what's missing.

        Returns (as the process result) the MB actually transferred.
        """
        yield self.setup_seconds
        transferred = 0.0
        for artifact in artifacts:
            if artifact.name in self._cache:
                self.cache_hits += 1
                continue
            if artifact.size_mb > 0:
                yield self.transfer_time(artifact.size_mb)
            self._cache.add(artifact.name)
            self.downloads += 1
            self.downloaded_mb += artifact.size_mb
            transferred += artifact.size_mb
        self.environments_prepared += 1
        return transferred

    def run_job(self, job: Job, rates, artifacts: tuple[Artifact, ...] = (),
                user_host: str = "", ref: str = ""):
        """Deploy, then execute through the GSP (one composed process).

        Artifact traffic the agent generated is added to the job's input
        volume so the meter charges it as I/O, keeping the accounting
        consistent with "the Grid-Agent ... keeps track of resource
        consumption, which can [be] used ... to enforce accounting".
        """
        transferred = yield self.sim.spawn(
            self.prepare(artifacts), name=f"agent-prep-{job.job_id}"
        )
        if transferred:
            job.input_mb += transferred
        session = yield self.sim.spawn(
            self.gsp.serve_job(job, rates, user_host=user_host, ref=ref),
            name=f"agent-serve-{job.job_id}",
        )
        return session
