"""Grid resource models: processing elements, machines, provider sites.

Follows the GridSim/Nimrod-G resource model the paper's group used: a
resource is a set of machines, each with processing elements rated in
MIPS; job runtimes derive from job length (MI) divided by the PE rating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bank.pricing import ResourceDescription
from repro.errors import ValidationError
from repro.rur.conversion import OSFlavor

__all__ = ["ProcessingElement", "Machine", "GridResource"]


@dataclass(frozen=True)
class ProcessingElement:
    pe_id: int
    mips: float

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ValidationError("PE rating must be positive MIPS")


@dataclass(frozen=True)
class Machine:
    machine_id: int
    pes: tuple[ProcessingElement, ...]
    memory_mb: float
    storage_gb: float
    bandwidth_mbps: float
    os_flavor: OSFlavor = OSFlavor.LINUX

    def __post_init__(self) -> None:
        if not self.pes:
            raise ValidationError("machine needs at least one PE")
        for quantity in (self.memory_mb, self.storage_gb, self.bandwidth_mbps):
            if quantity <= 0:
                raise ValidationError("machine capacities must be positive")

    @property
    def num_pes(self) -> int:
        return len(self.pes)

    @property
    def total_mips(self) -> float:
        return sum(pe.mips for pe in self.pes)

    @classmethod
    def uniform(
        cls,
        machine_id: int,
        num_pes: int,
        mips_per_pe: float,
        memory_mb: float = 4096.0,
        storage_gb: float = 500.0,
        bandwidth_mbps: float = 100.0,
        os_flavor: OSFlavor = OSFlavor.LINUX,
    ) -> "Machine":
        pes = tuple(ProcessingElement(pe_id=i, mips=mips_per_pe) for i in range(num_pes))
        return cls(
            machine_id=machine_id,
            pes=pes,
            memory_mb=memory_mb,
            storage_gb=storage_gb,
            bandwidth_mbps=bandwidth_mbps,
            os_flavor=os_flavor,
        )


@dataclass(frozen=True)
class GridResource:
    """A provider site: a named collection of machines with an owner."""

    name: str  # host name, e.g. "cluster.vo-b.example.org"
    owner_subject: str  # GSP Certificate Name
    machines: tuple[Machine, ...]
    host_type: str = "Linux cluster"

    def __post_init__(self) -> None:
        if not self.name or not self.owner_subject:
            raise ValidationError("resource needs a name and an owner subject")
        if not self.machines:
            raise ValidationError("resource needs at least one machine")

    @property
    def num_pes(self) -> int:
        return sum(m.num_pes for m in self.machines)

    @property
    def total_mips(self) -> float:
        return sum(m.total_mips for m in self.machines)

    @property
    def mips_per_pe(self) -> float:
        return self.total_mips / self.num_pes

    @property
    def os_flavor(self) -> OSFlavor:
        return self.machines[0].os_flavor

    def description(self) -> ResourceDescription:
        """Hardware parameters for price estimation (sec 4.2)."""
        return ResourceDescription(
            cpu_speed_mips=self.mips_per_pe,
            num_processors=self.num_pes,
            memory_mb=sum(m.memory_mb for m in self.machines),
            storage_gb=sum(m.storage_gb for m in self.machines),
            bandwidth_mbps=max(m.bandwidth_mbps for m in self.machines),
        )

    @classmethod
    def cluster(
        cls,
        name: str,
        owner_subject: str,
        num_pes: int = 8,
        mips_per_pe: float = 500.0,
        os_flavor: OSFlavor = OSFlavor.LINUX,
        **machine_kwargs,
    ) -> "GridResource":
        machine = Machine.uniform(0, num_pes, mips_per_pe, os_flavor=os_flavor, **machine_kwargs)
        return cls(name=name, owner_subject=owner_subject, machines=(machine,))
