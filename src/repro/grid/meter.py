"""Grid Resource Meter (GRM) — Figure 2's left column.

"The Grid Resource Meter module will interface with local resource
allocation system ... to extract resource usage information. Once GRM
obtains the raw usage statistics, it filters relevant fields in the record
and passes them to the conversion unit, which generates a standard
OS-independent Resource Usage Record."

Also implements the two accounting detail levels of sec 2.1: per-resource
records for protocols that charge incrementally, or one aggregated RUR
"to reflect the charge for the combined GSP's service".
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MeteringError
from repro.grid.job import Job
from repro.obs import metrics as obs_metrics
from repro.rur.aggregate import aggregate_records
from repro.rur.conversion import ConversionUnit, RawUsageRecord
from repro.rur.record import ResourceUsageRecord

__all__ = ["GridResourceMeter"]


class GridResourceMeter:
    def __init__(self, resource_subject: str, resource_host: str, host_type: str = "") -> None:
        self.resource_subject = resource_subject
        self.resource_host = resource_host
        self.host_type = host_type
        self._conversion = ConversionUnit()
        # job_id -> list of (per-resource host, raw record, user host)
        self._raw: dict[str, list[tuple[str, RawUsageRecord]]] = {}
        self._jobs: dict[str, Job] = {}
        self.records_collected = 0

    def record(self, job: Job, raw: RawUsageRecord, from_host: Optional[str] = None) -> None:
        """Individual resource presents its usage record to the GRM."""
        host = from_host or raw.origin_host or self.resource_host
        self._jobs[job.job_id] = job
        self._raw.setdefault(job.job_id, []).append((host, raw))
        self.records_collected += 1
        obs_metrics.counter("grid.meter.raw_records").inc()

    def pending_jobs(self) -> list[str]:
        return sorted(self._raw)

    def per_resource_records(self, job_id: str, user_host: str = "") -> list[ResourceUsageRecord]:
        """Detail level 1: one standard RUR per contributing resource."""
        entries = self._raw.get(job_id)
        if not entries:
            raise MeteringError(f"no raw usage recorded for job {job_id!r}")
        job = self._jobs[job_id]
        return [
            self._conversion.convert(
                raw,
                user_certificate_name=job.user_subject,
                user_host=user_host,
                job_id=job.job_id,
                application_name=job.application_name,
                resource_certificate_name=self.resource_subject,
                resource_host=host,
                host_type=self.host_type,
            )
            for host, raw in entries
        ]

    def collect(self, job_id: str, user_host: str = "", aggregate: bool = True) -> ResourceUsageRecord:
        """Detail level 2 (default): the combined-service RUR.

        Consumes the job's raw records; a second collect for the same job
        raises (usage must be charged exactly once).
        """
        records = self.per_resource_records(job_id, user_host=user_host)
        del self._raw[job_id]
        del self._jobs[job_id]
        obs_metrics.counter("grid.meter.rur_collected").inc()
        if len(records) == 1 and not records[0].aggregated_from:
            merged = records[0]
        elif aggregate:
            merged = aggregate_records(records, self.resource_subject, self.resource_host)
        else:
            raise MeteringError(
                f"job {job_id!r} has {len(records)} per-resource records; "
                "pass aggregate=True or use per_resource_records()"
            )
        return merged
