"""Grid Service Provider assembly — everything inside the GSP box of
Figures 1-2.

One object owns the site's identity, its :class:`GridResource` and local
scheduler, the Grid Resource Meter (wired to the scheduler's completion
hook), the Grid Trade Server, the template-account pool and the GridBank
Charging Module. :meth:`serve_job` is the paper's end-to-end provider-side
flow: admit on payment instrument -> execute -> meter -> charge -> settle
-> free the template account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.api import GridBankAPI
from repro.core.charging import AdmissionTicket, ChargeCalculation, GridBankChargingModule
from repro.core.rates import ServiceRatesRecord
from repro.grid.accounts_pool import TemplateAccountPool
from repro.grid.job import Job
from repro.grid.market import GridMarketDirectory, ServiceListing
from repro.grid.meter import GridResourceMeter
from repro.grid.resource import GridResource
from repro.grid.scheduler import ClusterScheduler, SchedulingPolicy
from repro.grid.trade import GridTradeServer, NegotiationOutcome, PricingModel
from repro.pki.ca import Identity
from repro.sim.engine import Simulator

__all__ = ["GridServiceProvider", "ServiceSession"]


@dataclass
class ServiceSession:
    """Outcome of one served job."""

    job: Job
    rur: object
    calculation: ChargeCalculation
    settlement: dict


class GridServiceProvider:
    def __init__(
        self,
        sim: Simulator,
        identity: Identity,
        resource: GridResource,
        bank_api: GridBankAPI,
        gsp_account_id: str,
        posted_rates: ServiceRatesRecord,
        scheduling_policy: SchedulingPolicy = SchedulingPolicy.SPACE_SHARED,
        pricing_model: PricingModel = PricingModel.POSTED_PRICE,
        pool_size: int = 16,
        failure_rate: float = 0.0,
        rng=None,
    ) -> None:
        self.sim = sim
        self.identity = identity
        self.resource = resource
        self.bank = bank_api
        self.account_id = gsp_account_id
        self.scheduler = ClusterScheduler(
            sim, resource, policy=scheduling_policy, failure_rate=failure_rate, rng=rng
        )
        self.meter = GridResourceMeter(
            resource_subject=identity.subject,
            resource_host=resource.name,
            host_type=resource.host_type,
        )
        self.scheduler.on_complete = self.meter.record
        self.trade_server = GridTradeServer(identity, posted_rates, model=pricing_model)
        self.pool = TemplateAccountPool(pool_size)
        self.gbcm = GridBankChargingModule(identity, bank_api, self.pool, gsp_account_id)
        self.sessions: list[ServiceSession] = []

    @property
    def subject(self) -> str:
        return self.identity.subject

    @property
    def address(self) -> str:
        return f"{self.resource.name}/gts"

    # -- discovery -----------------------------------------------------------

    def advertise(self, gmd: GridMarketDirectory) -> ServiceListing:
        listing = ServiceListing(
            provider_subject=self.subject,
            resource_name=self.resource.name,
            address=self.address,
            description=self.resource.description(),
            posted_rates=self.trade_server.current_rates(),
        )
        gmd.advertise(listing)
        return listing

    def refresh_advertisement(self, gmd: GridMarketDirectory) -> None:
        gmd.update(
            ServiceListing(
                provider_subject=self.subject,
                resource_name=self.resource.name,
                address=self.address,
                description=self.resource.description(),
                posted_rates=self.trade_server.current_rates(),
            )
        )

    # -- trade ------------------------------------------------------------------

    def negotiate(self, bid_fraction: Optional[float] = None) -> NegotiationOutcome:
        return self.trade_server.negotiate(bid_fraction=bid_fraction)

    # -- admission + execution (sec 2.3 flow) --------------------------------------

    def admit(self, subject: str, instrument=None, ref: str = "") -> AdmissionTicket:
        return self.gbcm.admit(subject, instrument, ref=ref)

    def serve_job(self, job: Job, rates: ServiceRatesRecord, user_host: str = "",
                  ref: str = ""):
        """Simulation process: execute, meter, charge, settle, release.

        Spawn with ``sim.spawn(gsp.serve_job(...))``; the process result is
        a :class:`ServiceSession`. The engagement (default: the consumer's
        subject) must already be admitted.
        """
        ref = ref or job.user_subject
        ticket = self.gbcm._ticket(ref)  # fails fast if not admitted
        job.resource_name = self.resource.name
        execution = self.scheduler.submit(job)
        yield execution
        rur = self.meter.collect(job.job_id, user_host=user_host)
        calculation, settlement = self.gbcm.settle(ticket.ref, rur, rates)
        session = ServiceSession(job=job, rur=rur, calculation=calculation, settlement=settlement)
        self.sessions.append(session)
        return session
