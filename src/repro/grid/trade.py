"""Grid Trade Server (GTS) — service-rate negotiation (Figures 1-2).

"Resource providers ... run Grid Trade Service used by Grid Resource
Broker to negotiate service cost" (sec 1); "GBCM obtains service rates for
the user from the Grid Trade Server" (sec 2.1). Negotiation protocols come
from the GRACE framework the paper builds on; three are implemented:

* **posted price** — take it or leave it;
* **commodity market** — the posted price scaled by a demand factor the
  provider adjusts with utilization (see :mod:`repro.core.economy`);
* **bargaining** — alternating offers: the broker bids a fraction of the
  posted rate, the GTS concedes toward its reserve price each round, and
  the deal closes when bid >= ask.

The agreed rates are returned GSP-signed so the later charge calculation
is non-repudiable against what was negotiated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.rates import ServiceRatesRecord
from repro.crypto.signature import Signed
from repro.errors import NegotiationError, ValidationError
from repro.pki.ca import Identity

__all__ = ["PricingModel", "NegotiationOutcome", "GridTradeServer"]


class PricingModel(enum.Enum):
    POSTED_PRICE = "posted-price"
    COMMODITY_MARKET = "commodity-market"
    BARGAINING = "bargaining"


@dataclass(frozen=True)
class NegotiationOutcome:
    """An agreed deal: GSP-signed rates plus how we got there."""

    rates: ServiceRatesRecord
    signed_rates: Signed
    rounds: int
    model: PricingModel

    def verify(self, gsp_public_key) -> bool:
        return self.signed_rates.check(gsp_public_key)


class GridTradeServer:
    def __init__(
        self,
        identity: Identity,
        posted_rates: ServiceRatesRecord,
        model: PricingModel = PricingModel.POSTED_PRICE,
        reserve_fraction: float = 0.6,
        concession_per_round: float = 0.1,
        max_rounds: int = 10,
    ) -> None:
        if not 0.0 < reserve_fraction <= 1.0:
            raise ValidationError("reserve fraction must be in (0, 1]")
        if concession_per_round <= 0:
            raise ValidationError("concession must be positive")
        self.identity = identity
        self.posted_rates = posted_rates
        self.model = model
        self.reserve_fraction = reserve_fraction
        self.concession_per_round = concession_per_round
        self.max_rounds = max_rounds
        self.demand_factor = 1.0  # adjusted by the economy loop
        self.negotiations = 0
        self.failed_negotiations = 0

    # -- provider-side price maintenance ---------------------------------------

    def set_demand_factor(self, factor: float) -> None:
        if factor <= 0:
            raise ValidationError("demand factor must be positive")
        self.demand_factor = factor

    def current_rates(self) -> ServiceRatesRecord:
        if self.model is PricingModel.COMMODITY_MARKET:
            return self.posted_rates.scaled(self.demand_factor)
        return self.posted_rates

    # -- negotiation ----------------------------------------------------------------

    def negotiate(self, bid_fraction: Optional[float] = None) -> NegotiationOutcome:
        """Negotiate rates; *bid_fraction* is the broker's opening bid as a
        fraction of the posted rate (bargaining model only).

        Raises :class:`NegotiationError` if no agreement is reached within
        ``max_rounds``.
        """
        self.negotiations += 1
        if self.model in (PricingModel.POSTED_PRICE, PricingModel.COMMODITY_MARKET):
            rates = self.current_rates()
            return self._close(rates, rounds=1)

        # Bargaining: broker raises its bid 5%/round, GTS concedes toward
        # its reserve price.
        bid = bid_fraction if bid_fraction is not None else 0.5
        if bid <= 0:
            raise ValidationError("opening bid must be positive")
        ask = 1.0
        for round_number in range(1, self.max_rounds + 1):
            if bid >= ask or abs(ask - bid) < 1e-9:
                agreed = (ask + bid) / 2 if bid > ask else ask
                return self._close(self.posted_rates.scaled(agreed), rounds=round_number)
            ask = max(self.reserve_fraction, ask - self.concession_per_round)
            bid = min(1.0, bid * 1.05)
            if bid >= ask:
                return self._close(self.posted_rates.scaled(ask), rounds=round_number)
        self.failed_negotiations += 1
        raise NegotiationError(
            f"no agreement after {self.max_rounds} rounds (ask {ask:.2f}, bid {bid:.2f})"
        )

    def _close(self, rates: ServiceRatesRecord, rounds: int) -> NegotiationOutcome:
        signed = Signed.make(self.identity.private_key, rates.to_dict(), signer=self.identity.subject)
        return NegotiationOutcome(rates=rates, signed_rates=signed, rounds=rounds, model=self.model)
