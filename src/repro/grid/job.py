"""Jobs: the unit of work the broker submits and the meter accounts.

Nimrod-G style: a job has a length in millions of instructions (MI), data
volumes to stage in/out, and memory/storage footprints. Runtime on a PE is
``length_mi / pe_mips`` seconds (space-shared), stretched under
time-sharing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ValidationError

__all__ = ["JobStatus", "Job"]


class JobStatus(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Job:
    job_id: str
    user_subject: str
    application_name: str
    length_mi: float
    input_mb: float = 0.0
    output_mb: float = 0.0
    memory_mb: float = 64.0
    storage_mb: float = 0.0
    status: JobStatus = JobStatus.CREATED
    # filled in during execution
    resource_name: str = ""
    local_job_id: str = ""
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # parameter-sweep provenance (Nimrod-G parameterized applications)
    parameters: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.job_id or not self.user_subject:
            raise ValidationError("job needs an id and a user subject")
        if self.length_mi <= 0:
            raise ValidationError("job length must be positive MI")
        for quantity in (self.input_mb, self.output_mb, self.memory_mb, self.storage_mb):
            if quantity < 0:
                raise ValidationError("job data quantities must be >= 0")

    def runtime_on(self, pe_mips: float) -> float:
        """Dedicated-PE runtime in seconds."""
        if pe_mips <= 0:
            raise ValidationError("PE rating must be positive")
        return self.length_mi / pe_mips

    def transfer_time(self, bandwidth_mbps: float) -> float:
        """Stage-in + stage-out time in seconds at *bandwidth_mbps*."""
        if bandwidth_mbps <= 0:
            raise ValidationError("bandwidth must be positive")
        total_mb = self.input_mb + self.output_mb
        return total_mb * 8.0 / bandwidth_mbps

    @property
    def total_io_mb(self) -> float:
        return self.input_mb + self.output_mb

    def mark(self, status: JobStatus, at: Optional[float] = None) -> None:
        self.status = status
        if status is JobStatus.QUEUED:
            self.submitted_at = at
        elif status is JobStatus.RUNNING:
            self.started_at = at
        elif status in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED):
            self.finished_at = at
