"""Grid Market Directory (GMD) — service discovery (Figure 1).

"Resource providers advertise their services with the discovery service"
(sec 1); "The GRB interacts with GSP's Grid Trading Service (GTS) or Grid
Market Directory (GMD) to establish the cost of services" (sec 2). The
GMD is a queryable registry of provider advertisements: who offers what
hardware at which posted rates, reachable at which address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bank.pricing import ResourceDescription
from repro.core.rates import ServiceRatesRecord
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.util.money import Credits

__all__ = ["ServiceListing", "GridMarketDirectory"]


@dataclass(frozen=True)
class ServiceListing:
    provider_subject: str
    resource_name: str
    address: str  # where the provider's service endpoint listens
    description: ResourceDescription
    posted_rates: ServiceRatesRecord

    @property
    def cpu_rate(self) -> Credits:
        from repro.util.money import ZERO

        return self.posted_rates.rates.get("cpu_time_s", ZERO)


class GridMarketDirectory:
    def __init__(self) -> None:
        self._listings: dict[str, ServiceListing] = {}
        self.queries_served = 0

    def advertise(self, listing: ServiceListing) -> None:
        if not listing.resource_name:
            raise ValidationError("listing needs a resource name")
        if listing.resource_name in self._listings:
            raise DuplicateError(f"resource {listing.resource_name!r} already advertised")
        self._listings[listing.resource_name] = listing

    def update(self, listing: ServiceListing) -> None:
        """Refresh an advertisement (e.g. after a price change)."""
        if listing.resource_name not in self._listings:
            raise NotFoundError(f"resource {listing.resource_name!r} not advertised")
        self._listings[listing.resource_name] = listing

    def withdraw(self, resource_name: str) -> None:
        if self._listings.pop(resource_name, None) is None:
            raise NotFoundError(f"resource {resource_name!r} not advertised")

    def lookup(self, resource_name: str) -> ServiceListing:
        listing = self._listings.get(resource_name)
        if listing is None:
            raise NotFoundError(f"resource {resource_name!r} not advertised")
        return listing

    def query(
        self,
        min_mips: float = 0.0,
        min_processors: int = 0,
        max_cpu_rate: Optional[Credits] = None,
        sort_by_price: bool = True,
    ) -> list[ServiceListing]:
        """Providers meeting the hardware floor and price ceiling."""
        self.queries_served += 1
        matches = [
            listing
            for listing in self._listings.values()
            if listing.description.cpu_speed_mips >= min_mips
            and listing.description.num_processors >= min_processors
            and (max_cpu_rate is None or listing.cpu_rate <= max_cpu_rate)
        ]
        if sort_by_price:
            matches.sort(key=lambda l: (l.cpu_rate.micro, l.resource_name))
        else:
            matches.sort(key=lambda l: (-l.description.cpu_speed_mips, l.resource_name))
        return matches

    def __len__(self) -> int:
        return len(self._listings)
