"""Grid Service Provider substrate.

Everything on the resource-owner side of Figures 1-2 that the accounting
architecture plugs into: machine/PE resource models, jobs, local cluster
scheduling (space- and time-shared) in the discrete-event simulator, the
Grid Resource Meter that turns finished jobs into RURs, the Grid Trade
Server that negotiates service rates, the Grid Market Directory used for
discovery, and the template-account pool + grid-mapfile machinery of the
access-scalability scheme (sec 2.3).
"""

from repro.grid.resource import ProcessingElement, Machine, GridResource
from repro.grid.job import Job, JobStatus
from repro.grid.scheduler import ClusterScheduler, SchedulingPolicy
from repro.grid.meter import GridResourceMeter
from repro.grid.trade import GridTradeServer, PricingModel, NegotiationOutcome
from repro.grid.market import GridMarketDirectory, ServiceListing
from repro.grid.accounts_pool import TemplateAccountPool

# GridServiceProvider embeds the GBCM from repro.core.charging, which in
# turn uses the template pool above — import lazily to stay acyclic.
_LAZY = {
    "GridServiceProvider": ("repro.grid.gsp", "GridServiceProvider"),
    "ServiceSession": ("repro.grid.gsp", "ServiceSession"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ProcessingElement",
    "Machine",
    "GridResource",
    "Job",
    "JobStatus",
    "ClusterScheduler",
    "SchedulingPolicy",
    "GridResourceMeter",
    "GridTradeServer",
    "PricingModel",
    "NegotiationOutcome",
    "GridMarketDirectory",
    "ServiceListing",
    "TemplateAccountPool",
    "GridServiceProvider",
    "ServiceSession",
]
