"""Template account pool — the access-scalability scheme of sec 2.3.

"GSP maintains a pool of template accounts. These accounts are local
system accounts that are not associated with any particular user. When a
GSC contacts GSP to execute some application, provided GSC presents a
well-formed payment instrument, GSP dynamically assigns one of the
template accounts from the pool of free accounts. GSC's Certificate Name
is temporarily mapped to the local account (in grid-mapfile)... GBCM then
removes the association ... returning the local account to the pool of
free accounts."

Thousands of consumers thus share O(pool-size) local accounts instead of
each needing one pre-created — the paper's answer to "the requirement to
have a local account at each resource is simply not realistic".
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import PoolExhaustedError, ValidationError
from repro.pki.mapfile import GridMapfile

__all__ = ["TemplateAccountPool"]


class TemplateAccountPool:
    def __init__(self, size: int, mapfile: Optional[GridMapfile] = None, prefix: str = "tmpl") -> None:
        if size < 1:
            raise ValidationError("pool needs at least one template account")
        self.mapfile = mapfile if mapfile is not None else GridMapfile()
        self._free: deque[str] = deque(f"{prefix}{i:04d}" for i in range(1, size + 1))
        self._assigned: dict[str, str] = {}  # subject -> local account
        self.size = size
        # statistics for the POOL benchmark
        self.total_assignments = 0
        self.peak_in_use = 0
        self.rejections = 0

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return len(self._assigned)

    def account_for(self, subject: str) -> Optional[str]:
        return self._assigned.get(subject)

    def assign(self, subject: str) -> str:
        """Map *subject* to a free template account (idempotent per subject)."""
        if not subject:
            raise ValidationError("subject must be non-empty")
        existing = self._assigned.get(subject)
        if existing is not None:
            return existing
        if not self._free:
            self.rejections += 1
            raise PoolExhaustedError(
                f"no free template accounts ({self.size} total, all assigned)"
            )
        account = self._free.popleft()
        self._assigned[subject] = account
        self.mapfile.add(subject, account)
        self.total_assignments += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return account

    def release(self, subject: str) -> str:
        """Remove the grid-mapfile entry and return the account to the pool."""
        account = self._assigned.pop(subject, None)
        if account is None:
            raise ValidationError(f"subject {subject!r} holds no template account")
        self.mapfile.remove(subject)
        self._free.append(account)
        return account

    def stats(self) -> dict:
        return {
            "size": self.size,
            "in_use": self.in_use,
            "free": self.free_count,
            "total_assignments": self.total_assignments,
            "peak_in_use": self.peak_in_use,
            "rejections": self.rejections,
        }
