"""Local cluster scheduling inside the discrete-event simulator.

The paper's GRM "will interface with local resource allocation system
(e.g., cluster scheduler)" (sec 2.1) — this is that scheduler. Two classic
policies:

* **space-shared** (batch): each job occupies one PE exclusively; excess
  jobs queue FIFO.
* **time-shared**: processor sharing — every active job receives
  ``min(pe_mips, total_mips / n_active)`` and wall-clock stretches with
  load while consumed *CPU time* stays the job's intrinsic compute
  content.

On completion the scheduler emits a flavor-correct
:class:`~repro.rur.conversion.RawUsageRecord` — the OS-specific raw
statistics Figure 2's conversion unit normalizes.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, Optional

from repro.errors import SchedulingError, ValidationError
from repro.grid.job import Job, JobStatus
from repro.grid.resource import GridResource
from repro.rur.conversion import OSFlavor, RawUsageRecord
from repro.sim.engine import Process, Simulator
from repro.util.ids import IdGenerator

__all__ = ["SchedulingPolicy", "ClusterScheduler"]

# Fixed fractions used when synthesizing raw OS statistics from a run.
_SYSTEM_CPU_FRACTION = 0.03  # kernel/system time on top of user time


class SchedulingPolicy(enum.Enum):
    SPACE_SHARED = "space-shared"
    TIME_SHARED = "time-shared"


def _raw_fields(flavor: OSFlavor, cpu_s: float, sys_s: float, mem_mbh: float,
                sto_mbh: float, net_mb: float) -> dict[str, float]:
    """Render canonical quantities in the machine's native units/names —
    the inverse of the Figure-2 conversion tables."""
    if flavor is OSFlavor.LINUX:
        return {
            "utime_jiffies": cpu_s * 100.0,
            "stime_jiffies": sys_s * 100.0,
            "mem_kb_hours": mem_mbh * 1024.0,
            "disk_kb_hours": sto_mbh * 1024.0,
            "net_kb": net_mb * 1024.0,
        }
    if flavor is OSFlavor.SOLARIS:
        return {
            "pr_utime_us": cpu_s * 1_000_000.0,
            "pr_stime_us": sys_s * 1_000_000.0,
            "pr_mem_mb_hours": mem_mbh,
            "pr_disk_mb_hours": sto_mbh,
            "pr_net_mb": net_mb,
        }
    if flavor is OSFlavor.CRAY_UNICOS:
        words_per_mb = 1024.0 * 1024.0 / 8.0
        return {
            "cpu_seconds": cpu_s,
            "sys_seconds": sys_s,
            "mem_word_hours": mem_mbh * words_per_mb,
            "disk_word_hours": sto_mbh * words_per_mb,
            "net_words": net_mb * words_per_mb,
        }
    raise SchedulingError(f"no raw-field table for {flavor!r}")


class _TimeSharedCore:
    """Processor-sharing completion bookkeeping."""

    def __init__(self, sim: Simulator, total_mips: float, pe_mips: float) -> None:
        self.sim = sim
        self.total_mips = total_mips
        self.pe_mips = pe_mips
        self.active: dict[str, list] = {}  # job_id -> [remaining_mi, signal]
        self.last_update = sim.now
        self._pending = None

    def rate(self) -> float:
        if not self.active:
            return 0.0
        return min(self.pe_mips, self.total_mips / len(self.active))

    def _advance(self) -> None:
        elapsed = self.sim.now - self.last_update
        if elapsed > 0 and self.active:
            done = elapsed * self.rate()
            for entry in self.active.values():
                entry[0] = max(0.0, entry[0] - done)
        self.last_update = self.sim.now

    def _reschedule(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if not self.active:
            return
        rate = self.rate()
        soonest = min(entry[0] for entry in self.active.values()) / rate
        self._pending = self.sim.schedule(soonest, self._on_completion)

    def _on_completion(self) -> None:
        self._pending = None
        self._advance()
        finished = [job_id for job_id, entry in self.active.items() if entry[0] <= 1e-9]
        for job_id in finished:
            _remaining, signal = self.active.pop(job_id)
            signal.fire(self.sim.now)
        self._reschedule()

    def add(self, job_id: str, length_mi: float):
        self._advance()
        signal = self.sim.signal(name=f"ts-{job_id}")
        self.active[job_id] = [length_mi, signal]
        self._reschedule()
        return signal


class ClusterScheduler:
    """One provider site's local scheduler."""

    def __init__(
        self,
        sim: Simulator,
        resource: GridResource,
        policy: SchedulingPolicy = SchedulingPolicy.SPACE_SHARED,
        failure_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValidationError("failure rate must be in [0, 1)")
        self.sim = sim
        self.resource = resource
        self.policy = policy
        self.failure_rate = failure_rate
        self._rng = rng if rng is not None else random.Random()
        # one PE pool per machine: placement is machine-aware, so a
        # heterogeneous site (different speeds, memory, even OS flavors)
        # produces per-machine raw records — Figure 1's R1..Rn
        self._pools = [
            (machine, sim.resource(capacity=machine.num_pes,
                                   name=f"{resource.name}.m{machine.machine_id}"))
            for machine in resource.machines
        ]
        self._local_ids = IdGenerator(prefix="lrm", width=6)
        self._timeshared = _TimeSharedCore(sim, resource.total_mips, resource.mips_per_pe)
        self.completed: list[tuple[Job, RawUsageRecord]] = []
        self.on_complete: Optional[Callable[[Job, RawUsageRecord], None]] = None
        self.jobs_run = 0

    @property
    def queued(self) -> int:
        return sum(pool.queued for _m, pool in self._pools)

    @property
    def busy_pes(self) -> int:
        return sum(pool.in_use for _m, pool in self._pools)

    def _pick_machine(self, job: Job):
        """Least-relative-backlog machine with enough memory."""
        candidates = [
            (machine, pool)
            for machine, pool in self._pools
            if job.memory_mb <= machine.memory_mb
        ]
        if not candidates:
            raise SchedulingError(
                f"job {job.job_id} needs {job.memory_mb} MB; no machine at "
                f"{self.resource.name} has that much"
            )
        return min(
            candidates,
            key=lambda entry: (
                (entry[1].in_use + entry[1].queued) / entry[0].num_pes,
                entry[0].machine_id,
            ),
        )

    def submit(self, job: Job) -> Process:
        """Start *job*; the returned process's result is the RawUsageRecord."""
        self._pick_machine(job)  # fail fast if the job fits nowhere
        job.local_job_id = self._local_ids.next_str()
        job.mark(JobStatus.QUEUED, at=self.sim.clock.now().epoch)
        return self.sim.spawn(self._run(job), name=f"job-{job.job_id}")

    def _run(self, job: Job):
        bandwidth = max(m.bandwidth_mbps for m in self.resource.machines)
        stage_time = job.transfer_time(bandwidth) if job.total_io_mb > 0 else 0.0

        # Failure model: a failing job crashes partway through, having
        # consumed a fraction of its compute (the meter still accounts it —
        # resource consumption happened whether or not the job succeeded).
        completed_fraction = 1.0
        if self.failure_rate > 0 and self._rng.random() < self.failure_rate:
            completed_fraction = self._rng.uniform(0.05, 0.95)
        effective_mi = job.length_mi * completed_fraction

        if self.policy is SchedulingPolicy.SPACE_SHARED:
            machine, pool = self._pick_machine(job)
            yield pool.acquire()
            job.mark(JobStatus.RUNNING, at=self.sim.clock.now().epoch)
            if stage_time > 0:
                yield stage_time
            try:
                yield effective_mi / machine.pes[0].mips
            finally:
                pool.release()
        else:
            # time-sharing is modelled site-wide (processor sharing over
            # the aggregate capacity); attribution goes to the first machine
            machine = self.resource.machines[0]
            job.mark(JobStatus.RUNNING, at=self.sim.clock.now().epoch)
            if stage_time > 0:
                yield stage_time
            yield self._timeshared.add(job.job_id, effective_mi).wait()

        final = JobStatus.DONE if completed_fraction >= 1.0 else JobStatus.FAILED
        job.mark(final, at=self.sim.clock.now().epoch)
        raw = self._make_raw(job, machine, completed_fraction)
        self.completed.append((job, raw))
        self.jobs_run += 1
        if self.on_complete is not None:
            self.on_complete(job, raw)
        return raw

    def _make_raw(self, job: Job, machine, completed_fraction: float = 1.0) -> RawUsageRecord:
        assert job.started_at is not None and job.finished_at is not None
        wall_s = job.finished_at - job.started_at
        if self.policy is SchedulingPolicy.SPACE_SHARED:
            pe_mips = machine.pes[0].mips
        else:
            pe_mips = self.resource.mips_per_pe
        cpu_s = job.runtime_on(pe_mips) * completed_fraction
        wall_hours = wall_s / 3600.0
        fields = _raw_fields(
            machine.os_flavor,
            cpu_s=cpu_s,
            sys_s=cpu_s * _SYSTEM_CPU_FRACTION,
            mem_mbh=job.memory_mb * wall_hours,
            sto_mbh=job.storage_mb * wall_hours,
            net_mb=job.total_io_mb,
        )
        return RawUsageRecord(
            flavor=machine.os_flavor,
            local_job_id=job.local_job_id,
            start_epoch=job.started_at,
            end_epoch=job.finished_at,
            fields=fields,
            origin_host=f"{self.resource.name}/m{machine.machine_id}",
        )
