"""Shared utilities: fixed-point money, grid time, ids, serialization."""

from repro.util.money import Credits, ZERO
from repro.util.gbtime import Clock, SystemClock, VirtualClock, Timestamp
from repro.util.ids import IdGenerator, random_token
from repro.util.serialize import canonical_dumps, canonical_loads, to_bytes

__all__ = [
    "Credits",
    "ZERO",
    "Clock",
    "SystemClock",
    "VirtualClock",
    "Timestamp",
    "IdGenerator",
    "random_token",
    "canonical_dumps",
    "canonical_loads",
    "to_bytes",
]
