"""Fixed-point Grid currency (G$).

The paper's ACCOUNT RECORD stores balances as MySQL ``FLOAT`` (sec 5.1).
Doing *arithmetic* in binary floating point would make conservation-of-funds
invariants (the core property of an accounting service) only approximately
testable, so internally every amount is an integer number of micro-G$
(1 G$ == 1_000_000 units). The database layer still stores the float value
to honour the paper's schema; round-tripping is exact for any realistic
balance (|amount| < 2**53 micro-units).

:class:`Credits` is immutable, totally ordered, and supports the arithmetic
an accounts module needs. Multiplication by a scalar (rate x usage) rounds
half-up to the nearest micro-G$, which is the banker-visible quantum.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ValidationError

__all__ = ["Credits", "ZERO", "MICRO_PER_CREDIT"]

MICRO_PER_CREDIT = 1_000_000

_Number = Union[int, float, "Credits"]


class Credits:
    """An immutable fixed-point amount of Grid currency.

    Construct from G$ units (``Credits(2.5)``) or from raw micro-units via
    :meth:`from_micro`. All arithmetic stays in integer micro-units.
    """

    __slots__ = ("_micro",)

    def __init__(self, amount: _Number = 0) -> None:
        if isinstance(amount, Credits):
            micro = amount._micro
        elif isinstance(amount, bool):
            raise ValidationError("bool is not a money amount")
        elif isinstance(amount, int):
            micro = amount * MICRO_PER_CREDIT
        elif isinstance(amount, float):
            if amount != amount or amount in (float("inf"), float("-inf")):
                raise ValidationError(f"non-finite money amount: {amount!r}")
            micro = round(amount * MICRO_PER_CREDIT)
        else:
            raise ValidationError(f"cannot make Credits from {type(amount).__name__}")
        object.__setattr__(self, "_micro", micro)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_micro(cls, micro: int) -> "Credits":
        """Build from raw integer micro-G$ (exact)."""
        if not isinstance(micro, int) or isinstance(micro, bool):
            raise ValidationError("micro amount must be int")
        obj = cls.__new__(cls)
        object.__setattr__(obj, "_micro", micro)
        return obj

    # -- accessors ---------------------------------------------------------

    @property
    def micro(self) -> int:
        """Raw integer micro-G$ value."""
        return self._micro

    def to_float(self) -> float:
        """Float G$ value, as stored in the paper's FLOAT column."""
        return self._micro / MICRO_PER_CREDIT

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Credits") -> "Credits":
        return Credits.from_micro(self._micro + _coerce(other)._micro)

    __radd__ = __add__

    def __sub__(self, other: "Credits") -> "Credits":
        return Credits.from_micro(self._micro - _coerce(other)._micro)

    def __rsub__(self, other: "Credits") -> "Credits":
        return Credits.from_micro(_coerce(other)._micro - self._micro)

    def __mul__(self, scalar: Union[int, float]) -> "Credits":
        if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
            raise ValidationError("Credits can only be scaled by a number")
        if isinstance(scalar, int):
            return Credits.from_micro(self._micro * scalar)
        return Credits.from_micro(round(self._micro * scalar))

    __rmul__ = __mul__

    def __truediv__(self, scalar: Union[int, float]) -> "Credits":
        if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
            raise ValidationError("Credits can only be divided by a number")
        return Credits.from_micro(round(self._micro / scalar))

    def __neg__(self) -> "Credits":
        return Credits.from_micro(-self._micro)

    def __abs__(self) -> "Credits":
        return Credits.from_micro(abs(self._micro))

    # -- ordering ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Credits):
            return self._micro == other._micro
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return self._micro == Credits(other)._micro
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Credits", self._micro))

    def __lt__(self, other: _Number) -> bool:
        return self._micro < _coerce(other)._micro

    def __le__(self, other: _Number) -> bool:
        return self._micro <= _coerce(other)._micro

    def __gt__(self, other: _Number) -> bool:
        return self._micro > _coerce(other)._micro

    def __ge__(self, other: _Number) -> bool:
        return self._micro >= _coerce(other)._micro

    def __bool__(self) -> bool:
        return self._micro != 0

    # -- presentation ------------------------------------------------------

    def __repr__(self) -> str:
        return f"Credits({self.to_float():.6f})"

    def __str__(self) -> str:
        whole, frac = divmod(abs(self._micro), MICRO_PER_CREDIT)
        sign = "-" if self._micro < 0 else ""
        if frac:
            return f"{sign}G${whole}.{frac:06d}".rstrip("0")
        return f"{sign}G${whole}"

    # -- predicates --------------------------------------------------------

    def is_negative(self) -> bool:
        return self._micro < 0

    def is_positive(self) -> bool:
        return self._micro > 0

    def require_positive(self, what: str = "amount") -> "Credits":
        """Raise :class:`ValidationError` unless strictly positive."""
        if self._micro <= 0:
            raise ValidationError(f"{what} must be positive, got {self}")
        return self


ZERO = Credits.from_micro(0)


def _coerce(value: _Number) -> Credits:
    if isinstance(value, Credits):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Credits(value)
    raise ValidationError(f"expected money amount, got {type(value).__name__}")
