"""Grid time: TIMESTAMP(14) values and pluggable clocks.

The paper's TRANSACTION and TRANSFER records carry MySQL ``TIMESTAMP(14)``
columns — 14-digit ``YYYYMMDDHHMMSS`` stamps. :class:`Timestamp` wraps that
representation while keeping an exact fractional-second epoch value so the
discrete-event simulator can order events at sub-second resolution.

Clocks are explicit objects (never ``time.time()`` calls inside the bank)
so every component can run against either wall time (:class:`SystemClock`)
or the simulation's :class:`VirtualClock`, making tests and benchmarks
deterministic.
"""

from __future__ import annotations

import time as _time
from datetime import datetime, timezone
from typing import Union

from repro.errors import ValidationError

__all__ = ["Timestamp", "Clock", "SystemClock", "VirtualClock"]


class Timestamp:
    """A point in time, formatted as the paper's TIMESTAMP(14).

    Internally an epoch-seconds float; :attr:`stamp14` renders the UTC
    ``YYYYMMDDHHMMSS`` string used by the database records.
    """

    __slots__ = ("_epoch",)

    def __init__(self, epoch_seconds: Union[int, float]) -> None:
        if not isinstance(epoch_seconds, (int, float)) or isinstance(epoch_seconds, bool):
            raise ValidationError("epoch_seconds must be a number")
        if epoch_seconds != epoch_seconds or epoch_seconds in (float("inf"), float("-inf")):
            raise ValidationError("epoch_seconds must be finite")
        object.__setattr__(self, "_epoch", float(epoch_seconds))

    @classmethod
    def from_stamp14(cls, stamp: str) -> "Timestamp":
        """Parse a 14-digit ``YYYYMMDDHHMMSS`` UTC stamp."""
        if not isinstance(stamp, str) or len(stamp) != 14 or not stamp.isdigit():
            raise ValidationError(f"not a TIMESTAMP(14): {stamp!r}")
        dt = datetime.strptime(stamp, "%Y%m%d%H%M%S").replace(tzinfo=timezone.utc)
        return cls(dt.timestamp())

    @property
    def epoch(self) -> float:
        return self._epoch

    @property
    def stamp14(self) -> str:
        """UTC ``YYYYMMDDHHMMSS`` rendering (fractional seconds truncated)."""
        dt = datetime.fromtimestamp(int(self._epoch), tz=timezone.utc)
        return dt.strftime("%Y%m%d%H%M%S")

    def iso(self) -> str:
        return datetime.fromtimestamp(self._epoch, tz=timezone.utc).isoformat()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Timestamp):
            return self._epoch == other._epoch
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Timestamp", self._epoch))

    def __lt__(self, other: "Timestamp") -> bool:
        return self._epoch < other._epoch

    def __le__(self, other: "Timestamp") -> bool:
        return self._epoch <= other._epoch

    def __gt__(self, other: "Timestamp") -> bool:
        return self._epoch > other._epoch

    def __ge__(self, other: "Timestamp") -> bool:
        return self._epoch >= other._epoch

    def __add__(self, seconds: Union[int, float]) -> "Timestamp":
        return Timestamp(self._epoch + seconds)

    def __sub__(self, other: Union["Timestamp", int, float]) -> Union[float, "Timestamp"]:
        if isinstance(other, Timestamp):
            return self._epoch - other._epoch
        return Timestamp(self._epoch - other)

    def __repr__(self) -> str:
        return f"Timestamp({self.stamp14})"


class Clock:
    """Abstract clock interface."""

    def now(self) -> Timestamp:
        raise NotImplementedError

    def epoch(self) -> float:
        return self.now().epoch


class SystemClock(Clock):
    """Wall-clock time (UTC)."""

    def now(self) -> Timestamp:
        return Timestamp(_time.time())


class VirtualClock(Clock):
    """A manually- or simulator-advanced clock.

    Starts at ``start`` (default: 2003-01-01T00:00:00Z, the paper's era) and
    only moves when :meth:`advance` or :meth:`set_epoch` is called, so runs
    are fully reproducible.
    """

    DEFAULT_START = 1041379200.0  # 2003-01-01T00:00:00Z

    def __init__(self, start: float = DEFAULT_START) -> None:
        self._epoch = float(start)

    def now(self) -> Timestamp:
        return Timestamp(self._epoch)

    def advance(self, seconds: float) -> Timestamp:
        if seconds < 0:
            raise ValidationError("clock cannot run backwards")
        self._epoch += seconds
        return self.now()

    def set_epoch(self, epoch_seconds: float) -> None:
        if epoch_seconds < self._epoch:
            raise ValidationError("clock cannot run backwards")
        self._epoch = float(epoch_seconds)
