"""Canonical serialization.

Signatures and MACs must be computed over a *canonical* byte encoding: the
same logical message must always serialize to the same bytes regardless of
dict insertion order. We use JSON with sorted keys, no whitespace, and a
small set of type extensions (bytes as hex, Credits as micro-int,
Timestamp as epoch float) encoded as tagged two-element lists.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ValidationError
from repro.util.gbtime import Timestamp
from repro.util.money import Credits

__all__ = ["canonical_dumps", "canonical_loads", "to_bytes"]

_TAG_BYTES = "!b"
_TAG_CREDITS = "!c"
_TAG_TIMESTAMP = "!t"


def _encode(value: Any) -> Any:
    if isinstance(value, bytes):
        return [_TAG_BYTES, value.hex()]
    if isinstance(value, Credits):
        return [_TAG_CREDITS, value.micro]
    if isinstance(value, Timestamp):
        return [_TAG_TIMESTAMP, value.epoch]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError("canonical dict keys must be strings")
            out[key] = _encode(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            raise ValidationError("non-finite float is not canonically serializable")
        return value
    raise ValidationError(f"type {type(value).__name__} is not canonically serializable")


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        if len(value) == 2 and value[0] == _TAG_BYTES and isinstance(value[1], str):
            return bytes.fromhex(value[1])
        if len(value) == 2 and value[0] == _TAG_CREDITS and isinstance(value[1], int):
            return Credits.from_micro(value[1])
        if len(value) == 2 and value[0] == _TAG_TIMESTAMP and isinstance(value[1], (int, float)):
            return Timestamp(value[1])
        return [_decode(item) for item in value]
    if isinstance(value, dict):
        return {key: _decode(item) for key, item in value.items()}
    return value


def canonical_dumps(value: Any) -> bytes:
    """Serialize to canonical bytes (stable across runs and platforms)."""
    return json.dumps(
        _encode(value), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def canonical_loads(data: bytes) -> Any:
    """Inverse of :func:`canonical_dumps`."""
    try:
        return _decode(json.loads(data.decode("ascii")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"malformed canonical payload: {exc}") from exc


def to_bytes(value: Any) -> bytes:
    """Bytes view of a value for hashing: passthrough for bytes/str."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    return canonical_dumps(value)
