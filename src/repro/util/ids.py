"""Identifier generation.

Deterministic, per-generator monotonic identifiers for transactions, jobs and
sessions, plus a seeded random token helper for nonces. Nothing in the
library calls ``uuid4`` or global ``random`` — all randomness flows through
explicitly-seeded generators so simulations replay exactly.
"""

from __future__ import annotations

import random
import threading
from typing import Optional

__all__ = ["IdGenerator", "random_token"]


class IdGenerator:
    """Monotonic integer ids with an optional string prefix.

    Thread-safe: concurrent server threads allocate transaction/entry ids
    from shared generators, and a duplicated id would violate ledger
    primary keys.

    >>> gen = IdGenerator(prefix="txn")
    >>> gen.next_str()
    'txn-000001'
    >>> gen.next_int()
    2
    """

    def __init__(self, prefix: str = "id", start: int = 1, width: int = 6) -> None:
        self._prefix = prefix
        self._next = start
        self._width = width
        self._lock = threading.Lock()

    def next_int(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def next_str(self) -> str:
        return f"{self._prefix}-{self.next_int():0{self._width}d}"

    def peek(self) -> int:
        return self._next


def random_token(rng: Optional[random.Random] = None, nbytes: int = 16) -> str:
    """Hex token from the given RNG (seeded for reproducibility in tests)."""
    r = rng if rng is not None else random.Random()
    return r.getrandbits(8 * nbytes).to_bytes(nbytes, "big").hex()
