"""Synthetic workload generators and scenario runners for the benches."""

from repro.workloads.synthetic import (
    job_stream,
    sweep_application,
    provider_specs,
    community_specs,
)
from repro.workloads.openqueue import OpenQueueResult, run_open_queue

__all__ = [
    "job_stream",
    "sweep_application",
    "provider_specs",
    "community_specs",
    "OpenQueueResult",
    "run_open_queue",
]
