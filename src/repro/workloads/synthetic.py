"""Synthetic workloads.

The paper evaluates nothing quantitatively, so the benchmark harness needs
representative inputs: Poisson job arrivals with heavy-tailed (Pareto)
lengths — the standard compute-workload shape — plus heterogeneous
provider fleets for market and community scenarios. Everything is seeded.
"""

from __future__ import annotations


from repro.broker.application import Parameter, ParameterizedApplication
from repro.errors import ValidationError
from repro.grid.job import Job
from repro.sim.distributions import Distributions

__all__ = ["job_stream", "sweep_application", "provider_specs", "community_specs"]


def job_stream(
    user_subject: str,
    count: int,
    seed: int = 0,
    mean_length_mi: float = 300_000.0,
    pareto_alpha: float = 1.8,
    io_mb_range: tuple[float, float] = (0.0, 50.0),
    id_prefix: str = "wl",
) -> list[Job]:
    """Heavy-tailed independent jobs for one user."""
    if count < 1:
        raise ValidationError("need at least one job")
    dist = Distributions(seed)
    minimum = mean_length_mi * (pareto_alpha - 1.0) / pareto_alpha
    jobs = []
    for i in range(1, count + 1):
        length = min(dist.pareto(pareto_alpha, minimum=minimum), mean_length_mi * 20)
        io = dist.uniform(*io_mb_range)
        jobs.append(
            Job(
                job_id=f"{id_prefix}-{i:05d}",
                user_subject=user_subject,
                application_name="synthetic",
                length_mi=length,
                input_mb=io * 0.7,
                output_mb=io * 0.3,
                memory_mb=dist.uniform(16.0, 256.0),
            )
        )
    return jobs


def sweep_application(
    points: int,
    base_length_mi: float = 240_000.0,
    jitter: float = 0.2,
    io_mb: float = 5.0,
) -> ParameterizedApplication:
    """A 1-D parameter sweep with *points* tasks (Nimrod-G style)."""
    if points < 1:
        raise ValidationError("sweep needs at least one point")
    return ParameterizedApplication(
        name="param-sweep",
        base_length_mi=base_length_mi,
        parameters=(Parameter("theta", tuple(range(points))),),
        input_mb=io_mb * 0.7,
        output_mb=io_mb * 0.3,
        length_jitter=jitter,
    )


def provider_specs(count: int, seed: int = 0) -> list[dict]:
    """Heterogeneous provider fleet: speeds and prices spread widely."""
    if count < 1:
        raise ValidationError("need at least one provider")
    dist = Distributions(seed)
    specs = []
    for i in range(count):
        mips = dist.choice([200.0, 400.0, 600.0, 1000.0, 1600.0])
        specs.append(
            {
                "name": f"gsp{i:02d}",
                "num_pes": dist.randint(2, 16),
                "mips_per_pe": mips,
                # price loosely tracks speed with noise (an open market)
                "cpu_rate": round(mips / 150.0 * dist.uniform(0.6, 1.4), 2),
            }
        )
    return specs


def community_specs(count: int, seed: int = 0) -> list[dict]:
    """Co-op members with heterogeneous hardware (Figure 4's setup)."""
    if count < 2:
        raise ValidationError("a community needs at least two members")
    dist = Distributions(seed)
    return [
        {
            "name": f"member{i}",
            "num_pes": dist.randint(2, 8),
            "mips_per_pe": dist.choice([250.0, 500.0, 750.0, 1000.0]),
        }
        for i in range(count)
    ]
