"""Open-queue grid economy: Poisson arrivals over a priced marketplace.

The paper's group built GridSim to study exactly this kind of scenario;
this module is the reproduction's equivalent experiment: jobs arrive as a
Poisson process, each is paid for by GridCheque through the GBPM and
dispatched to the least-backlogged provider, and the run reports the
queueing/economic quantities (waits, utilization, spend, conservation)
that characterize an accounting-enabled grid under load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.gbpm import GridBankPaymentModule
from repro.core.rates import ServiceRatesRecord
from repro.core.session import GridSession, Participant
from repro.errors import ValidationError
from repro.grid.job import Job, JobStatus
from repro.sim.distributions import Distributions
from repro.util.money import Credits, ZERO

__all__ = ["OpenQueueResult", "run_open_queue"]


@dataclass
class OpenQueueResult:
    jobs_submitted: int
    jobs_completed: int
    horizon_s: float
    mean_wait_s: float
    max_wait_s: float
    mean_service_s: float
    per_provider_jobs: dict[str, int]
    per_provider_busy_fraction: dict[str, float]
    total_paid: Credits
    funds_conserved: bool

    @property
    def completion_rate(self) -> float:
        return self.jobs_completed / self.jobs_submitted if self.jobs_submitted else 0.0


def run_open_queue(
    num_providers: int = 3,
    num_consumers: int = 4,
    mean_interarrival_s: float = 120.0,
    mean_job_length_mi: float = 300_000.0,
    horizon_s: float = 24_000.0,
    seed: int = 0,
    funds_per_consumer: float = 100_000.0,
) -> OpenQueueResult:
    """Simulate an open-queue economy and return its report."""
    if num_providers < 1 or num_consumers < 1:
        raise ValidationError("need at least one provider and one consumer")
    if mean_interarrival_s <= 0 or horizon_s <= 0:
        raise ValidationError("arrival rate and horizon must be positive")

    session = GridSession(seed=seed)
    dist = Distributions(seed + 1)
    consumers = [
        session.add_consumer(f"user{i}", funds=funds_per_consumer) for i in range(num_consumers)
    ]
    providers = []
    for i in range(num_providers):
        mips = dist.choice([300.0, 500.0, 800.0])
        providers.append(
            session.add_provider(
                f"site{i}",
                ServiceRatesRecord.flat(cpu_per_hour=mips / 100.0),
                num_pes=dist.randint(2, 4),
                mips_per_pe=mips,
                pool_size=64,
            )
        )
    gbpms = {c.name: GridBankPaymentModule(c.api, c.account_id) for c in consumers}
    initial_funds = session.bank.accounts.total_bank_funds()

    jobs: list[Job] = []
    busy_time = {p.name: 0.0 for p in providers}

    def least_backlogged() -> Participant:
        return min(
            providers,
            key=lambda p: (p.provider.scheduler.queued + p.provider.scheduler.busy_pes, p.name),
        )

    def arrivals():
        counter = 0
        while session.sim.now < horizon_s:
            yield dist.exponential(mean_interarrival_s)
            if session.sim.now >= horizon_s:
                break
            counter += 1
            consumer = dist.choice(consumers)
            provider = least_backlogged()
            gsp = provider.provider
            job = Job(
                job_id=f"oq-{counter:05d}",
                user_subject=consumer.subject,
                application_name="open-queue",
                length_mi=max(1000.0, dist.exponential(mean_job_length_mi)),
                memory_mb=32.0,
            )
            jobs.append(job)
            rates = gsp.trade_server.current_rates()
            gbpms[consumer.name].grid_bank_job_submit(gsp, session.sim, job, rates)
        return counter

    session.sim.spawn(arrivals(), name="arrivals")
    session.sim.run()

    completed = [j for j in jobs if j.status is JobStatus.DONE]
    waits = [j.started_at - j.submitted_at for j in completed]
    services = [j.finished_at - j.started_at for j in completed]
    per_provider: dict[str, int] = {p.name: 0 for p in providers}
    for provider in providers:
        per_provider[provider.name] = provider.provider.scheduler.jobs_run
        for _job, raw in provider.provider.scheduler.completed:
            busy_time[provider.name] += raw.end_epoch - raw.start_epoch

    elapsed = max(session.sim.now, 1e-9)
    busy_fraction = {
        p.name: busy_time[p.name] / (elapsed * p.provider.resource.num_pes) for p in providers
    }
    total_paid = ZERO
    for provider in providers:
        total_paid = total_paid + provider.provider.gbcm.revenue

    return OpenQueueResult(
        jobs_submitted=len(jobs),
        jobs_completed=len(completed),
        horizon_s=horizon_s,
        mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
        max_wait_s=max(waits) if waits else 0.0,
        mean_service_s=sum(services) / len(services) if services else 0.0,
        per_provider_jobs=per_provider,
        per_provider_busy_fraction=busy_fraction,
        total_paid=total_paid,
        funds_conserved=session.bank.accounts.total_bank_funds() == initial_funds,
    )
