"""GridBank server internals.

The three-layer server of Figure 3: the Accounts Layer
(:mod:`repro.bank.accounts`, :mod:`repro.bank.admin`) over the relational
database (:mod:`repro.bank.records` defines the sec 5.1 schemas), the
Payment Protocol Layer (:mod:`repro.payments`), and the Security Layer
(:mod:`repro.bank.security`), wired together by
:class:`repro.bank.server.GridBankServer`. :mod:`repro.bank.branch`
implements the sec 6 future-work multi-branch settlement, and
:mod:`repro.bank.pricing` the sec 4.2 market-value estimation.
:mod:`repro.bank.cluster` replicates a bank across nodes (WAL shipping,
hot-standby failover, read replicas).
"""

from repro.bank.records import (
    AccountID,
    account_schema,
    transaction_schema,
    transfer_schema,
    admin_schema,
    instrument_schema,
)
from repro.bank.accounts import GBAccounts
from repro.bank.admin import GBAdmin
from repro.bank.security import bank_authorization_policy
from repro.bank.pricing import PriceEstimator

# GridBankServer and BranchNetwork pull in the payment protocol layer,
# which itself builds on the accounts layer above — import them lazily to
# keep `import repro.payments` acyclic.
_LAZY = {
    "GridBankServer": ("repro.bank.server", "GridBankServer"),
    "BranchNetwork": ("repro.bank.branch", "BranchNetwork"),
    "SettlementBatch": ("repro.bank.branch", "SettlementBatch"),
    "ClusterNode": ("repro.bank.cluster", "ClusterNode"),
    "StandbyReplicator": ("repro.bank.cluster", "StandbyReplicator"),
    "PrimaryRouter": ("repro.bank.cluster", "PrimaryRouter"),
    "ReplicatedBranch": ("repro.bank.cluster", "ReplicatedBranch"),
    "cluster_client": ("repro.bank.cluster", "cluster_client"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AccountID",
    "account_schema",
    "transaction_schema",
    "transfer_schema",
    "admin_schema",
    "instrument_schema",
    "GBAccounts",
    "GBAdmin",
    "bank_authorization_policy",
    "GridBankServer",
    "PriceEstimator",
    "BranchNetwork",
    "SettlementBatch",
    "ClusterNode",
    "StandbyReplicator",
    "PrimaryRouter",
    "ReplicatedBranch",
    "cluster_client",
]
