"""Competitive-model price estimation from transaction history (sec 4.2).

"GridBank's transaction history can assist in deciding how much a
computational service is worth. Such transaction history is confidential
and cannot be disclosed as is. Therefore GridBank would receive a
description of the resource, process the information in its database
regarding prices paid for resources of similar type, and then produce an
estimate. The simplest approach to compare resources is to consider
hardware parameters such as processor speed, number of processors, amount
of main memory and secondary storage, network bandwidth, etc."

The estimator ingests (resource description, realized unit price) pairs
from settled transactions and answers queries with a similarity-weighted
estimate — never disclosing individual transactions. Similarity is an
L2 distance over normalized hardware parameters; the estimate is the
inverse-distance-weighted mean of the k nearest observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import NotFoundError, ValidationError
from repro.util.money import Credits

__all__ = ["ResourceDescription", "PriceEstimator"]

_FEATURES = ("cpu_speed_mips", "num_processors", "memory_mb", "storage_gb", "bandwidth_mbps")


@dataclass(frozen=True)
class ResourceDescription:
    """Hardware parameters of a computational service (sec 4.2 list)."""

    cpu_speed_mips: float
    num_processors: int
    memory_mb: float
    storage_gb: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        for feature in _FEATURES:
            value = getattr(self, feature)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
                raise ValidationError(f"resource feature {feature!r} must be positive")

    def vector(self) -> list[float]:
        return [float(getattr(self, feature)) for feature in _FEATURES]


class PriceEstimator:
    """Confidential k-nearest-neighbour price estimation."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.k = k
        self._observations: list[tuple[list[float], float]] = []

    def observe(self, description: ResourceDescription, unit_price: Credits) -> None:
        """Record a settled transaction's realized price (G$ per CPU-hour)."""
        price = Credits(unit_price)
        if price < Credits(0):
            raise ValidationError("unit price must be >= 0")
        self._observations.append((description.vector(), price.to_float()))

    @property
    def history_size(self) -> int:
        return len(self._observations)

    def _scales(self) -> list[float]:
        scales = []
        for dim in range(len(_FEATURES)):
            values = [obs[0][dim] for obs in self._observations]
            spread = max(values) - min(values)
            scales.append(spread if spread > 0 else max(abs(values[0]), 1.0))
        return scales

    def estimate(self, description: ResourceDescription) -> Credits:
        """Estimated market unit price for a resource like *description*."""
        if not self._observations:
            raise NotFoundError("no transaction history to estimate from")
        query = description.vector()
        scales = self._scales()
        scored: list[tuple[float, float]] = []
        for vector, price in self._observations:
            distance = math.sqrt(
                sum(((a - b) / s) ** 2 for a, b, s in zip(query, vector, scales))
            )
            scored.append((distance, price))
        scored.sort(key=lambda pair: pair[0])
        nearest = scored[: self.k]
        # Exact match short-circuits (infinite weight).
        exact = [price for distance, price in nearest if distance == 0.0]
        if exact:
            return Credits(sum(exact) / len(exact))
        total_weight = sum(1.0 / distance for distance, _ in nearest)
        estimate = sum(price / distance for distance, price in nearest) / total_weight
        return Credits(estimate)

    def estimate_or_default(self, description: ResourceDescription, default: Credits) -> Credits:
        try:
            return self.estimate(description)
        except NotFoundError:
            return Credits(default)
