"""Durable reply cache — the server half of exactly-once RPC.

The bank routes every mutating operation through this cache: before
dispatch it looks the request's idempotency key up, and a hit returns the
*original* response without re-executing; after a successful execution it
stores the response **inside the same database transaction** as the
operation's ledger effects. Because the :class:`~repro.db.database.Database`
journals a transaction as one WAL line, a crash between "funds moved" and
"reply recorded" is impossible — recovery replays both or neither, and a
client retrying across the crash gets the cached reply instead of a
second execution. This is what upgrades the instrument registry's
"retried redemption fails loudly" into "retried redemption returns the
original confirmation".

The cache is bounded: when it reaches ``max_entries`` the oldest rows (by
insertion sequence) are evicted in batches. An evicted key's retry falls
back to ordinary execution — safe for instrument operations (the
double-spend registry still refuses), and in practice retries arrive
within seconds while eviction horizons are thousands of operations away.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.bank.records import reply_schema
from repro.db.database import Database
from repro.errors import ProtocolError
from repro.obs.logging import get_logger
from repro.util.gbtime import Clock
from repro.util.ids import IdGenerator
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = ["ReplyCache"]

_log = get_logger("bank.replies")

# evict this many rows at once when full, amortizing the ordered scan
_EVICTION_BATCH = 64


class ReplyCache:
    """Idempotency-keyed store of mutating-operation responses."""

    def __init__(self, db: Database, clock: Clock, max_entries: int = 10_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.db = db
        self.clock = clock
        self.max_entries = max_entries
        if reply_schema().name not in db.table_names():
            db.create_table(reply_schema())
        self.rescan()

    def rescan(self) -> None:
        """Re-derive the insertion sequence from persisted rows (called at
        construction and again after WAL recovery replays the journal)."""
        highest = 0
        for row in self.db.table("replies").all_rows():
            highest = max(highest, row["Seq"])
        self._seq = IdGenerator(start=highest + 1)

    def lookup(self, idempotency_key: str, subject: str, method: str) -> Optional[dict]:
        """The cached reply row for *idempotency_key*, if any.

        A key found under a different subject or method is a protocol
        violation (key reuse or a forged replay) and is refused loudly
        rather than served or re-executed.
        """
        row = self.db.find("replies", (idempotency_key,))
        if row is None:
            return None
        if row["Subject"] != subject or row["Method"] != method:
            _log.warning(
                "replies.key_conflict",
                key=idempotency_key,
                cached_method=row["Method"],
                request_method=method,
            )
            raise ProtocolError(
                f"idempotency key {idempotency_key!r} was already used by a "
                f"different caller or operation"
            )
        return row

    @staticmethod
    def replay(row: dict) -> Any:
        """Decode the cached result carried by a reply row."""
        return canonical_loads(row["Body"])

    def store(self, idempotency_key: str, subject: str, method: str, result: Any) -> None:
        """Record *result* for *idempotency_key*.

        Must run inside the operation's database transaction so the reply
        commits atomically (same WAL line) with the ledger effects it
        describes; calling it outside a transaction raises.
        """
        self.db.require_transaction("reply cache writes")
        count = len(self.db.table("replies"))  # O(1), vs count()'s full scan
        if count >= self.max_entries:
            self._evict(count - self.max_entries + 1)
        self.db.insert(
            "replies",
            {
                "IdempotencyKey": idempotency_key,
                "Seq": self._seq.next_int(),
                "Subject": subject,
                "Method": method,
                "Date": self.clock.now(),
                "Body": canonical_dumps(result),
            },
        )

    def _evict(self, need: int) -> None:
        victims = self.db.select(
            "replies", order_by="Seq", limit=max(need, _EVICTION_BATCH)
        )
        for row in victims:
            self.db.delete("replies", (row["IdempotencyKey"],))
        _log.debug("replies.evicted", count=len(victims))

    def __len__(self) -> int:
        return len(self.db.table("replies"))
