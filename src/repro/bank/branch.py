"""Multi-branch GridBank — the sec 6 future-work extension.

"GridBank system will be expanded to provide multiple servers/branches
across the Grid... Each Virtual Organization associates a GridBank server
that all participants of the organization use. If a GSC is from one VO
and GSP is from another, then their respective servers will need to
define protocols for settling accounts between the branches."

Model: a :class:`BranchNetwork` routes account ids (whose ``bank-branch``
prefix identifies the serving branch, the very reason "GridBank accounts
have branch numbers") to branch servers. A cross-branch payment executes
as two local legs through bilateral *settlement accounts* — the payer
branch credits its "due to peer" account, the payee branch overdrafts its
"due from peer" account — and periodic :meth:`settle` netting clears the
bilateral positions with one inter-branch movement per indebted pair,
exactly the deferred-net-settlement pattern of NetCash/NetCheque currency
servers the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bank.records import AccountID
from repro.bank.server import GridBankServer
from repro.errors import SettlementError, ValidationError
from repro.util.money import Credits, ZERO

__all__ = ["BranchNetwork", "SettlementBatch"]

# Settlement accounts may overdraft arbitrarily between settlements; they are
# inter-branch liabilities, not customer credit.
_SETTLEMENT_CREDIT_LIMIT = Credits(10**9)


@dataclass(frozen=True)
class SettlementBatch:
    """One net inter-branch clearing movement."""

    debtor: tuple[int, int]  # (bank, branch) owing
    creditor: tuple[int, int]
    amount: Credits
    transfers_netted: int


class BranchNetwork:
    def __init__(self) -> None:
        self._branches: dict[tuple[int, int], GridBankServer] = {}
        # settlement account ids: (holder_branch, peer_branch) -> account id
        self._settlement_accounts: dict[tuple[tuple[int, int], tuple[int, int]], str] = {}
        # gross pending flows: (src_branch, dst_branch) -> (amount, count)
        self._pending: dict[tuple[tuple[int, int], tuple[int, int]], tuple[Credits, int]] = {}
        self.cross_transfers = 0
        self.settlement_messages = 0

    # -- topology -----------------------------------------------------------

    def add_branch(self, server: GridBankServer) -> None:
        key = (server.bank_number, server.branch_number)
        if key in self._branches:
            raise ValidationError(f"branch {key} already registered")
        for peer_key, peer in self._branches.items():
            self._open_settlement_pair(key, server, peer_key, peer)
        self._branches[key] = server

    def _open_settlement_pair(
        self,
        key_a: tuple[int, int],
        server_a: GridBankServer,
        key_b: tuple[int, int],
        server_b: GridBankServer,
    ) -> None:
        for holder_key, holder, peer_key in ((key_a, server_a, key_b), (key_b, server_b, key_a)):
            subject = f"/O=GridBank/CN=settlement-{peer_key[0]:02d}-{peer_key[1]:04d}"
            account = holder.accounts.create_account(
                subject, organization_name="interbranch", credit_limit=_SETTLEMENT_CREDIT_LIMIT
            )
            self._settlement_accounts[(holder_key, peer_key)] = account

    def branch_for(self, account_id: str) -> GridBankServer:
        aid = AccountID.parse(account_id)
        key = (aid.bank, aid.branch)
        server = self._branches.get(key)
        if server is None:
            raise SettlementError(f"no branch registered for account {account_id}")
        return server

    def branches(self) -> list[GridBankServer]:
        return [self._branches[k] for k in sorted(self._branches)]

    # -- payments -------------------------------------------------------------

    def transfer(
        self,
        from_account: str,
        to_account: str,
        amount: Credits,
        rur_blob: bytes = b"",
    ) -> dict:
        """Transfer that may cross branches; returns per-leg transaction ids."""
        amount = Credits(amount).require_positive("transfer amount")
        src = self.branch_for(from_account)
        dst = self.branch_for(to_account)
        src_key = (src.bank_number, src.branch_number)
        dst_key = (dst.bank_number, dst.branch_number)
        if src_key == dst_key:
            txn = src.accounts.transfer(from_account, to_account, amount, rur_blob=rur_blob)
            return {"local": True, "transactions": [txn]}
        due_to_dst = self._settlement_accounts.get((src_key, dst_key))
        due_from_src = self._settlement_accounts.get((dst_key, src_key))
        if due_to_dst is None or due_from_src is None:
            raise SettlementError(f"no settlement channel between {src_key} and {dst_key}")
        txn1 = src.accounts.transfer(from_account, due_to_dst, amount, rur_blob=rur_blob)
        txn2 = dst.accounts.transfer(due_from_src, to_account, amount, rur_blob=rur_blob)
        pending_amount, pending_count = self._pending.get((src_key, dst_key), (ZERO, 0))
        self._pending[(src_key, dst_key)] = (pending_amount + amount, pending_count + 1)
        self.cross_transfers += 1
        return {"local": False, "transactions": [txn1, txn2]}

    # -- settlement -----------------------------------------------------------

    def net_position(self, key_a: tuple[int, int], key_b: tuple[int, int]) -> Credits:
        """Net amount branch *a* owes branch *b* from pending flows."""
        a_to_b, _ = self._pending.get((key_a, key_b), (ZERO, 0))
        b_to_a, _ = self._pending.get((key_b, key_a), (ZERO, 0))
        return a_to_b - b_to_a

    def settle(self) -> list[SettlementBatch]:
        """Bilateral netting: one clearing movement per indebted pair.

        Moves real value between branches (external rails), restoring every
        settlement account to zero, then clears the pending log.
        """
        batches: list[SettlementBatch] = []
        keys = sorted(self._branches)
        for i, key_a in enumerate(keys):
            for key_b in keys[i + 1 :]:
                flow_ab, count_ab = self._pending.get((key_a, key_b), (ZERO, 0))
                flow_ba, count_ba = self._pending.get((key_b, key_a), (ZERO, 0))
                total_count = count_ab + count_ba
                if total_count == 0:
                    continue
                net = flow_ab - flow_ba
                if net > ZERO:
                    debtor, creditor, amount = key_a, key_b, net
                elif net < ZERO:
                    debtor, creditor, amount = key_b, key_a, -net
                else:
                    debtor = creditor = None
                    amount = ZERO
                self._clear_pair(key_a, key_b, flow_ab, flow_ba)
                self.settlement_messages += 1
                if debtor is not None:
                    batches.append(
                        SettlementBatch(
                            debtor=debtor,
                            creditor=creditor,
                            amount=amount,
                            transfers_netted=total_count,
                        )
                    )
                self._pending.pop((key_a, key_b), None)
                self._pending.pop((key_b, key_a), None)
        return batches

    def _clear_pair(
        self,
        key_a: tuple[int, int],
        key_b: tuple[int, int],
        flow_ab: Credits,
        flow_ba: Credits,
    ) -> None:
        """Zero the bilateral settlement accounts via the external rails.

        Each branch holds ONE account per peer that nets both directions:
        at branch A the (A,B) account sits at ``flow_ab - flow_ba`` and at
        branch B the (B,A) account sits at ``flow_ba - flow_ab``. Clearing
        withdraws the net at the creditor-side surplus account and deposits
        it into the debtor-side overdrawn account.
        """
        net = flow_ab - flow_ba  # > 0 means A owes B
        if net == ZERO:
            return
        server_a = self._branches[key_a]
        server_b = self._branches[key_b]
        if net > ZERO:
            server_a.admin.withdraw(self._settlement_accounts[(key_a, key_b)], net)
            server_b.admin.deposit(self._settlement_accounts[(key_b, key_a)], net)
        else:
            server_b.admin.withdraw(self._settlement_accounts[(key_b, key_a)], -net)
            server_a.admin.deposit(self._settlement_accounts[(key_a, key_b)], -net)

    def settlement_account_balance(self, holder: tuple[int, int], peer: tuple[int, int]) -> Credits:
        account = self._settlement_accounts[(holder, peer)]
        return self._branches[holder].accounts.available_balance(account)
