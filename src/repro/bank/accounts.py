"""GB Accounts — the core module interacting with the GB database.

"It provides functions for basic account operations such as creation of
accounts, requesting and updating account details, transfer of funds from
one account to another, locking funds and transfer from locked funds.
This module is independent of payment scheme, protocols used and
underlying security model." (paper sec 3.2)

Every mutating operation runs inside a database transaction, keeping the
conservation-of-funds invariant exact: transfers never create or destroy
credits; only Deposit/Withdrawal (admin operations) change the bank total.

Concurrency: each mutator holds its accounts' striped locks (exclusive,
canonical order — see :mod:`repro.bank.locks`) across the transaction
*and its commit*, so conflicting writers serialize and the WAL records
them in execution order. The locks are re-entrant, so the server layer
may pre-acquire an operation's full lock set around a wider transaction.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.bank.records import (
    ACCOUNT_STATUS_OPEN,
    TXN_DEPOSIT,
    TXN_TRANSFER,
    TXN_WITHDRAWAL,
    AccountID,
    account_schema,
    admin_schema,
    credits_to_db,
    db_to_credits,
    instrument_schema,
    transaction_schema,
    transfer_schema,
)
from repro.bank.locks import AccountLocks
from repro.db.database import Database
from repro.db.query import between, eq
from repro.errors import (
    AccountClosedError,
    AccountError,
    InsufficientFundsError,
    NotFoundError,
    ValidationError,
)
from repro.obs.trace import current_trace_id
from repro.util.gbtime import Clock, SystemClock, Timestamp
from repro.util.ids import IdGenerator
from repro.util.money import Credits, ZERO

__all__ = ["GBAccounts"]


class GBAccounts:
    """Account operations over the GridBank database."""

    #: Cap on consecutive ``id_filter`` rejections per mint. A shard owning
    #: a fraction f of the hash ring accepts a candidate with probability f,
    #: so even a 1/10_000 sliver clears this comfortably; hitting the cap
    #: means the shard effectively owns nothing and the caller should mint
    #: elsewhere instead of exhausting the id space.
    _MAX_MINT_REJECTIONS = 50_000

    def __init__(
        self,
        db: Database,
        clock: Optional[Clock] = None,
        bank_number: int = 1,
        branch_number: int = 1,
    ) -> None:
        self.db = db
        self.clock = clock if clock is not None else SystemClock()
        self.bank_number = bank_number
        self.branch_number = branch_number
        self.locks = AccountLocks()
        self._counter_lock = threading.Lock()
        # sharding hook: when set (see repro.bank.shard.ShardNode), newly
        # minted AccountIDs must satisfy the predicate — a shard only
        # creates accounts that hash into its own ranges
        self.id_filter: Optional[Callable[[str], bool]] = None
        for schema_fn in (account_schema, transaction_schema, transfer_schema, admin_schema, instrument_schema):
            schema = schema_fn()
            if schema.name not in db.table_names():
                db.create_table(schema)
        self.rescan_ids()

    def rescan_ids(self) -> None:
        """Re-derive id counters from persisted rows.

        Called at construction and again after :meth:`Database.recover`
        replays the journal (recovery happens after tables exist, so the
        construction-time scan sees an empty database).
        """
        self._next_account = self._scan_next_account()
        self._txn_ids = IdGenerator(
            start=self._scan_max(("transactions", "TransactionID"), ("transfers", "TransactionID")) + 1
        )
        self._entry_ids = IdGenerator(start=self._scan_max(("transactions", "EntryID")) + 1)

    # -- id allocation (recovery-safe: continue after max persisted id) -----

    def _scan_next_account(self) -> int:
        highest = 0
        for row in self.db.table("accounts").all_rows():
            highest = max(highest, AccountID.parse(row["AccountID"]).account)
        return highest + 1

    def _scan_max(self, *columns: tuple[str, str]) -> int:
        highest = 0
        for table_name, column in columns:
            for row in self.db.table(table_name).all_rows():
                highest = max(highest, row[column])
        return highest

    # -- account lifecycle ----------------------------------------------------

    def create_account(
        self,
        certificate_name: str,
        organization_name: str = "",
        currency: str = "GridDollar",
        credit_limit: Credits = ZERO,
    ) -> str:
        """Open an account for *certificate_name*; returns the AccountID."""
        if not certificate_name:
            raise ValidationError("certificate name must be non-empty")
        if credit_limit < ZERO:
            raise ValidationError("credit limit must be >= 0")
        with self._counter_lock:
            # mint candidates past the filter WITHOUT advancing the durable
            # counter until one is accepted: a shard that owns a sliver of
            # the ring (or, transiently, none — the filter raises then)
            # must not burn through the 10^8 id space on rejections
            candidate = self._next_account
            rejections = 0
            while True:
                if candidate > 99_999_999:
                    raise AccountError("account number space exhausted")
                account_id = str(
                    AccountID(self.bank_number, self.branch_number, candidate)
                )
                accept = self.id_filter
                if accept is None or accept(account_id):
                    self._next_account = candidate + 1
                    break
                candidate += 1
                rejections += 1
                if rejections >= self._MAX_MINT_REJECTIONS:
                    raise AccountError(
                        f"no account id hashing into this shard's ranges within "
                        f"{rejections} candidates — retry on another shard"
                    )
        self.db.insert(
            "accounts",
            {
                "AccountID": account_id,
                "CertificateName": certificate_name,
                "OrganizationName": organization_name,
                "Currency": currency,
                "CreditLimit": credits_to_db(credit_limit),
            },
        )
        return account_id

    def get_account(self, account_id: str) -> dict:
        """ACCOUNT RECORD for *account_id* (Request Account Details)."""
        row = self.db.find("accounts", (account_id,))
        if row is None:
            raise NotFoundError(f"no account {account_id!r}")
        return row

    def require_open(self, account_id: str) -> dict:
        row = self.get_account(account_id)
        if row["Status"] != ACCOUNT_STATUS_OPEN:
            raise AccountClosedError(f"account {account_id!r} is closed")
        return row

    def update_account(self, account_id: str, certificate_name: Optional[str] = None,
                       organization_name: Optional[str] = None) -> dict:
        """Update Account Details — "Only CertificateName and
        OrganizationName can be modified" (sec 5.2)."""
        self.require_open(account_id)
        changes: dict = {}
        if certificate_name is not None:
            if not certificate_name:
                raise ValidationError("certificate name must be non-empty")
            changes["CertificateName"] = certificate_name
        if organization_name is not None:
            changes["OrganizationName"] = organization_name
        if changes:
            self.db.update("accounts", (account_id,), changes)
        return self.get_account(account_id)

    def accounts_for_subject(self, certificate_name: str) -> list[dict]:
        return self.db.select("accounts", [eq("CertificateName", certificate_name)], order_by="AccountID")

    def subject_has_account(self, certificate_name: str) -> bool:
        return self.db.table("accounts").exists([eq("CertificateName", certificate_name)])

    def owner_of(self, account_id: str) -> str:
        return self.get_account(account_id)["CertificateName"]

    # -- balances -----------------------------------------------------------------

    def available_balance(self, account_id: str) -> Credits:
        return db_to_credits(self.get_account(account_id)["AvailableBalance"])

    def locked_balance(self, account_id: str) -> Credits:
        return db_to_credits(self.get_account(account_id)["LockedBalance"])

    def credit_limit(self, account_id: str) -> Credits:
        return db_to_credits(self.get_account(account_id)["CreditLimit"])

    def total_bank_funds(self) -> Credits:
        """Sum of available+locked across all accounts (invariant probe)."""
        total = ZERO
        for row in self.db.table("accounts").all_rows():
            total = total + db_to_credits(row["AvailableBalance"]) + db_to_credits(row["LockedBalance"])
        return total

    def _set_balances(self, account_id: str, available: Credits, locked: Optional[Credits] = None) -> None:
        changes = {"AvailableBalance": credits_to_db(available)}
        if locked is not None:
            changes["LockedBalance"] = credits_to_db(locked)
        self.db.update("accounts", (account_id,), changes)

    def _require_same_currency(self, drawer: dict, recipient: dict) -> None:
        """VOs may run their own currencies (sec 1); the single-branch
        ledger never converts — mismatched transfers are rejected. Cross-
        currency settlement is a multi-bank protocol concern (sec 6)."""
        if drawer["Currency"] != recipient["Currency"]:
            raise AccountError(
                f"currency mismatch: {drawer['AccountID']} holds {drawer['Currency']}, "
                f"{recipient['AccountID']} holds {recipient['Currency']}"
            )

    def _require_covered(self, row: dict, amount: Credits) -> None:
        available = db_to_credits(row["AvailableBalance"])
        limit = db_to_credits(row["CreditLimit"])
        if available - amount < -limit:
            raise InsufficientFundsError(
                f"account {row['AccountID']}: available {available} + credit limit {limit} "
                f"cannot cover {amount}"
            )

    # -- transaction journal helpers ------------------------------------------------

    def _post_entry(self, account_id: str, txn_id: int, txn_type: str, amount: Credits,
                    when: Timestamp) -> None:
        self.db.insert(
            "transactions",
            {
                "EntryID": self._entry_ids.next_int(),
                "TransactionID": txn_id,
                "AccountID": account_id,
                "Type": txn_type,
                "Date": when,
                "Amount": credits_to_db(amount),
                "TraceID": current_trace_id(),
            },
        )

    # -- funds movement ----------------------------------------------------------------

    def deposit(self, account_id: str, amount: Credits) -> int:
        """Credit external funds (admin path); returns the TransactionID."""
        amount = Credits(amount).require_positive("deposit amount")
        with self.locks.exclusive(account_id), self.db.transaction():
            row = self.require_open(account_id)
            txn_id = self._txn_ids.next_int()
            when = self.clock.now()
            self._set_balances(account_id, db_to_credits(row["AvailableBalance"]) + amount)
            self._post_entry(account_id, txn_id, TXN_DEPOSIT, amount, when)
            return txn_id

    def withdraw(self, account_id: str, amount: Credits) -> int:
        """Debit funds out of the bank (admin path); no credit-limit use."""
        amount = Credits(amount).require_positive("withdrawal amount")
        with self.locks.exclusive(account_id), self.db.transaction():
            row = self.require_open(account_id)
            available = db_to_credits(row["AvailableBalance"])
            if available < amount:
                raise InsufficientFundsError(
                    f"account {account_id}: cannot withdraw {amount} from {available}"
                )
            txn_id = self._txn_ids.next_int()
            self._set_balances(account_id, available - amount)
            self._post_entry(account_id, txn_id, TXN_WITHDRAWAL, -amount, self.clock.now())
            return txn_id

    def transfer(
        self,
        from_account: str,
        to_account: str,
        amount: Credits,
        rur_blob: bytes = b"",
    ) -> int:
        """Move *amount* between accounts; returns the TransactionID.

        Writes the TRANSFER record plus the two per-account TRANSACTION
        entries (drawer negative, recipient positive) atomically.
        """
        amount = Credits(amount).require_positive("transfer amount")
        if from_account == to_account:
            raise AccountError("cannot transfer to the same account")
        with self.locks.exclusive(from_account, to_account), self.db.transaction():
            drawer = self.require_open(from_account)
            recipient = self.require_open(to_account)
            self._require_same_currency(drawer, recipient)
            self._require_covered(drawer, amount)
            txn_id = self._txn_ids.next_int()
            when = self.clock.now()
            self._set_balances(from_account, db_to_credits(drawer["AvailableBalance"]) - amount)
            self._set_balances(to_account, db_to_credits(recipient["AvailableBalance"]) + amount)
            self._post_entry(from_account, txn_id, TXN_TRANSFER, -amount, when)
            self._post_entry(to_account, txn_id, TXN_TRANSFER, amount, when)
            self.db.insert(
                "transfers",
                {
                    "TransactionID": txn_id,
                    "Date": when,
                    "DrawerAccountID": from_account,
                    "Amount": credits_to_db(amount),
                    "RecipientAccountID": to_account,
                    "ResourceUsageRecord": rur_blob,
                    "TraceID": current_trace_id(),
                },
            )
            return txn_id

    # -- locked funds (payment guarantee, sec 3.4) ---------------------------------------

    def lock_funds(self, account_id: str, amount: Credits) -> None:
        """Move *amount* from available to locked balance.

        The lock may draw on the credit limit (a cheque can reserve up to
        balance + credit), but locked funds themselves are always real:
        the available balance may go negative only down to -CreditLimit.
        """
        amount = Credits(amount).require_positive("lock amount")
        with self.locks.exclusive(account_id), self.db.transaction():
            row = self.require_open(account_id)
            self._require_covered(row, amount)
            self._set_balances(
                account_id,
                db_to_credits(row["AvailableBalance"]) - amount,
                db_to_credits(row["LockedBalance"]) + amount,
            )

    def unlock_funds(self, account_id: str, amount: Credits) -> None:
        """Return *amount* from locked to available."""
        amount = Credits(amount).require_positive("unlock amount")
        with self.locks.exclusive(account_id), self.db.transaction():
            row = self.get_account(account_id)
            locked = db_to_credits(row["LockedBalance"])
            if locked < amount:
                raise AccountError(f"account {account_id}: only {locked} locked, cannot unlock {amount}")
            self._set_balances(
                account_id,
                db_to_credits(row["AvailableBalance"]) + amount,
                locked - amount,
            )

    def transfer_from_locked(
        self,
        from_account: str,
        to_account: str,
        amount: Credits,
        rur_blob: bytes = b"",
    ) -> int:
        """Settle a guaranteed payment out of the drawer's locked balance."""
        amount = Credits(amount).require_positive("transfer amount")
        if from_account == to_account:
            raise AccountError("cannot transfer to the same account")
        with self.locks.exclusive(from_account, to_account), self.db.transaction():
            drawer = self.get_account(from_account)
            recipient = self.require_open(to_account)
            self._require_same_currency(drawer, recipient)
            locked = db_to_credits(drawer["LockedBalance"])
            if locked < amount:
                raise InsufficientFundsError(
                    f"account {from_account}: locked balance {locked} cannot cover {amount}"
                )
            txn_id = self._txn_ids.next_int()
            when = self.clock.now()
            self.db.update(
                "accounts", (from_account,), {"LockedBalance": credits_to_db(locked - amount)}
            )
            self._set_balances(to_account, db_to_credits(recipient["AvailableBalance"]) + amount)
            self._post_entry(from_account, txn_id, TXN_TRANSFER, -amount, when)
            self._post_entry(to_account, txn_id, TXN_TRANSFER, amount, when)
            self.db.insert(
                "transfers",
                {
                    "TransactionID": txn_id,
                    "Date": when,
                    "DrawerAccountID": from_account,
                    "Amount": credits_to_db(amount),
                    "RecipientAccountID": to_account,
                    "ResourceUsageRecord": rur_blob,
                    "TraceID": current_trace_id(),
                },
            )
            return txn_id

    # -- statements ------------------------------------------------------------------------

    def statement(self, account_id: str, start: Timestamp, end: Timestamp) -> dict:
        """Request Account Statement (sec 5.2): the account record plus its
        TRANSACTION entries and related TRANSFER records in [start, end]."""
        account = self.get_account(account_id)
        if end < start:
            raise ValidationError("statement end before start")
        window = between("Date", start.stamp14, end.stamp14)
        transactions = self.db.select(
            "transactions", [eq("AccountID", account_id), window], order_by="EntryID"
        )
        txn_ids = {t["TransactionID"] for t in transactions}
        transfers = [
            row
            for row in self.db.select("transfers", [window], order_by="TransactionID")
            if row["TransactionID"] in txn_ids
        ]
        return {"account": account, "transactions": transactions, "transfers": transfers}

    def transfer_record(self, txn_id: int) -> dict:
        row = self.db.find("transfers", (txn_id,))
        if row is None:
            raise NotFoundError(f"no transfer {txn_id}")
        return row
