"""Striped account locks — the bank's row-level concurrency control.

The database serializes individual table operations but deliberately has
no row locks (see :mod:`repro.db.database`); transactions touching the
same rows must be serialized by the caller. For the bank that caller is
this module: every account maps onto one of N lock stripes, mutating
operations hold their accounts' stripes in **exclusive** mode for the
whole operation *through commit acknowledgement* (so the WAL line order
matches the in-memory mutation order for any two conflicting writers),
and read-only operations take the stripe in **shared** mode so they
never observe a transfer half-applied while still running in parallel
with each other.

Deadlock freedom is by canonical ordering: a multi-account operation
sorts its stripe indexes and acquires ascending, releases descending —
two transfers A→B and B→A therefore contend on the first stripe instead
of deadlocking. Exclusive holds are re-entrant per thread, which lets
the server layer take the operation's full lock set up front while the
accounts layer independently locks each primitive it executes.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["AccountLocks", "set_wait_hook", "wait_hook"]

# Contention observability (the diagnosis plane, :mod:`repro.obs.diag`):
# when a hook is installed, every *blocked* acquisition times its wait and
# reports ``hook(stripe_index, mode, waited_seconds)``. The uncontended
# path — the overwhelmingly common case — pays exactly one extra ``is not
# None`` check per blocked-loop entry and nothing at all when it never
# blocks, keeping the bank's hot path clean with diagnostics off.
_wait_hook: Optional[Callable[[int, str, float], None]] = None


def set_wait_hook(hook: Optional[Callable[[int, str, float], None]]) -> None:
    """Install (or clear, with ``None``) the stripe-wait hook."""
    global _wait_hook
    _wait_hook = hook


def wait_hook() -> Optional[Callable[[int, str, float], None]]:
    return _wait_hook


class _StripeLock:
    """Shared/exclusive lock, re-entrant for the thread holding exclusive.

    No upgrade path: a thread holding only shared mode must not request
    exclusive (the bank's read-only operations never call mutators).
    A thread holding exclusive may take either mode again (counted as
    nested exclusive depth).
    """

    __slots__ = ("_cond", "_readers", "_writer", "_depth", "index")

    def __init__(self, index: int = -1) -> None:
        # a plain Lock under the Condition: the mutex is never re-entered
        # (re-entrancy is tracked by _writer/_depth), and Lock is cheaper
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer: int | None = None
        self._depth = 0
        self.index = index

    def _wait_blocked(self, exclusive: bool) -> None:
        """Wait (condition held) until this mode can be granted, timing
        the wait for the diagnosis plane when a hook is installed."""
        hook = _wait_hook
        start = time.perf_counter() if hook is not None else 0.0
        if exclusive:
            while self._writer is not None or self._readers:
                self._cond.wait()
        else:
            while self._writer is not None:
                self._cond.wait()
        if hook is not None:
            try:
                hook(self.index, "exclusive" if exclusive else "shared",
                     time.perf_counter() - start)
            except Exception:  # noqa: BLE001 - diagnostics never break locking
                pass

    def acquire_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._depth += 1
                return
            if self._writer is not None:
                self._wait_blocked(exclusive=False)
            self._readers += 1

    def release_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._depth -= 1
                if self._depth == 0:
                    self._writer = None
                    self._cond.notify_all()
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._depth += 1
                return
            if self._writer is not None or self._readers:
                self._wait_blocked(exclusive=True)
            self._writer = me
            self._depth = 1

    def release_exclusive(self) -> None:
        with self._cond:
            self._depth -= 1
            if self._depth == 0:
                self._writer = None
                self._cond.notify_all()


class _HeldStripes:
    """Plain (non-generator) context manager for a canonical lock set.

    This sits on every bank operation, so it avoids the ``@contextmanager``
    generator machinery — measurably cheaper on hot single-account ops.
    """

    __slots__ = ("_locks", "_shared")

    def __init__(self, locks: list, shared: bool) -> None:
        self._locks = locks
        self._shared = shared

    def __enter__(self) -> None:
        if self._shared:
            for lock in self._locks:
                lock.acquire_shared()
        else:
            for lock in self._locks:
                lock.acquire_exclusive()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._shared:
            for lock in reversed(self._locks):
                lock.release_shared()
        else:
            for lock in reversed(self._locks):
                lock.release_exclusive()


class AccountLocks:
    """Fixed pool of stripe locks keyed by account id hash."""

    def __init__(self, stripes: int = 64) -> None:
        if stripes < 1:
            raise ValueError("need at least one stripe")
        self._stripes = tuple(_StripeLock(i) for i in range(stripes))

    def stripe_of(self, account_id: str) -> int:
        return hash(account_id) % len(self._stripes)

    def _ordered(self, account_ids: tuple) -> list[_StripeLock]:
        if len(account_ids) == 1:  # the common case: one account, one stripe
            if account_ids[0]:
                return [self._stripes[self.stripe_of(account_ids[0])]]
            return []
        indexes = sorted({self.stripe_of(a) for a in account_ids if a})
        return [self._stripes[i] for i in indexes]

    def exclusive(self, *account_ids: str) -> _HeldStripes:
        """Hold every named account's stripe exclusively (canonical order)."""
        return _HeldStripes(self._ordered(account_ids), shared=False)

    def shared(self, *account_ids: str) -> _HeldStripes:
        """Hold every named account's stripe in shared (read) mode."""
        return _HeldStripes(self._ordered(account_ids), shared=True)
