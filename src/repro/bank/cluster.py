"""Primary/standby GridBank cluster — WAL shipping over the RPC layer.

The paper's sec 6 anticipates "multiple servers/branches across the
Grid"; PR 4 made one bank fast, this module keeps it *available*. A
:class:`ClusterNode` wraps a :class:`~repro.bank.server.GridBankServer`
and exposes the replication stream as ordinary authenticated RPC
operations on the bank's own endpoint:

``Replication.Status``
    position + role + fencing epoch (peers and admins only).
``Replication.Snapshot``
    full :meth:`~repro.db.database.Database.state_dump` bootstrap.
``Replication.Fetch``
    long-poll the :class:`~repro.db.replication.ReplicationLog` for
    committed journal lines after ``(epoch, seq)``. Refuses with
    :class:`~repro.errors.NotPrimaryError` on a non-primary, so a
    standby whose upstream was demoted re-routes automatically.
``Cluster.Promote`` / ``Cluster.Demote``
    controlled failover (admin-only promote; demote carries the new
    fencing epoch and is refused unless it is strictly newer).
``Telemetry.Snapshot``
    one node's telemetry view — replication status, SLO alert states,
    per-principal usage top-K, hottest ops — which ``gridbank top``
    aggregates across the whole cluster.

A standby pulls the stream on a background :class:`StandbyReplicator`
thread and replays each line through
:meth:`~repro.db.database.Database.apply_replicated` — the exact
recovery path a crashed primary would take — so replica state, *reply
cache included*, is byte-identical by construction. That last point is
the availability half of exactly-once: the reply cache commits in the
same WAL line as each operation's ledger effects, ships in the same
stream, and therefore a client retrying an in-flight call against the
promoted standby gets the original reply instead of a double-apply.

Fencing: every node carries a ``cluster_epoch``. Promotion bumps it;
the new primary best-effort demotes the old one with the bumped epoch,
and a node only ever accepts a demotion carrying a *strictly newer*
epoch — a stale ex-primary cannot fence the node that replaced it. A
demoted ex-primary does NOT rejoin the stream automatically: its WAL
may have committed lines the new primary never saw (the shipping window
is asynchronous), so rejoining requires an explicit
:meth:`ClusterNode.follow` with ``resync=True``, which discards local
state for a fresh snapshot bootstrap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.bank.server import GridBankServer
from repro.db.integrity import Scrubber
from repro.db.replication import FETCH_OK, FETCH_RESYNC
from repro.errors import (
    AuthorizationError,
    CorruptionError,
    DatabaseError,
    NotPrimaryError,
    ReproError,
    TransportError,
)
from repro.net import frontend_snapshot
from repro.net.rpc import RPCClient
from repro.net.retry import RetryPolicy
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.obs.usage import hot_operations

__all__ = ["ClusterNode", "StandbyReplicator", "PrimaryRouter", "ReplicatedBranch", "cluster_client"]

_log = get_logger("bank.cluster")


class ClusterNode:
    """One bank process in a replicated cluster.

    *connect* is the transport dialer (``address -> connection``), e.g.
    ``network.connect`` for the in-process transport or a
    ``TCPClientConnection`` lambda. Nodes of one logical bank normally
    share the bank's identity — a cheque signed by the primary must
    still verify on the promoted standby — and a caller presenting that
    shared credential is automatically a cluster peer; *peer_subjects*
    adds further subjects (split-identity topologies), and the bank's
    administrators always qualify.
    """

    def __init__(
        self,
        bank: GridBankServer,
        address: str,
        connect: Callable[[str], object],
        peer_subjects: Iterable[str] = (),
        lease_timeout: Optional[float] = None,
        auto_promote: bool = False,
        staleness_bound: Optional[float] = None,
        poll_interval: float = 0.02,
        fetch_batch: int = 256,
        long_poll: float = 0.5,
        scrub_interval: Optional[float] = None,
        auto_repair: bool = True,
        diag: Optional[object] = None,
    ) -> None:
        self.bank = bank
        self.address = address
        self.connect = connect
        #: this node's :class:`repro.obs.diag.DiagPlane` (serve wires it);
        #: None falls back to the process-wide active plane, so the Diag
        #: RPCs still answer on nodes built without explicit wiring
        self.diag = diag
        self.peer_subjects = set(peer_subjects)
        self.lease_timeout = lease_timeout
        self.auto_promote = auto_promote
        self.staleness_bound = staleness_bound
        self.poll_interval = poll_interval
        self.fetch_batch = fetch_batch
        #: server-side wait when the stream is dry — the fetch parks on
        #: the log's condition and wakes the instant a line commits, so a
        #: longer value means FEWER round-trips AND lower shipping latency
        self.long_poll = long_poll
        #: fencing token — promotion bumps it, demotion only ever accepts
        #: a strictly newer one
        self.cluster_epoch = 1
        self.log = bank.db.enable_replication()
        self.replicator: Optional[StandbyReplicator] = None
        self._last_caught_up = bank.clock.epoch()
        self._role_lock = threading.RLock()
        bank.primary_address = address if bank.role == "primary" else bank.primary_address
        self._register_operations()
        #: background scrubber re-verifying cold WAL/snapshot bytes; on
        #: corruption it attempts a replica-backed repair (auto_repair)
        self.auto_repair = auto_repair
        self.scrubber: Optional[Scrubber] = None
        if scrub_interval is not None and bank.db.persistent:
            self.scrubber = Scrubber(
                self._scrub_pass,
                interval=scrub_interval,
                on_corruption=self._on_scrub_corruption,
            )
            self.scrubber.start()

    # -- roles ---------------------------------------------------------------

    def follow(self, primary_address: str, resync: bool = False) -> "StandbyReplicator":
        """Become (or re-point) a standby of *primary_address*.

        ``resync=True`` discards local position and bootstraps from a
        fresh snapshot — required when this node's WAL may have diverged
        (an ex-primary rejoining after failover).
        """
        with self._role_lock:
            self._stop_replicator()
            bank = self.bank
            bank.role = "standby"
            bank.primary_address = primary_address
            bank.read_staleness_bound = self.staleness_bound
            bank.replica_lag = self.lag_seconds
            replicator = StandbyReplicator(self, primary_address, resync=resync)
            self.replicator = replicator
            replicator.start()
            _log.info(
                "cluster.follow", node=self.address, primary=primary_address, resync=resync
            )
            return replicator

    def promote(self, reason: str = "manual") -> dict:
        """Make this node the primary: drain whatever tail of the stream
        is still reachable, rescan in-memory state from the replicated
        tables, bump the fencing epoch, accept writes, and best-effort
        demote the old primary. Idempotent on an existing primary."""
        with self._role_lock:
            bank = self.bank
            if bank.role == "primary":
                return self.status()
            replicator = self.replicator
            old_primary = bank.primary_address
            with obs_trace.span(
                "replication.promote", kind="cluster", node=self.address, reason=reason
            ):
                # stop the poll thread first so the drain below is the
                # only writer replaying the stream
                self._stop_replicator()
                if replicator is not None:
                    replicator.drain_tail()
                # the replicated WAL repopulated tables underneath the
                # layers; counters/caches must resync before any write
                bank.rescan_state()
                self.cluster_epoch += 1
                bank.role = "primary"
                bank.primary_address = self.address
                bank.read_staleness_bound = None
                bank.replica_lag = None
            obs_metrics.counter("replication.failovers").inc()
            epoch, seq = bank.db.replication_position()
            _log.info(
                "cluster.promoted",
                node=self.address,
                reason=reason,
                cluster_epoch=self.cluster_epoch,
                epoch=epoch,
                seq=seq,
            )
            if old_primary and old_primary != self.address:
                self._demote_peer(old_primary)
            return self.status()

    def demote(self, cluster_epoch: int, primary_address: str) -> None:
        """Fence this node out in favour of *primary_address*.

        Only a strictly newer fencing epoch is honoured — a stale
        ex-primary replaying an old demotion cannot fence the node that
        superseded it. The demoted node stops accepting writes but does
        NOT auto-rejoin the stream (see module docstring)."""
        with self._role_lock:
            if cluster_epoch <= self.cluster_epoch:
                raise AuthorizationError(
                    f"stale demotion: epoch {cluster_epoch} <= current {self.cluster_epoch}"
                )
            self._stop_replicator()
            self.cluster_epoch = cluster_epoch
            self.bank.role = "standby"
            self.bank.primary_address = primary_address
            self.bank.read_staleness_bound = self.staleness_bound
            # no replicator: the lag is unknown/unbounded until an
            # explicit resync, so reads past the bound must refuse
            self.bank.replica_lag = self.lag_seconds
            _log.info(
                "cluster.demoted",
                node=self.address,
                new_primary=primary_address,
                cluster_epoch=cluster_epoch,
            )

    def crash(self) -> None:
        """Simulate process death: the endpoint stops answering anything
        (clients see connection-closed transport errors) and the
        replicator, if any, halts. Database state stays on disk exactly
        as a real crash would leave it."""
        self.bank.endpoint.crashed = True
        self._stop_replicator()
        _log.warning("cluster.crashed", node=self.address)

    def _stop_replicator(self) -> None:
        replicator = self.replicator
        self.replicator = None
        if replicator is not None:
            replicator.stop()

    def close(self) -> None:
        """Stop background machinery (scrubber + replicator)."""
        if self.scrubber is not None:
            self.scrubber.stop()
            self.scrubber = None
        self._stop_replicator()

    # -- storage integrity ----------------------------------------------------

    def _scrub_pass(self) -> None:
        with obs_trace.span("integrity.scrub", kind="integrity", node=self.address):
            self.bank.db.scrub_once()

    def _on_scrub_corruption(self, exc: CorruptionError) -> None:
        _log.error(
            "integrity.scrub_corruption",
            node=self.address, seq=exc.seq, offset=exc.offset, reason=str(exc),
        )
        if not self.auto_repair:
            return
        try:
            self.repair(reason="scrubber")
        except (ReproError, OSError) as err:
            _log.error(
                "integrity.repair_failed",
                node=self.address, error=type(err).__name__, reason=str(err),
            )

    def repair(self, peer_address: Optional[str] = None, reason: str = "operator") -> dict:
        """Self-heal from a healthy peer after local storage corruption.

        Fetches a fresh, manifest-verified snapshot via the existing
        ``Replication.Snapshot`` RPC, loads it (which atomically rewrites
        the local snapshot and truncates the damaged WAL), rescans
        in-memory bank state, and re-verifies every local byte before
        declaring victory — the node never rejoins the stream on bytes it
        has not checked. A standby resumes following its (possibly new)
        upstream afterwards.
        """
        with self._role_lock:
            peer = peer_address
            if peer is None and self.bank.primary_address not in (None, "", self.address):
                peer = self.bank.primary_address
            if peer is None:
                raise DatabaseError("repair requires a healthy peer address")
            was_standby = self.bank.role == "standby"
            db = self.bank.db
            with obs_trace.span(
                "integrity.repair", kind="integrity",
                node=self.address, peer=peer, reason=reason,
            ):
                self._stop_replicator()
                client = self._peer_client(peer)
                try:
                    reply = client.call("Replication.Snapshot")
                finally:
                    client.close()
                db.clear_corruption()
                db.load_state(reply["state"])
                self.bank.rescan_state()
                report = db.verify_storage() if db.persistent else None
                if report is not None and not report.ok:
                    # the freshly-written bytes failed verification: the
                    # local medium is actively eating writes — latch and
                    # refuse rather than pretend the node is healthy
                    raise report.corruption
            obs_metrics.counter("db.integrity.repairs").inc()
            epoch, seq = db.replication_position()
            _log.info(
                "integrity.repaired",
                node=self.address, peer=peer, reason=reason, epoch=epoch, seq=seq,
            )
            if was_standby:
                self.follow(peer)
            return {
                "ok": True,
                "peer": peer,
                "epoch": epoch,
                "seq": seq,
                "snapshot_records": report.snapshot_records if report is not None else -1,
            }

    def _demote_peer(self, address: str) -> None:
        try:
            client = self._peer_client(address)
            try:
                client.call(
                    "Cluster.Demote",
                    cluster_epoch=self.cluster_epoch,
                    primary_address=self.address,
                )
            finally:
                client.close()
        except (ReproError, OSError) as exc:
            # best-effort: a dead old primary is fenced by construction
            # (it cannot demote us back without a newer epoch)
            _log.info(
                "cluster.demote_unreachable",
                peer=address,
                error=type(exc).__name__,
                reason=str(exc),
            )

    def _peer_client(self, address: str) -> RPCClient:
        client = RPCClient(
            self.connect(address),
            self.bank.identity,
            self.bank.endpoint.trust_store,
            clock=self.bank.clock,
        )
        client.connect()
        return client

    # -- observability -------------------------------------------------------

    def lag_records(self) -> int:
        replicator = self.replicator
        if replicator is None:
            return 0
        return replicator.lag_records

    def lag_seconds(self) -> float:
        """Seconds since this node last knew it matched the primary.

        With no running replicator (a fenced ex-primary, or a standby
        whose thread died) the lag grows without bound from the last
        caught-up instant — which is exactly what the staleness guard
        should see. A primary is its own source of truth: zero."""
        if self.bank.role == "primary":
            return 0.0
        replicator = self.replicator
        marker = replicator.caught_up_at if replicator is not None else self._last_caught_up
        return max(0.0, self.bank.clock.epoch() - marker)

    def status(self) -> dict:
        epoch, seq = self.bank.db.replication_position()
        integrity_state = self.bank.db.integrity_status()
        return {
            "node": self.address,
            "role": self.bank.role,
            "primary_address": self.bank.primary_address or "",
            "cluster_epoch": self.cluster_epoch,
            "epoch": epoch,
            "seq": seq,
            "lag_records": self.lag_records(),
            "lag_seconds": self.lag_seconds(),
            "integrity_ok": integrity_state["ok"],
            "corruption": integrity_state["corruption"],
        }

    # -- replication RPC operations -----------------------------------------

    def _require_peer(self, subject: str) -> None:
        # nodes of one logical bank share the bank's identity (payment
        # instruments signed by the primary must verify on the promoted
        # standby), so a caller holding the bank's own credential IS the
        # cluster; peer_subjects covers split-identity topologies
        if (
            subject == self.bank.subject
            or subject in self.peer_subjects
            or self.bank.admin.is_administrator(subject)
        ):
            return
        raise AuthorizationError(
            f"subject {subject!r} is neither a cluster peer nor an administrator"
        )

    def _register_operations(self) -> None:
        endpoint = self.bank.endpoint
        instrument = self.bank._instrumented
        endpoint.register("Replication.Status", instrument(self.op_replication_status))
        endpoint.register("Replication.Snapshot", instrument(self.op_replication_snapshot))
        endpoint.register("Replication.Fetch", instrument(self.op_replication_fetch))
        endpoint.register("Cluster.Promote", instrument(self.op_cluster_promote))
        endpoint.register("Cluster.Demote", instrument(self.op_cluster_demote))
        endpoint.register("Telemetry.Snapshot", instrument(self.op_telemetry_snapshot))
        endpoint.register("Integrity.Status", instrument(self.op_integrity_status))
        endpoint.register("Integrity.Repair", instrument(self.op_integrity_repair))
        endpoint.register("Diag.Profile", instrument(self.op_diag_profile))
        endpoint.register("Diag.FlightRecord", instrument(self.op_diag_flight_record))

    def op_replication_status(self, subject: str, params: dict) -> dict:
        self._require_peer(subject)
        return self.status()

    def op_replication_snapshot(self, subject: str, params: dict) -> dict:
        self._require_peer(subject)
        if self.bank.role != "primary":
            raise NotPrimaryError.for_primary(
                self.bank.primary_address, "snapshot bootstrap requires the primary"
            )
        state = self.bank.db.state_dump()
        obs_metrics.counter("replication.snapshots_served").inc()
        return {"state": state, "cluster_epoch": self.cluster_epoch}

    def op_replication_fetch(self, subject: str, params: dict) -> dict:
        self._require_peer(subject)
        if self.bank.role != "primary":
            raise NotPrimaryError.for_primary(
                self.bank.primary_address, "the replication stream requires the primary"
            )
        status, epoch, last_seq, records = self.log.fetch(
            int(params.get("epoch", 0)),
            int(params.get("from_seq", 0)),
            max_records=int(params.get("max_records", self.fetch_batch)),
            timeout=min(float(params.get("timeout", 0.0)), 1.0),
        )
        if records:
            obs_metrics.counter("replication.records_shipped").inc(len(records))
            obs_trace.add_event(
                "replication.ship", peer=subject, count=len(records), last_seq=last_seq
            )
        return {
            "status": status,
            "epoch": epoch,
            "last_seq": last_seq,
            "records": records,
            "cluster_epoch": self.cluster_epoch,
        }

    def op_cluster_promote(self, subject: str, params: dict) -> dict:
        if not self.bank.admin.is_administrator(subject):
            raise AuthorizationError(f"subject {subject!r} is not an administrator")
        return self.promote(reason=str(params.get("reason", "operator")))

    def op_cluster_demote(self, subject: str, params: dict) -> dict:
        self._require_peer(subject)
        self.demote(int(params["cluster_epoch"]), str(params.get("primary_address", "")))
        return self.status()

    def op_integrity_status(self, subject: str, params: dict) -> dict:
        """Latched corruption state plus (optionally) a fresh scrub."""
        self._require_peer(subject)
        if bool(params.get("scrub", False)) and self.bank.db.persistent:
            try:
                self._scrub_pass()
            except CorruptionError:
                pass  # latched; reported below
        return self.bank.db.integrity_status()

    def op_integrity_repair(self, subject: str, params: dict) -> dict:
        if not self.bank.admin.is_administrator(subject):
            raise AuthorizationError(f"subject {subject!r} is not an administrator")
        peer = params.get("peer") or None
        return self.repair(peer_address=peer, reason=str(params.get("reason", "operator")))

    def op_telemetry_snapshot(self, subject: str, params: dict) -> dict:
        """One node's full telemetry view for ``gridbank top``: replication
        status, per-objective SLO state, usage top-K and hottest ops."""
        self._require_peer(subject)
        top = int(params.get("top", 5))
        snap = self.status()
        metrics_snap = obs_metrics.snapshot()
        snap["slo"] = self.bank.slo.snapshot()
        snap["usage"] = self.bank.usage.snapshot(top)
        snap["hot_ops"] = hot_operations(metrics_snap, limit=top)
        snap["net"] = frontend_snapshot(metrics_snap)
        return snap

    def _diag_plane(self):
        if self.diag is not None:
            return self.diag
        from repro.obs import diag as obs_diag

        return obs_diag.active_plane()

    def op_diag_profile(self, subject: str, params: dict) -> dict:
        """Per-op CPU attribution + stripe-lock/WAL contention stats for
        ``gridbank profile`` / ``gridbank debug-bundle``."""
        self._require_peer(subject)
        plane = self._diag_plane()
        if plane is None:
            return {"enabled": False}
        return plane.profile_snapshot(top=int(params.get("top", 25)))

    def op_diag_flight_record(self, subject: str, params: dict) -> dict:
        """The flight recorder's rings (recent/slow spans, logs, metric
        deltas, fold deltas, trigger history) for bundle collection."""
        self._require_peer(subject)
        plane = self._diag_plane()
        if plane is None:
            return {"enabled": False}
        return plane.flight_snapshot(limit=int(params.get("limit", 128)))


class StandbyReplicator(threading.Thread):
    """Pull loop: stream committed WAL lines from the primary and replay
    them locally. Tracks lag for the staleness guard and, when the node
    is configured with ``auto_promote`` + ``lease_timeout``, promotes
    the node once the primary has been silent past the lease."""

    def __init__(self, node: ClusterNode, primary_address: str, resync: bool = False) -> None:
        super().__init__(name=f"replicator-{node.address}", daemon=True)
        self.node = node
        self.primary_address = primary_address
        self._need_bootstrap = resync
        self._stop_event = threading.Event()
        self._client: Optional[RPCClient] = None
        clock = node.bank.clock
        #: last successful exchange with the primary (lease basis)
        self.last_contact = clock.epoch()
        #: last instant this node knew it matched the primary's position
        self.caught_up_at = clock.epoch()
        self.lag_records = 0
        self._lag_records_gauge = obs_metrics.gauge("replication.lag_records")
        self._lag_seconds_gauge = obs_metrics.gauge("replication.lag_seconds")

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        self._stop_event.set()
        client = self._client
        self._client = None
        if client is not None:
            try:
                client.close()
            except ReproError:
                pass
        if self.is_alive() and threading.current_thread() is not self:
            self.join(timeout=5.0)
        self.node._last_caught_up = self.caught_up_at

    def run(self) -> None:
        while not self._stop_event.is_set():
            try:
                self._ensure_client()
                if self._need_bootstrap:
                    self._bootstrap_snapshot()
                advanced = self._poll_once()
                if not advanced or self.lag_records == 0:
                    # group shipping: once caught up, pause one poll
                    # interval so the next fetch carries a batch instead
                    # of answering every primary commit with its own
                    # signed RPC round-trip. A backlog (lag > 0) drains
                    # at full speed with no pause.
                    self._idle()
            except NotPrimaryError as exc:
                self._reroute(exc)
            except (ReproError, OSError) as exc:
                self._disconnect()
                _log.debug(
                    "replication.poll_failed",
                    node=self.node.address,
                    primary=self.primary_address,
                    error=type(exc).__name__,
                )
                self._maybe_auto_promote()
                self._idle()

    # -- plumbing ------------------------------------------------------------

    def _ensure_client(self) -> None:
        if self._client is None:
            self._client = self.node._peer_client(self.primary_address)

    def _disconnect(self) -> None:
        client = self._client
        self._client = None
        if client is not None:
            try:
                client.close()
            except ReproError:
                pass

    def _idle(self) -> None:
        # real-time pacing, independent of the bank's (possibly virtual)
        # clock: the poll loop must keep breathing even when nothing
        # advances simulated time
        self._stop_event.wait(self.node.poll_interval)

    def _reroute(self, exc: NotPrimaryError) -> None:
        address = exc.primary_address
        if address and address not in (self.primary_address, self.node.address):
            _log.info(
                "replication.reroute",
                node=self.node.address,
                old=self.primary_address,
                new=address,
            )
            self.primary_address = address
            self.node.bank.primary_address = address
            self._disconnect()
        else:
            self._maybe_auto_promote()
            self._idle()

    def _bootstrap_snapshot(self) -> None:
        assert self._client is not None
        reply = self._client.call("Replication.Snapshot")
        node = self.node
        with obs_trace.span("replication.bootstrap", kind="cluster", node=node.address):
            node.bank.db.load_state(reply["state"])
            node.bank.rescan_state()
        node.cluster_epoch = max(node.cluster_epoch, int(reply["cluster_epoch"]))
        self._need_bootstrap = False
        self._mark_contact(caught_up=False)
        obs_metrics.counter("replication.bootstraps").inc()
        epoch, seq = node.bank.db.replication_position()
        _log.info("replication.bootstrapped", node=node.address, epoch=epoch, seq=seq)

    def _poll_once(self) -> bool:
        """One fetch+replay round; returns True when records advanced."""
        assert self._client is not None
        node = self.node
        db = node.bank.db
        epoch, seq = db.replication_position()
        reply = self._client.call(
            "Replication.Fetch",
            epoch=epoch,
            from_seq=seq,
            max_records=node.fetch_batch,
            timeout=node.long_poll,
        )
        node.cluster_epoch = max(node.cluster_epoch, int(reply.get("cluster_epoch", 0)))
        if reply["status"] == FETCH_RESYNC:
            self._need_bootstrap = True
            self._mark_contact(caught_up=False)
            return True
        if seq > int(reply["last_seq"]):
            # the replica is AHEAD of the primary within the same epoch:
            # something wrote to this database locally (not through the
            # stream), so its contents have silently diverged. A plain
            # fetch would return empty forever; force a snapshot resync.
            obs_metrics.counter("replication.divergence_resyncs").inc()
            _log.warning(
                "replication.diverged",
                node=node.address,
                local_seq=seq,
                primary_seq=int(reply["last_seq"]),
            )
            self._need_bootstrap = True
            self._mark_contact(caught_up=False)
            return True
        records = reply["records"]
        if records:
            with obs_trace.span(
                "replication.replay", kind="cluster", node=node.address, count=len(records)
            ):
                for record_seq, payload in records:
                    db.apply_replicated(int(record_seq), payload)
            obs_metrics.counter("replication.records_applied").inc(len(records))
        _, seq_after = db.replication_position()
        self.lag_records = max(0, int(reply["last_seq"]) - seq_after)
        self._mark_contact(caught_up=self.lag_records == 0)
        return bool(records)

    def drain_tail(self) -> int:
        """Best-effort synchronous catch-up before promotion: pull
        whatever the (possibly dead) upstream can still serve until the
        stream runs dry. Errors are swallowed — a dead primary simply
        means the tail is whatever already shipped, which is the
        documented RPO window of asynchronous shipping."""
        applied = 0
        try:
            client = self.node._peer_client(self.primary_address)
        except (ReproError, OSError):
            return applied
        try:
            db = self.node.bank.db
            while True:
                epoch, seq = db.replication_position()
                reply = client.call(
                    "Replication.Fetch",
                    epoch=epoch,
                    from_seq=seq,
                    max_records=self.node.fetch_batch,
                    timeout=0.0,
                )
                if reply["status"] != FETCH_OK or not reply["records"]:
                    break
                for record_seq, payload in reply["records"]:
                    db.apply_replicated(int(record_seq), payload)
                    applied += 1
        except (ReproError, OSError):
            pass
        finally:
            try:
                client.close()
            except ReproError:
                pass
        if applied:
            obs_metrics.counter("replication.records_applied").inc(applied)
            _log.info(
                "replication.tail_drained", node=self.node.address, records=applied
            )
        return applied

    def _mark_contact(self, caught_up: bool) -> None:
        now = self.node.bank.clock.epoch()
        self.last_contact = now
        if caught_up:
            self.caught_up_at = now
        self._lag_records_gauge.set(float(self.lag_records))
        self._lag_seconds_gauge.set(max(0.0, now - self.caught_up_at))

    def _maybe_auto_promote(self) -> None:
        node = self.node
        if not node.auto_promote or node.lease_timeout is None:
            return
        if node.bank.role != "standby":
            return
        silent = node.bank.clock.epoch() - self.last_contact
        if silent > node.lease_timeout:
            _log.warning(
                "replication.lease_expired",
                node=node.address,
                silent=silent,
                lease=node.lease_timeout,
            )
            node.promote(reason="lease-timeout")
            self._stop_event.set()


class PrimaryRouter:
    """Reconnect factory that walks a cluster's addresses.

    Plugs into :class:`~repro.net.rpc.RPCClient` as its *reconnect*
    callable. Each invocation dials the head of the rotation and then
    advances it, so a client that keeps reconnecting (dead node, fenced
    ex-primary) probes the whole ring instead of hammering one member;
    :meth:`hint` — fed by the client from a
    :class:`~repro.errors.NotPrimaryError` redirect — moves the
    advertised primary to the front so the very next attempt lands
    there. One router serves one client: the client's nonce (and with it
    every idempotency key) survives the re-route, which is what makes a
    retried in-flight call exactly-once across failover.
    """

    def __init__(self, connect: Callable[[str], object], addresses: Iterable[str]) -> None:
        self._connect = connect
        self._order = deque(dict.fromkeys(addresses))
        if not self._order:
            raise ValueError("PrimaryRouter needs at least one address")
        self.current: Optional[str] = None

    def hint(self, address: Optional[str]) -> None:
        if not address:
            return
        try:
            self._order.remove(address)
        except ValueError:
            pass
        self._order.appendleft(address)

    def __call__(self):
        last_error: Optional[Exception] = None
        for _ in range(len(self._order)):
            address = self._order[0]
            self._order.rotate(-1)
            try:
                connection = self._connect(address)
            except (TransportError, OSError) as exc:
                last_error = exc
                continue
            self.current = address
            return connection
        if isinstance(last_error, TransportError):
            raise last_error
        raise TransportError(
            f"no cluster member reachable: {last_error}"
        ) from last_error


def cluster_client(
    credential,
    trust_store,
    connect: Callable[[str], object],
    addresses: Iterable[str],
    clock=None,
    rng=None,
    retry_policy: Optional[RetryPolicy] = None,
) -> RPCClient:
    """A connected, failover-aware :class:`RPCClient`: routes through a
    :class:`PrimaryRouter` and retries under *retry_policy* (a default
    policy is supplied — routing requires one, since redirects consume
    retry attempts)."""
    router = PrimaryRouter(connect, addresses)
    if retry_policy is None:
        retry_policy = RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.5)
    client = RPCClient(
        router(),
        credential,
        trust_store,
        clock=clock,
        rng=rng,
        retry_policy=retry_policy,
        reconnect=router,
    )
    client.connect()
    return client


class ReplicatedBranch:
    """Duck-typed :class:`~repro.bank.server.GridBankServer` facade over a
    replicated pair (or larger group) for
    :class:`~repro.bank.branch.BranchNetwork`: account/admin access
    always resolves to the group's current live primary, so branch
    settlement keeps working across a failover."""

    def __init__(self, *nodes: ClusterNode) -> None:
        if not nodes:
            raise ValueError("ReplicatedBranch needs at least one node")
        self._nodes = nodes
        self.bank_number = nodes[0].bank.bank_number
        self.branch_number = nodes[0].bank.branch_number

    @property
    def primary_node(self) -> ClusterNode:
        for node in self._nodes:
            if node.bank.role == "primary" and not node.bank.endpoint.crashed:
                return node
        raise NotPrimaryError("no live primary in the replicated group")

    @property
    def accounts(self):
        return self.primary_node.bank.accounts

    @property
    def admin(self):
        return self.primary_node.bank.admin
