"""GB Admin — privileged account management (paper sec 3.2, API sec 5.2.1).

"GB Admin module provides account management such as deposit, withdrawal,
change credit limit, cancel transfers and close account functions. These
functions are performed by GridBank's administrators who are responsible
for transferring real money to and from clients."

The external money rails (credit cards, PayPal) are out of the paper's
scope; an external-funds ledger records what the administrators moved in
and out so the books balance end to end.
"""

from __future__ import annotations

from repro.bank.accounts import GBAccounts
from repro.bank.records import ACCOUNT_STATUS_CLOSED, credits_to_db, db_to_credits
from repro.errors import AccountError, ValidationError
from repro.util.money import Credits, ZERO

__all__ = ["GBAdmin"]


class GBAdmin:
    def __init__(self, accounts: GBAccounts) -> None:
        self.accounts = accounts
        self.db = accounts.db
        # Net external funds received minus paid out (the "real money" side).
        self.external_funds_in = ZERO
        self.external_funds_out = ZERO

    # -- administrators table ------------------------------------------------

    def add_administrator(self, certificate_name: str) -> None:
        if not certificate_name:
            raise ValidationError("administrator certificate name must be non-empty")
        if self.db.find("administrators", (certificate_name,)) is None:
            self.db.insert("administrators", {"CertificateName": certificate_name})

    def remove_administrator(self, certificate_name: str) -> None:
        if self.db.find("administrators", (certificate_name,)) is not None:
            self.db.delete("administrators", (certificate_name,))

    def is_administrator(self, certificate_name: str) -> bool:
        return self.db.find("administrators", (certificate_name,)) is not None

    # -- sec 5.2.1 operations ----------------------------------------------------

    def deposit(self, account_id: str, amount: Credits) -> int:
        """Deposit funds received via an external payment system."""
        txn_id = self.accounts.deposit(account_id, amount)
        self.external_funds_in = self.external_funds_in + Credits(amount)
        return txn_id

    def withdraw(self, account_id: str, amount: Credits) -> int:
        """Withdraw funds to an actual bank account."""
        txn_id = self.accounts.withdraw(account_id, amount)
        self.external_funds_out = self.external_funds_out + Credits(amount)
        return txn_id

    def change_credit_limit(self, account_id: str, new_limit: Credits) -> None:
        new_limit = Credits(new_limit)
        if new_limit < ZERO:
            raise ValidationError("credit limit must be >= 0")
        row = self.accounts.require_open(account_id)
        # Tightening the limit must not strand an already-overdrawn account.
        available = db_to_credits(row["AvailableBalance"])
        if available < ZERO and new_limit < -available:
            raise AccountError(
                f"account {account_id} is overdrawn by {-available}; cannot set limit below that"
            )
        self.db.update("accounts", (account_id,), {"CreditLimit": credits_to_db(new_limit)})

    def cancel_transfer(self, txn_id: int) -> int:
        """Reverse a transfer with a compensating transfer (audit-preserving).

        Returns the TransactionID of the compensating transfer.
        """
        transfer = self.accounts.transfer_record(txn_id)
        return self.accounts.transfer(
            transfer["RecipientAccountID"],
            transfer["DrawerAccountID"],
            db_to_credits(transfer["Amount"]),
        )

    def close_account(self, account_id: str, transfer_to: str = "") -> Credits:
        """Close the account and return the outstanding balance.

        The balance is transferred to *transfer_to* (another GridBank
        account) if given, otherwise withdrawn to the external rails.
        Accounts with locked funds (in-flight payments) or a negative
        balance cannot close.
        """
        with self.db.transaction():
            row = self.accounts.require_open(account_id)
            locked = db_to_credits(row["LockedBalance"])
            if locked > ZERO:
                raise AccountError(f"account {account_id} has {locked} locked; settle first")
            balance = db_to_credits(row["AvailableBalance"])
            if balance < ZERO:
                raise AccountError(f"account {account_id} owes {-balance}; repay before closing")
            if balance > ZERO:
                if transfer_to:
                    self.accounts.transfer(account_id, transfer_to, balance)
                else:
                    self.withdraw(account_id, balance)
            self.db.update("accounts", (account_id,), {"Status": ACCOUNT_STATUS_CLOSED})
            return balance
