"""Database record types — the paper's sec 5.1 schemas, verbatim where
possible.

ACCOUNT RECORD: AccountID VARCHAR(16) (``bank-branch-account``, e.g.
``01-0001-00000001``), CertificateName VARCHAR(150), OrganizationName
VARCHAR(30) optional, AvailableBalance FLOAT, LockedBalance FLOAT,
Currency VARCHAR(10), CreditLimit FLOAT.

TRANSACTION RECORD: TransactionID BIGINT(20) UNSIGNED, Type VARCHAR(10)
(Deposit / Withdrawal / Transfer), Date TIMESTAMP(14), Amount FLOAT
(negative when funds leave the account).

TRANSFER RECORD: TransactionID, Date, DrawerAccountID, Amount (always
positive), RecipientAccountID, ResourceUsageRecord BLOB.

Documented deviations (see DESIGN.md): the TRANSACTION record as printed
has no account linkage, yet statements are per-account — an ``AccountID``
column is added (it is plainly implied: "if withdrawal or transfer *from
the account*..."). An account ``Status`` column supports the Admin API's
close-account operation, and per-account transaction rows need their own
``EntryID`` because one TransactionID produces two rows (drawer negative,
recipient positive). Balances are carried as FLOAT per the paper but all
arithmetic happens in fixed-point :class:`~repro.util.money.Credits`.
TRANSACTION and TRANSFER rows additionally carry a ``TraceID`` column
(empty when written outside any request trace) linking each ledger write
to the RPC trace that caused it — see :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.db.schema import Column, TableSchema
from repro.db.types import BigIntUnsigned, Blob, Float, Timestamp14, VarChar
from repro.errors import ValidationError
from repro.util.money import Credits

__all__ = [
    "AccountID",
    "TXN_DEPOSIT",
    "TXN_WITHDRAWAL",
    "TXN_TRANSFER",
    "ACCOUNT_STATUS_OPEN",
    "ACCOUNT_STATUS_CLOSED",
    "account_schema",
    "transaction_schema",
    "transfer_schema",
    "admin_schema",
    "instrument_schema",
    "reply_schema",
    "xfer_intent_schema",
    "shard_meta_schema",
    "INTENT_PREPARED",
    "INTENT_COMMITTED",
    "INTENT_ABORTED",
    "credits_to_db",
    "db_to_credits",
]

TXN_DEPOSIT = "Deposit"
TXN_WITHDRAWAL = "Withdrawal"
TXN_TRANSFER = "Transfer"

ACCOUNT_STATUS_OPEN = "open"
ACCOUNT_STATUS_CLOSED = "closed"

INTENT_PREPARED = "prepared"
INTENT_COMMITTED = "committed"
INTENT_ABORTED = "aborted"

_ACCOUNT_ID_RE = re.compile(r"^(\d{2})-(\d{4})-(\d{8})$")


@dataclass(frozen=True)
class AccountID:
    """``bank-branch-account``: 2, 4, and 8 decimal digits (16 chars total).

    "It is precisely for this purpose that GridBank accounts have branch
    numbers" (sec 6) — the bank and branch components route inter-branch
    settlement.
    """

    bank: int
    branch: int
    account: int

    def __post_init__(self) -> None:
        if not 0 <= self.bank <= 99:
            raise ValidationError("bank number out of range")
        if not 0 <= self.branch <= 9999:
            raise ValidationError("branch number out of range")
        if not 0 <= self.account <= 99_999_999:
            raise ValidationError("account number out of range")

    def __str__(self) -> str:
        return f"{self.bank:02d}-{self.branch:04d}-{self.account:08d}"

    @classmethod
    def parse(cls, text: str) -> "AccountID":
        match = _ACCOUNT_ID_RE.match(text)
        if match is None:
            raise ValidationError(f"not an AccountID: {text!r}")
        return cls(bank=int(match.group(1)), branch=int(match.group(2)), account=int(match.group(3)))

    def same_branch(self, other: "AccountID") -> bool:
        return self.bank == other.bank and self.branch == other.branch


def credits_to_db(amount: Credits) -> float:
    """Credits -> the FLOAT column value (exact for realistic balances)."""
    return amount.to_float()


def db_to_credits(value: float) -> Credits:
    return Credits(value)


def account_schema() -> TableSchema:
    return TableSchema(
        "accounts",
        [
            Column.make("AccountID", VarChar(16)),
            Column.make("CertificateName", VarChar(150)),
            Column.make("OrganizationName", VarChar(30), default=""),
            Column.make("AvailableBalance", Float(), default=0.0),
            Column.make("LockedBalance", Float(), default=0.0),
            Column.make("Currency", VarChar(10), default="GridDollar"),
            Column.make("CreditLimit", Float(), default=0.0),
            Column.make("Status", VarChar(10), default=ACCOUNT_STATUS_OPEN),
        ],
        primary_key=["AccountID"],
        indexes=["CertificateName", "Status"],
    )


def transaction_schema() -> TableSchema:
    return TableSchema(
        "transactions",
        [
            Column.make("EntryID", BigIntUnsigned()),
            Column.make("TransactionID", BigIntUnsigned()),
            Column.make("AccountID", VarChar(16)),
            Column.make("Type", VarChar(10)),
            Column.make("Date", Timestamp14()),
            Column.make("Amount", Float()),
            Column.make("TraceID", VarChar(32), default=""),
        ],
        primary_key=["EntryID"],
        indexes=["AccountID", "TransactionID"],
    )


def transfer_schema() -> TableSchema:
    return TableSchema(
        "transfers",
        [
            Column.make("TransactionID", BigIntUnsigned()),
            Column.make("Date", Timestamp14()),
            Column.make("DrawerAccountID", VarChar(16)),
            Column.make("Amount", Float()),
            Column.make("RecipientAccountID", VarChar(16)),
            Column.make("ResourceUsageRecord", Blob(), default=b""),
            Column.make("TraceID", VarChar(32), default=""),
        ],
        primary_key=["TransactionID"],
        indexes=["DrawerAccountID", "RecipientAccountID"],
    )


def admin_schema() -> TableSchema:
    """Administrators table — privileged subjects (sec 3.2)."""
    return TableSchema(
        "administrators",
        [Column.make("CertificateName", VarChar(150))],
        primary_key=["CertificateName"],
    )


def reply_schema() -> TableSchema:
    """REPLY table — the durable reply cache behind exactly-once dispatch.

    One row per executed mutating operation, keyed by the request's
    idempotency key. ``Body`` is the canonical serialization of the
    operation's result; ``Subject``/``Method`` pin the key to its
    original caller and operation so a replay under a different identity
    or method is refused instead of served. Rows commit in the *same* WAL
    transaction as the operation's ledger effects, so after crash
    recovery an operation and its cached reply are either both present or
    both absent — never one without the other. ``Seq`` orders rows for
    bounded-size eviction.
    """
    return TableSchema(
        "replies",
        [
            Column.make("IdempotencyKey", VarChar(64)),
            Column.make("Seq", BigIntUnsigned()),
            Column.make("Subject", VarChar(150)),
            Column.make("Method", VarChar(40)),
            Column.make("Date", Timestamp14()),
            Column.make("Body", Blob()),
        ],
        primary_key=["IdempotencyKey"],
        indexes=["Seq"],
    )


def xfer_intent_schema() -> TableSchema:
    """Cross-shard transfer intents — the 2PC write-ahead decision log.

    Prepare debits the drawer and inserts a ``prepared`` row in ONE local
    transaction (one WAL line), so a coordinator crash can never lose
    track of reserved funds: recovery re-reads ``prepared`` rows and
    re-drives the remote credit (idempotent on the participant via its
    reply cache keyed ``2pc:<IntentID>``) before marking the row
    ``committed`` — or refunds it and marks ``aborted`` when the
    participant reported a terminal refusal. ``IdempotencyKey`` is
    indexed so a client retry of an in-flight transfer resumes the SAME
    intent instead of preparing (and debiting) a second time. ``Detail``
    carries the abort reason so a retry of an aborted transfer can
    re-raise something meaningful.
    """
    return TableSchema(
        "xfer_intents",
        [
            Column.make("IntentID", VarChar(48)),
            Column.make("State", VarChar(10)),  # prepared | committed | aborted
            Column.make("DrawerAccountID", VarChar(16)),
            Column.make("RecipientAccountID", VarChar(16)),
            Column.make("Amount", Float()),
            Column.make("Currency", VarChar(10), default="GridDollar"),
            Column.make("Subject", VarChar(150)),
            Column.make("IdempotencyKey", VarChar(64), default=""),
            Column.make("Date", Timestamp14()),
            Column.make("TransactionID", BigIntUnsigned(), default=0),
            Column.make("Detail", VarChar(150), default=""),
            Column.make("TraceID", VarChar(32), default=""),
        ],
        primary_key=["IntentID"],
        indexes=["State", "IdempotencyKey"],
    )


def shard_meta_schema() -> TableSchema:
    """Shard identity + installed shard map, as durable replicated state.

    A single ``map`` row holds the canonical JSON of the installed
    :class:`~repro.bank.shard.ShardMap` (its ``Version`` duplicated in a
    column for cheap staleness checks) and a ``shard`` row names which
    shard this node serves. Living in the database means the map rides
    the WAL to standbys and survives crash recovery, so a promoted
    standby fences misrouted traffic with exactly the map version its
    ex-primary had installed.
    """
    return TableSchema(
        "shard_meta",
        [
            Column.make("Key", VarChar(16)),
            Column.make("Version", BigIntUnsigned(), default=0),
            Column.make("Body", Blob(), default=b""),
        ],
        primary_key=["Key"],
    )


def instrument_schema() -> TableSchema:
    """Issued/redeemed payment instruments (double-spend registry)."""
    return TableSchema(
        "instruments",
        [
            Column.make("InstrumentID", VarChar(24)),
            Column.make("Type", VarChar(10)),
            Column.make("DrawerAccountID", VarChar(16)),
            Column.make("PayeeSubject", VarChar(150)),
            Column.make("AmountLimit", Float()),
            Column.make("IssuedAt", Timestamp14()),
            Column.make("State", VarChar(10)),  # issued | redeemed | cancelled
            Column.make("RedeemedUnits", BigIntUnsigned(), default=0),
        ],
        primary_key=["InstrumentID"],
        indexes=["DrawerAccountID", "State"],
    )
