"""The GridBank server — Figure 3's three layers wired together.

Security Layer: GSI handshake + the accounts-or-administrators
connection policy (:mod:`repro.bank.security`). Payment Protocol Layer:
GridCheque, GridHash and direct-transfer modules (:mod:`repro.payments`).
Accounts Layer: :class:`~repro.bank.accounts.GBAccounts` and
:class:`~repro.bank.admin.GBAdmin` over the relational database.

Every sec 5.2 / 5.2.1 API operation is exposed as a named RPC operation;
the authenticated certificate subject is the caller identity for all
ownership and privilege checks. Instruments and confirmations cross the
wire as their ``to_dict()`` forms (canonically serializable).

``open_enrollment`` controls the connection policy: the paper's strict
rule refuses any subject without an account, but then nobody could ever
open one — with enrollment on (default), authenticated-but-unknown
subjects may connect and call ``CreateAccount`` only.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from repro.bank.accounts import GBAccounts
from repro.bank.admin import GBAdmin
from repro.bank.pricing import PriceEstimator, ResourceDescription
from repro.bank.records import shard_meta_schema, xfer_intent_schema
from repro.bank.replies import ReplyCache
from repro.bank.security import bank_authorization_policy
from repro.db.database import Database
from repro.errors import (
    AuthorizationError,
    NotPrimaryError,
    ReplicaStaleError,
    ReproError,
    ValidationError,
)
from repro.gsi.authorization import CallbackPolicy
from repro.net.rpc import Operation, ServiceEndpoint, current_request
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.obs.slo import SLOEngine, default_bank_objectives
from repro.obs.store import SpanStore
from repro.obs.usage import UNTRACKED_OPS, UsageMeter
from repro.payments.cheque import GridCheque, GridChequeProtocol
from repro.payments.direct import DirectTransferProtocol
from repro.payments.hashchain import GridHashCommitment, GridHashProtocol, PaymentTick
from repro.payments.instruments import InstrumentRegistry
from repro.pki.ca import Identity
from repro.pki.validation import CertificateStore
from repro.util.gbtime import Clock, SystemClock, Timestamp
from repro.util.money import Credits

__all__ = ["GridBankServer"]

_log = get_logger("bank.server")


class GridBankServer:
    def __init__(
        self,
        identity: Identity,
        trust_store: CertificateStore,
        db: Optional[Database] = None,
        clock: Optional[Clock] = None,
        rng: Optional[random.Random] = None,
        bank_number: int = 1,
        branch_number: int = 1,
        open_enrollment: bool = True,
        slo_objectives=None,
    ) -> None:
        self.identity = identity
        self.clock = clock if clock is not None else SystemClock()
        self.db = db if db is not None else Database()
        self.bank_number = bank_number
        self.branch_number = branch_number

        self.accounts = GBAccounts(
            self.db, clock=self.clock, bank_number=bank_number, branch_number=branch_number
        )
        self.admin = GBAdmin(self.accounts)
        self.replies = ReplyCache(self.db, self.clock)
        # sharding tables (cross-shard 2PC intents + the installed shard
        # map) exist on every bank, sharded or not — like the span store,
        # they must be created before recover() replays the journal
        for schema_fn in (xfer_intent_schema, shard_meta_schema):
            schema = schema_fn()
            if schema.name not in self.db.table_names():
                self.db.create_table(schema)
        # attached by repro.bank.shard.ShardNode when this bank serves one
        # shard of a sharded deployment; None means "owns the whole ring"
        self.shard = None
        # the durable span store shares the ledger's WAL'd database; the
        # table must exist before recover() replays the journal. NOT
        # auto-registered as a trace sink — callers that want durable
        # spans install it explicitly (the serve CLI does), so several
        # banks in one process don't capture each other's traces.
        self.spans = SpanStore(self.db)
        self.registry = InstrumentRegistry(self.db, self.clock)
        subject = identity.subject
        key = identity.private_key
        self.cheques = GridChequeProtocol(self.accounts, self.registry, key, subject, self.clock)
        self.hashchains = GridHashProtocol(self.accounts, self.registry, key, subject, self.clock)
        self.direct = DirectTransferProtocol(self.accounts, key, subject, self.clock)
        self.pricing = PriceEstimator()
        # pay-before-use confirmations awaiting pickup, keyed by GSP URL
        self._confirmation_inboxes: dict[str, list[dict]] = {}
        self._inbox_lock = threading.Lock()
        # the bank shares the accounts layer's striped locks so both
        # layers' holds are re-entrant within one operation
        self.locks = self.accounts.locks
        # per-idempotency-key in-flight locks: two concurrent requests
        # carrying the SAME key (a client retry racing its original over
        # another connection, or two pipelined duplicates) must not both
        # miss the reply cache and double-execute
        self._key_locks = tuple(threading.Lock() for _ in range(64))

        # replication role, managed by repro.bank.cluster.ClusterNode: a
        # "standby" rejects mutating ops with NotPrimaryError (carrying
        # primary_address when known) and guards reads behind the
        # staleness bound; promotion flips role back to "primary"
        self.role = "primary"
        self.primary_address: Optional[str] = None
        self.read_staleness_bound: Optional[float] = None
        self.replica_lag: Optional[Callable[[], float]] = None

        base_policy = bank_authorization_policy(self.accounts, self.admin)
        if open_enrollment:
            policy = CallbackPolicy(lambda s: True, description="open enrollment")
        else:
            policy = base_policy
        self._has_standing = base_policy
        self.endpoint = ServiceEndpoint(
            identity, trust_store, policy, clock=self.clock, rng=rng
        )
        # telemetry plane: SLO burn-rate tracking over every dispatch, and
        # per-principal usage metering (op counts + wire bytes + currency
        # moved), rolled up through the same WAL'd database. A standby's
        # meter accumulates but never persists — replicated rows arrive
        # from the primary instead.
        self.slo = SLOEngine(
            clock=self.clock,
            objectives=(
                slo_objectives if slo_objectives is not None else default_bank_objectives()
            ),
        )
        self.usage = UsageMeter(
            self.db,
            self.clock,
            bank_subject=subject,
            should_persist=lambda: self.role == "primary",
        )
        self.endpoint.usage_sink = self._record_wire_usage
        self._register_operations()

    # -- wiring ---------------------------------------------------------------

    @property
    def subject(self) -> str:
        return self.identity.subject

    def recover(self) -> int:
        """Replay persistent storage and re-derive id counters.

        For a bank on a persistent :class:`~repro.db.database.Database`,
        call this once right after construction (tables must exist before
        the journal replays). Returns the number of replayed journal
        transactions.
        """
        replayed = self.db.recover()
        self.rescan_state()
        return replayed

    def rescan_state(self) -> None:
        """Re-derive every in-memory counter/cache from database state.

        Used after :meth:`recover`, and again when a standby is promoted:
        the replicated WAL repopulated the tables underneath the layers,
        so id counters, the reply cache index and the span store must
        resync before the node accepts writes.
        """
        self.accounts.rescan_ids()
        self.registry.rescan_ids()
        self.replies.rescan()
        self.spans.rescan()
        self.usage.rescan()
        if self.shard is not None:
            self.shard.rescan()
        obs_metrics.gauge("bank.reply_cache.size").set(len(self.replies))

    def connection_handler(self):
        return self.endpoint.connection_handler()

    def overloaded(self) -> bool:
        """Admission-control signal for the serving front end.

        True while any SLO objective is paging — the bank is failing its
        promises for traffic it already accepted, so the front end should
        shed *new* requests (typed ``Overloaded``, retryable) rather than
        queue more work behind the backlog. Wire it up with
        ``AsyncTCPServer(..., overload_signal=bank.overloaded)``; the
        front end caches the answer briefly so the burn-rate evaluation
        stays off the per-request path.
        """
        return self.slo.overload()

    def _record_wire_usage(self, subject: str, bytes_in: int, bytes_out: int) -> None:
        """The endpoint's per-dispatch wire-volume hook (sealed sizes)."""
        self.usage.record_bytes(subject, bytes_in, bytes_out)

    def _observed_latency(self, elapsed: float, sent_at: Optional[float]) -> float:
        """The latency the *caller* experienced, for SLO accounting.

        Server-side ``perf_counter`` time misses everything before
        dispatch — queueing, retry backoff, injected network faults. When
        the request carries the client's ``sent_at`` epoch, the clock
        delta captures those (both clocks are the shared virtual clock in
        drills); take whichever view is worse.
        """
        observed = elapsed
        if sent_at is not None:
            observed = max(observed, self.clock.epoch() - sent_at)
        return max(observed, 0.0)

    @staticmethod
    def _credits_float(value) -> float:
        if isinstance(value, Credits):
            return value.to_float()
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return 0.0

    @classmethod
    def _currency_moved(cls, op_name: str, params: dict, result) -> float:
        """GridCurrency moved by one successful dispatch, for usage rows."""
        try:
            if op_name == "direct_transfer":
                # the confirmation is a Signed envelope: amount sits in
                # its payload, not at the top level
                confirmation = result["confirmation"]
                payload = confirmation.get("payload", confirmation)
                return cls._credits_float(payload["amount"])
            if op_name in ("redeem_cheque", "redeem_hashchain"):
                return cls._credits_float(result["paid"])
            if op_name == "redeem_cheque_batch":
                return sum(
                    cls._credits_float(entry.get("paid"))
                    for entry in result
                    if isinstance(entry, dict) and entry.get("ok")
                )
            if op_name in ("admin_deposit", "admin_withdraw"):
                return cls._credits_float(params.get("amount"))
        except (KeyError, TypeError):
            return 0.0
        return 0.0

    def _instrumented(self, operation: Operation) -> Operation:
        """Dispatch-level wrapper: every ``op_*`` gets a request counter,
        an error counter, a latency histogram, an SLO sample and a usage
        sample, named after the operation
        (``bank.op.direct_transfer.latency_seconds``, ...). Cluster
        plumbing (:data:`~repro.obs.usage.UNTRACKED_OPS`) skips SLO and
        usage: replication long-polls and telemetry scrapes are not
        principal workload and would poison the latency objective."""
        op_name = operation.__name__.removeprefix("op_")
        requests = obs_metrics.counter(f"bank.op.{op_name}.requests")
        errors = obs_metrics.counter(f"bank.op.{op_name}.errors")
        latency = obs_metrics.histogram(f"bank.op.{op_name}.latency_seconds")
        tracked = op_name not in UNTRACKED_OPS

        def account(subject: str, params: dict, result, elapsed: float, ok: bool) -> None:
            if not tracked:
                return
            context = current_request()
            sent_at = context.sent_at if context is not None else None
            observed = self._observed_latency(elapsed, sent_at)
            # attribute lookups at call time: the serve CLI may swap in a
            # differently-tuned engine after construction
            self.slo.record(op_name, ok=ok, latency=observed)
            self.usage.record_op(
                subject,
                op_name,
                ok=ok,
                latency_seconds=observed,
                currency_moved=(
                    self._currency_moved(op_name, params, result) if ok else 0.0
                ),
            )

        def dispatch(subject: str, params: dict):
            requests.inc()
            started = time.perf_counter()
            # the recorded span is a child of the RPC dispatch span (active
            # in this context) and closes AFTER the operation's database
            # transaction commits — its SPAN row autocommits on its own
            with obs_trace.span(f"bank.op.{op_name}", kind="bank", subject=subject):
                try:
                    result = operation(subject, params)
                except Exception as exc:
                    elapsed = time.perf_counter() - started
                    errors.inc()
                    latency.observe(elapsed)
                    account(subject, params, None, elapsed, ok=False)
                    _log.warning(
                        "bank.op.error", op=op_name, subject=subject,
                        error=type(exc).__name__, reason=str(exc),
                    )
                    raise
                elapsed = time.perf_counter() - started
                latency.observe(elapsed)
                account(subject, params, result, elapsed, ok=True)
            _log.debug("bank.op", op=op_name, subject=subject, duration=elapsed)
            return result

        dispatch.__name__ = operation.__name__
        return dispatch

    def _exactly_once(
        self,
        method: str,
        operation: Operation,
        accounts_of: Optional[Callable[[dict], tuple]] = None,
    ) -> Operation:
        """Route a mutating operation through the durable reply cache.

        A request whose idempotency key already has a cached reply (a
        live duplicate, or a retry replayed after crash recovery) gets
        the original response back without re-execution. A fresh request
        executes inside one database transaction together with the reply
        row, so "the op happened" and "its reply is cached" commit as a
        single WAL line — exactly-once across crashes. Requests without a
        key (legacy clients, direct in-process calls) execute normally.

        Locking (canonical order, deadlock-free): the key's in-flight
        lock first — so a duplicate blocks until the original's reply is
        cached rather than racing it — then the operation's account
        stripes (exclusive, sorted), held through the transaction's
        commit acknowledgement so conflicting writers reach the WAL in
        execution order.
        """
        dedup_hits = obs_metrics.counter("bank.dedup_hits")

        def dispatch(subject: str, params: dict):
            context = current_request()
            key = context.idempotency_key if context is not None else ""
            shard = self.shard
            if shard is not None and shard.wants(method, params):
                # cross-shard 2PC: the prepare must be durable BEFORE the
                # remote credit, so the coordinator manages its own
                # transactions instead of this wrapper's single envelope
                # (nested transaction blocks are savepoints, not commits)
                return shard.execute_detached(method, subject, params, key)
            touched = accounts_of(params) if accounts_of is not None else ()
            if not key:
                with self.locks.exclusive(*touched):
                    return operation(subject, params)
            key_lock = self._key_locks[hash(key) % len(self._key_locks)]
            with key_lock:
                cached = self.replies.lookup(key, subject, method)
                if cached is not None:
                    dedup_hits.inc()
                    obs_trace.add_event("bank.dedup_hit", op=method, key=key)
                    _log.info("bank.dedup_hit", op=method, subject=subject, key=key)
                    return ReplyCache.replay(cached)
                with self.locks.exclusive(*touched):
                    with self.db.transaction():
                        result = operation(subject, params)
                        self.replies.store(key, subject, method, result)
            obs_metrics.gauge("bank.reply_cache.size").set(len(self.replies))
            return result

        dispatch.__name__ = operation.__name__
        return dispatch

    def _primary_only(self, method: str, operation: Operation) -> Operation:
        """Reject mutating dispatch on any node not currently primary.

        The check sits *outside* the exactly-once wrapper: a standby must
        refuse before consulting the reply cache, because its cache only
        reflects what has replicated so far — answering from it could
        serve a stale reply for a call the primary has since superseded.
        The raised :class:`~repro.errors.NotPrimaryError` carries the
        primary's address (when this node knows it) so routing clients
        redirect without a topology lookup.
        """
        rejections = obs_metrics.counter("bank.not_primary_rejections")

        def dispatch(subject: str, params: dict):
            if self.role != "primary":
                rejections.inc()
                raise NotPrimaryError.for_primary(
                    self.primary_address,
                    f"{method} requires the primary; this node is a {self.role}",
                )
            return operation(subject, params)

        dispatch.__name__ = operation.__name__
        return dispatch

    def _staleness_guarded(self, operation: Operation) -> Operation:
        """Bounded-staleness reads on standbys: when the replica's lag
        (seconds since it last matched the primary's position) exceeds
        the configured bound, refuse with a typed error instead of
        silently serving arbitrarily old state. Primaries — and standbys
        without a configured bound — serve reads unconditionally."""

        def dispatch(subject: str, params: dict):
            if self.role != "primary":
                bound = self.read_staleness_bound
                lag_of = self.replica_lag
                if bound is not None and lag_of is not None:
                    lag = lag_of()
                    if lag > bound:
                        raise ReplicaStaleError(
                            f"replica lag {lag:.3f}s exceeds the staleness bound {bound:.3f}s"
                        )
            return operation(subject, params)

        dispatch.__name__ = operation.__name__
        return dispatch

    def _read_only(
        self, operation: Operation, accounts_of: Optional[Callable[[dict], tuple]]
    ) -> Operation:
        """Shared fast path: read-only operations take their accounts'
        stripes in shared mode — many reads proceed in parallel, but none
        overlaps a mutator mid-flight on the same account."""
        if accounts_of is None:
            return operation

        def dispatch(subject: str, params: dict):
            with self.locks.shared(*accounts_of(params)):
                return operation(subject, params)

        dispatch.__name__ = operation.__name__
        return dispatch

    def _shard_guarded(
        self,
        method: str,
        operation: Operation,
        accounts_of: Optional[Callable[[dict], tuple]],
    ) -> Operation:
        """Bounce operations touching accounts this shard does not own.

        Outermost in the dispatch chain — even before the primary check:
        a misrouted client must learn the owning *shard* (via
        :class:`~repro.errors.WrongShardError`'s hint) before it would be
        told about the wrong shard's primary. ``RequestDirectTransfer``
        guards the drawer only: the coordinator of a cross-shard transfer
        IS the drawer's shard, and the recipient is reached through the
        2PC apply path. Ops without an account extractor (CreateAccount,
        BankInfo, ...) serve anywhere. No-op until a
        :class:`~repro.bank.shard.ShardNode` attaches and installs a map.
        """
        if method == "RequestDirectTransfer":
            accounts_of = self._param_accounts("from_account")
        if accounts_of is None:
            return operation
        guard_accounts = accounts_of

        def dispatch(subject: str, params: dict):
            shard = self.shard
            if shard is not None:
                shard.guard(method, guard_accounts(params))
            return operation(subject, params)

        dispatch.__name__ = operation.__name__
        return dispatch

    #: Operations whose effects must apply at most once. Everything else
    #: is a pure read (re-execution is harmless and cheaper than caching).
    MUTATING_OPS = frozenset(
        {
            "CreateAccount",
            "UpdateAccountDetails",
            "FundsAvailabilityCheck",
            "ReleaseFunds",
            "RequestDirectTransfer",
            "FetchConfirmations",  # drains the inbox: a duplicate must replay, not re-drain
            "RequestGridCheque",
            "RedeemGridCheque",
            "RedeemGridChequeBatch",
            "CancelGridCheque",
            "RequestGridHash",
            "RedeemGridHash",
            "Admin.Deposit",
            "Admin.Withdraw",
            "Admin.ChangeCreditLimit",
            "Admin.CancelTransfer",
            "Admin.CloseAccount",
            "Admin.AddAdministrator",
        }
    )

    # -- lock-set extraction ------------------------------------------------------

    @staticmethod
    def _param_accounts(*keys: str) -> Callable[[dict], tuple]:
        """Extractor for account ids carried directly in request params.

        Extraction is best-effort on malformed input: a missing or
        mistyped field yields no lock, and the operation itself raises
        the proper validation error while holding whatever was found.
        """

        def extract(params: dict) -> tuple:
            out = []
            for key in keys:
                value = params.get(key)
                if isinstance(value, str) and value:
                    out.append(value)
            return tuple(out)

        return extract

    @staticmethod
    def _drawer_of(signed: object) -> str:
        """Drawer account inside a cheque/commitment wire dict, or ''."""
        if isinstance(signed, dict):
            payload = signed.get("payload")
            if isinstance(payload, dict):
                account = payload.get("drawer_account")
                if isinstance(account, str):
                    return account
        return ""

    def _instrument_accounts(self, field: str) -> Callable[[dict], tuple]:
        """Extractor for redeem/cancel ops: the instrument's drawer
        account plus the payee account (when present)."""

        def extract(params: dict) -> tuple:
            out = [self._drawer_of(params.get(field))]
            payee = params.get("payee_account")
            if isinstance(payee, str):
                out.append(payee)
            return tuple(a for a in out if a)

        return extract

    @staticmethod
    def _batch_accounts(params: dict) -> tuple:
        out = []
        items = params.get("items")
        if isinstance(items, list):
            for item in items:
                if not isinstance(item, dict):
                    continue
                drawer = GridBankServer._drawer_of(item.get("cheque"))
                if drawer:
                    out.append(drawer)
                payee = item.get("payee_account")
                if isinstance(payee, str) and payee:
                    out.append(payee)
        return tuple(out)

    def _cancel_transfer_accounts(self, params: dict) -> tuple:
        """Resolve the transfer's two accounts before locking. Transfer
        rows are immutable, so the unlocked pre-read cannot go stale."""
        try:
            row = self.accounts.transfer_record(params.get("transaction_id"))
        except ReproError:
            return ()
        return (row["DrawerAccountID"], row["RecipientAccountID"])

    def _register_operations(self) -> None:
        def register(
            method: str,
            operation: Operation,
            accounts_of: Optional[Callable[[dict], tuple]] = None,
        ) -> None:
            if method in self.MUTATING_OPS:
                operation = self._exactly_once(method, operation, accounts_of)
                operation = self._primary_only(method, operation)
            else:
                operation = self._read_only(operation, accounts_of)
                # BankInfo stays serveable on any node at any lag — it is
                # how clients discover roles/addresses in the first place
                if method != "BankInfo":
                    operation = self._staleness_guarded(operation)
            operation = self._shard_guarded(method, operation, accounts_of)
            self.endpoint.register(method, self._instrumented(operation))

        account = self._param_accounts("account_id")
        register("BankInfo", self.op_bank_info)
        register("CreateAccount", self.op_create_account)
        register("RequestAccountDetails", self.op_account_details, account)
        register("UpdateAccountDetails", self.op_update_account, account)
        register("RequestAccountStatement", self.op_statement, account)
        register("FundsAvailabilityCheck", self.op_funds_availability_check, account)
        register("ReleaseFunds", self.op_release_funds, account)
        register(
            "RequestDirectTransfer",
            self.op_direct_transfer,
            self._param_accounts("from_account", "to_account"),
        )
        register("FetchConfirmations", self.op_fetch_confirmations)
        register("RequestGridCheque", self.op_request_cheque, account)
        register("RedeemGridCheque", self.op_redeem_cheque, self._instrument_accounts("cheque"))
        register("RedeemGridChequeBatch", self.op_redeem_cheque_batch, self._batch_accounts)
        register("CancelGridCheque", self.op_cancel_cheque, self._instrument_accounts("cheque"))
        register("RequestGridHash", self.op_request_hashchain, account)
        register(
            "RedeemGridHash", self.op_redeem_hashchain, self._instrument_accounts("commitment")
        )
        register("EstimatePrice", self.op_estimate_price)
        register("Admin.Deposit", self.op_admin_deposit, account)
        register("Admin.Withdraw", self.op_admin_withdraw, account)
        register("Admin.ChangeCreditLimit", self.op_admin_change_credit_limit, account)
        register("Admin.CancelTransfer", self.op_admin_cancel_transfer, self._cancel_transfer_accounts)
        register(
            "Admin.CloseAccount",
            self.op_admin_close_account,
            self._param_accounts("account_id", "transfer_to"),
        )
        register("Admin.AddAdministrator", self.op_admin_add_administrator)

    # -- per-call checks ----------------------------------------------------------

    def _require_standing(self, subject: str) -> None:
        """Operations beyond CreateAccount require an account or admin bit."""
        if not self._has_standing.is_authorized(subject):
            raise AuthorizationError(f"subject {subject!r} has no account at this bank")

    def _require_owner_or_admin(self, subject: str, account_id: str) -> dict:
        row = self.accounts.get_account(account_id)
        if row["CertificateName"] != subject and not self.admin.is_administrator(subject):
            raise AuthorizationError(f"subject {subject!r} does not own account {account_id}")
        return row

    def _require_admin(self, subject: str) -> None:
        if not self.admin.is_administrator(subject):
            raise AuthorizationError(f"subject {subject!r} is not an administrator")

    @staticmethod
    def _amount(params: dict, key: str = "amount") -> Credits:
        value = params.get(key)
        if isinstance(value, Credits):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return Credits(value)
        raise ValidationError(f"parameter {key!r} must be an amount")

    # -- public operations (sec 5.2) -------------------------------------------------

    def op_bank_info(self, subject: str, params: dict) -> dict:
        from repro.crypto.keys import public_key_to_dict

        return {
            "subject": self.subject,
            "bank_number": self.bank_number,
            "branch_number": self.branch_number,
            "public_key": public_key_to_dict(self.identity.private_key.public_key()),
            "role": self.role,
            "primary_address": self.primary_address or "",
        }

    def op_create_account(self, subject: str, params: dict) -> dict:
        account_id = self.accounts.create_account(
            certificate_name=subject,
            organization_name=params.get("organization_name", ""),
            currency=params.get("currency", "GridDollar"),
        )
        return {"account_id": account_id}

    def op_account_details(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        return self._require_owner_or_admin(subject, params["account_id"])

    def op_update_account(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        self._require_owner_or_admin(subject, params["account_id"])
        return self.accounts.update_account(
            params["account_id"],
            certificate_name=params.get("certificate_name"),
            organization_name=params.get("organization_name"),
        )

    def op_statement(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        self._require_owner_or_admin(subject, params["account_id"])
        return self.accounts.statement(
            params["account_id"],
            Timestamp.from_stamp14(params["start"]),
            Timestamp.from_stamp14(params["end"]),
        )

    def op_funds_availability_check(self, subject: str, params: dict) -> dict:
        """Perform Funds Availability Check (sec 5.2): the confirmed amount
        moves to the locked balance as the guarantee."""
        self._require_standing(subject)
        account_id = params["account_id"]
        self._require_owner_or_admin(subject, account_id)
        amount = self._amount(params)
        self.accounts.lock_funds(account_id, amount)
        return {"confirmed": True, "locked": amount}

    def unreserved_locked(self, account_id: str) -> Credits:
        """Locked funds NOT backing an outstanding payment instrument.

        Only this portion may be released by the account owner; the rest
        is the sec 3.4 payment guarantee and can leave the locked balance
        only through instrument redemption or cancellation.
        """
        locked = self.accounts.locked_balance(account_id)
        reserved = Credits(0)
        for row in self.registry.outstanding_for(account_id):
            reserved = reserved + self.registry.amount_limit(row)
        return locked - reserved

    def op_release_funds(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        account_id = params["account_id"]
        self._require_owner_or_admin(subject, account_id)
        amount = self._amount(params)
        releasable = self.unreserved_locked(account_id)
        if amount > releasable:
            from repro.errors import AccountError

            raise AccountError(
                f"only {releasable} of the locked balance is releasable; the rest "
                f"guarantees outstanding payment instruments"
            )
        self.accounts.unlock_funds(account_id, amount)
        return {"released": amount}

    def op_direct_transfer(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        from_account = params["from_account"]
        self._require_owner_or_admin(subject, from_account)
        to_account = params["to_account"]
        confirmation = self.direct.transfer(
            drawer_subject=self.accounts.owner_of(from_account),
            from_account=from_account,
            to_account=to_account,
            amount=self._amount(params),
            recipient_address=params.get("recipient_address", ""),
            rur_blob=params.get("rur_blob", b""),
        )
        address = confirmation.recipient_address
        if address:
            # inbox entries are owned by the recipient account's subject;
            # only that principal may pick them up
            entry = {
                "owner": self.accounts.owner_of(to_account),
                "confirmation": confirmation.to_dict(),
            }
            with self._inbox_lock:
                self._confirmation_inboxes.setdefault(address, []).append(entry)
        return {"confirmation": confirmation.to_dict()}

    def op_fetch_confirmations(self, subject: str, params: dict) -> list:
        """GSP pickup of pay-before-use confirmations for its URL.

        Only entries addressed to accounts the caller owns are returned
        (and drained); other principals' confirmations stay queued.
        """
        self._require_standing(subject)
        with self._inbox_lock:
            inbox = self._confirmation_inboxes.get(params["address"], [])
            mine = [entry["confirmation"] for entry in inbox if entry["owner"] == subject]
            remaining = [entry for entry in inbox if entry["owner"] != subject]
            if remaining:
                self._confirmation_inboxes[params["address"]] = remaining
            else:
                self._confirmation_inboxes.pop(params["address"], None)
        return mine

    def op_request_cheque(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        cheque = self.cheques.issue(
            drawer_subject=subject,
            drawer_account=params["account_id"],
            payee_subject=params["payee_subject"],
            amount=self._amount(params),
        )
        return {"cheque": cheque.to_dict()}

    def op_redeem_cheque(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        result = self.cheques.redeem(
            redeemer_subject=subject,
            cheque=GridCheque.from_dict(params["cheque"]),
            payee_account=params["payee_account"],
            charge=self._amount(params, "charge"),
            rur_blob=params.get("rur_blob", b""),
        )
        return {
            "cheque_id": result.cheque_id,
            "transaction_id": result.transaction_id,
            "paid": result.paid,
            "released": result.released,
        }

    def op_redeem_cheque_batch(self, subject: str, params: dict) -> list:
        """Redeem a batch of cheques, one ledger TRANSACTION per cheque.

        Cheques settle independently in input order (so TransactionIDs
        are monotone in batch position); a rejected cheque does not abort
        the rest of the batch — it yields an ``ok: False`` entry carrying
        the error type, and a warning log line, while every other cheque
        still settles. (The protocol-level
        :meth:`~repro.payments.cheque.GridChequeProtocol.redeem_batch`
        keeps its all-or-nothing semantics for callers that want them.)
        """
        self._require_standing(subject)
        results: list[dict] = []
        rejected = obs_metrics.counter("bank.cheque_batch.rejected")
        for position, item in enumerate(params["items"]):
            cheque_id = ""
            try:
                cheque = GridCheque.from_dict(item["cheque"])
                cheque_id = cheque.cheque_id
                charge = item["charge"]
                result = self.cheques.redeem(
                    redeemer_subject=subject,
                    cheque=cheque,
                    payee_account=item["payee_account"],
                    charge=charge if isinstance(charge, Credits) else Credits(charge),
                    rur_blob=item.get("rur_blob", b""),
                )
            except ReproError as exc:
                rejected.inc()
                _log.warning(
                    "bank.cheque_batch.rejected",
                    position=position,
                    cheque_id=cheque_id,
                    error=type(exc).__name__,
                    reason=str(exc),
                )
                results.append(
                    {
                        "ok": False,
                        "position": position,
                        "cheque_id": cheque_id,
                        "transaction_id": None,
                        "paid": Credits(0),
                        "released": Credits(0),
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                    }
                )
                continue
            results.append(
                {
                    "ok": True,
                    "position": position,
                    "cheque_id": result.cheque_id,
                    "transaction_id": result.transaction_id,
                    "paid": result.paid,
                    "released": result.released,
                }
            )
        return results

    def op_cancel_cheque(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        released = self.cheques.cancel(subject, GridCheque.from_dict(params["cheque"]))
        return {"released": released}

    def op_request_hashchain(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        length = params["length"]
        if not isinstance(length, int) or isinstance(length, bool):
            raise ValidationError("length must be an int")
        commitment = self.hashchains.issue(
            drawer_subject=subject,
            drawer_account=params["account_id"],
            payee_subject=params["payee_subject"],
            root=params["root"],
            length=length,
            link_value=self._amount(params, "link_value"),
        )
        return {"commitment": commitment.to_dict()}

    def op_redeem_hashchain(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        commitment = GridHashCommitment.from_dict(params["commitment"])
        tick = None
        if params.get("index"):
            tick = PaymentTick(
                commitment_id=commitment.commitment_id,
                index=params["index"],
                link=params["link"],
            )
        result = self.hashchains.redeem(
            redeemer_subject=subject,
            commitment=commitment,
            payee_account=params["payee_account"],
            tick=tick,
            rur_blob=params.get("rur_blob", b""),
        )
        return {
            "commitment_id": result.commitment_id,
            "transaction_id": result.transaction_id,
            "paid": result.paid,
            "released": result.released,
            "links_redeemed": result.links_redeemed,
        }

    def op_estimate_price(self, subject: str, params: dict) -> dict:
        self._require_standing(subject)
        description = ResourceDescription(**params["description"])
        estimate = self.pricing.estimate(description)
        return {"unit_price": estimate}

    # -- admin operations (sec 5.2.1) ------------------------------------------------

    def op_admin_deposit(self, subject: str, params: dict) -> dict:
        self._require_admin(subject)
        txn = self.admin.deposit(params["account_id"], self._amount(params))
        return {"transaction_id": txn}

    def op_admin_withdraw(self, subject: str, params: dict) -> dict:
        self._require_admin(subject)
        txn = self.admin.withdraw(params["account_id"], self._amount(params))
        return {"transaction_id": txn}

    def op_admin_change_credit_limit(self, subject: str, params: dict) -> dict:
        self._require_admin(subject)
        self.admin.change_credit_limit(params["account_id"], self._amount(params, "credit_limit"))
        return {"confirmed": True}

    def op_admin_cancel_transfer(self, subject: str, params: dict) -> dict:
        self._require_admin(subject)
        compensating = self.admin.cancel_transfer(params["transaction_id"])
        return {"compensating_transaction_id": compensating}

    def op_admin_close_account(self, subject: str, params: dict) -> dict:
        self._require_admin(subject)
        balance = self.admin.close_account(
            params["account_id"], transfer_to=params.get("transfer_to", "")
        )
        return {"outstanding_balance": balance}

    def op_admin_add_administrator(self, subject: str, params: dict) -> dict:
        self._require_admin(subject)
        self.admin.add_administrator(params["certificate_name"])
        return {"confirmed": True}
