"""GB Security Protocol module — connection-time authorization.

"Once clients are authenticated, the certificate subject name is retrieved
... and is checked against the database. If the subject name appears either
in the accounts or in administrator tables, then the client is authorized
to establish a connection. Otherwise connection is refused, and this
provides a mechanism to limit denial-of-service attacks." (paper sec 3.2)

Authentication itself is the GSI handshake (:mod:`repro.gsi.context`); this
module supplies the live database-backed policy the RPC endpoint consults,
with one carve-out: the ``create_account`` bootstrap may be left open so
new principals can join (the paper's clients already "open account with
GridBank" before anything else — someone has to let them in).
"""

from __future__ import annotations

from repro.bank.accounts import GBAccounts
from repro.bank.admin import GBAdmin
from repro.gsi.authorization import AuthorizationPolicy, CallbackPolicy

__all__ = ["bank_authorization_policy", "admin_only_policy"]


def bank_authorization_policy(accounts: GBAccounts, admin: GBAdmin) -> AuthorizationPolicy:
    """Subject must hold an account or be an administrator."""

    def check(subject: str) -> bool:
        return accounts.subject_has_account(subject) or admin.is_administrator(subject)

    return CallbackPolicy(check, description="accounts-or-administrators tables")


def admin_only_policy(admin: GBAdmin) -> AuthorizationPolicy:
    """Subject must be an administrator (privileged operations)."""
    return CallbackPolicy(admin.is_administrator, description="administrators table")
