"""Horizontal sharding — consistent-hash shard groups with cross-shard 2PC.

The paper's sec 6 future work ("multiple GridBank branches per VO with
inter-branch settlement") meets ROADMAP item 1 here: accounts partition
across N shard groups — each group a PR-5 replicated primary/standby
cluster — by consistent hash of the AccountID over a versioned
:class:`ShardMap`. Three cooperating pieces:

:class:`ShardMap`
    A versioned assignment of half-open hash ranges over a 2^32 ring to
    shard ids, each shard carrying its cluster's addresses. The map is
    *installed* on every node as a durable ``shard_meta`` row, so it
    rides the WAL to standbys and survives crash recovery; the version
    doubles as the rebalance fencing epoch.

:class:`ShardNode`
    Server-side plumbing wrapped around a
    :class:`~repro.bank.cluster.ClusterNode`. It bounces misrouted
    operations with a :class:`~repro.errors.WrongShardError` stamped
    with the owning shard + installed map version, filters freshly
    minted AccountIDs so they hash into owned ranges, coordinates
    cross-shard transfers (below), answers the participant half
    (``Shard.Apply``), and serves the rebalance verbs
    (``Shard.Install`` / ``Export`` / ``Import`` / ``Evict``).

:class:`ShardRouter`
    Client-side: one failover-aware cluster client per shard group,
    dispatch by account hash, and WrongShardError hints followed by
    adopting the newer map (refetched via the unauthenticated
    ``Shard.Map`` verb) and re-routing — tolerating the brief
    ping-pong window while a split installs on the new owner.

Cross-shard transfers are a two-phase commit with the *source* shard's
primary as coordinator:

1. **prepare** — one local transaction debits the drawer and inserts a
   ``prepared`` row in ``xfer_intents`` (one WAL line: the reserved
   funds and the decision to move them are durable together, and ship
   to the coordinator's standbys like any other write).
2. **apply** — ``Shard.Apply`` on the destination shard credits the
   recipient inside its own transaction and stores the result in its
   durable reply cache under ``2pc:<IntentID>``. The intent id is the
   idempotency key, so coordinator retries — including retries by a
   *recovered* coordinator or a promoted standby after participant
   failover — replay instead of double-crediting.
3. **commit/abort** — a second local transaction marks the intent
   ``committed`` (posting the drawer's ledger entry and the client's
   cached reply in the same WAL line) or refunds the debit and marks it
   ``aborted`` when the participant refused terminally.

A coordinator crash between 1 and 3 leaves a ``prepared`` row;
:meth:`ShardNode.resolve_pending` (run after recovery/promotion, by the
background resolver, or via ``Shard.Resolve``) re-drives phase 2+3.
Client retries of an in-flight transfer resume the *same* intent — the
intent id is derived from the request's idempotency key — so funds are
reserved at most once per logical request.

Conservation across the fleet is ``sum(owned account balances) +
sum(prepared intent amounts not yet applied)`` — an intent whose
participant reply already exists has its credit in the recipient's
balance and must not be counted twice; see :func:`sharded_total_funds`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from bisect import bisect_right
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.bank.cluster import ClusterNode, cluster_client
from repro.bank.records import (
    INTENT_ABORTED,
    INTENT_COMMITTED,
    INTENT_PREPARED,
    TXN_TRANSFER,
    credits_to_db,
    db_to_credits,
)
from repro.bank.replies import ReplyCache
from repro.crypto.signature import Signed
from repro.db.query import eq
from repro.errors import (
    AccountError,
    AuthorizationError,
    InstrumentError,
    NotFoundError,
    NotPrimaryError,
    ReproError,
    SettlementError,
    ValidationError,
    WrongShardError,
)
from repro.net.retry import RetryPolicy
from repro.net.rpc import RPCClient
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.obs.trace import current_trace_id
from repro.util.money import Credits, ZERO

__all__ = [
    "RING_SIZE",
    "account_token",
    "ShardMap",
    "ShardNode",
    "ShardRouter",
    "rebalance",
    "split_shard",
    "merge_shards",
    "sharded_total_funds",
]

_log = get_logger("bank.shard")

#: Hash-ring size. 2^32 tokens is plenty for any realistic shard count
#: while keeping tokens within exact-float (and JSON-friendly) range.
RING_SIZE = 1 << 32

_MAP_ROW_KEY = "map"

#: Errors from the participant that abort the intent (and refund the
#: drawer) rather than leaving it pending: the refusal is semantic, not
#: infrastructural, so retrying the same credit can never succeed.
_TERMINAL_APPLY_ERRORS = (
    AccountError,
    AuthorizationError,
    InstrumentError,
    NotFoundError,
    ValidationError,
)


def account_token(account_id: str) -> int:
    """Position of *account_id* on the hash ring (stable across runs)."""
    digest = hashlib.sha256(account_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class ShardMap:
    """Versioned assignment of hash ranges to shard groups.

    ``ranges`` is a sorted list of ``(lo, hi, shard_id)`` half-open
    intervals that exactly tile ``[0, RING_SIZE)``; ``shards`` maps each
    shard id to its cluster's addresses. Maps are immutable — rebalance
    operations (:meth:`split`, :meth:`merge`) return a *new* map with
    ``version + 1``, and the version is the fencing epoch: a node that
    installed version v+1 bounces ops for moved ranges with a hint
    stamped v+1, which is how routers learn to refetch.
    """

    def __init__(
        self,
        version: int,
        shards: Mapping[str, Sequence[str]],
        ranges: Sequence[tuple[int, int, str]],
    ) -> None:
        self.version = int(version)
        if self.version < 1:
            raise ValidationError("shard map version must be >= 1")
        self.shards: dict[str, tuple[str, ...]] = {
            str(sid): tuple(str(a) for a in addrs) for sid, addrs in shards.items()
        }
        if not self.shards:
            raise ValidationError("shard map needs at least one shard")
        cleaned = sorted((int(lo), int(hi), str(sid)) for lo, hi, sid in ranges)
        cursor = 0
        for lo, hi, sid in cleaned:
            if lo != cursor or hi <= lo:
                raise ValidationError("shard ranges must tile the ring without gaps")
            if sid not in self.shards:
                raise ValidationError(f"range owner {sid!r} is not a known shard")
            cursor = hi
        if cursor != RING_SIZE:
            raise ValidationError("shard ranges must cover the whole ring")
        self.ranges: tuple[tuple[int, int, str], ...] = tuple(cleaned)
        self._bounds = [lo for lo, _, _ in self.ranges]

    # -- construction ---------------------------------------------------------

    @classmethod
    def initial(cls, shards: Mapping[str, Sequence[str]], version: int = 1) -> "ShardMap":
        """Equal contiguous slices of the ring, one per shard (sorted ids)."""
        sids = sorted(shards)
        step = RING_SIZE // len(sids)
        ranges = [
            (i * step, RING_SIZE if i == len(sids) - 1 else (i + 1) * step, sid)
            for i, sid in enumerate(sids)
        ]
        return cls(version, shards, ranges)

    # -- lookups --------------------------------------------------------------

    def shard_for(self, account_id: str) -> str:
        return self.owner_of_token(account_token(account_id))

    def owner_of_token(self, token: int) -> str:
        index = bisect_right(self._bounds, token) - 1
        return self.ranges[index][2]

    def addresses_of(self, shard_id: str) -> tuple[str, ...]:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise NotFoundError(f"no shard {shard_id!r} in map v{self.version}") from None

    def owned_ranges(self, shard_id: str) -> tuple[tuple[int, int], ...]:
        return tuple((lo, hi) for lo, hi, sid in self.ranges if sid == shard_id)

    # -- rebalance planning ---------------------------------------------------

    def split(
        self, shard_id: str, new_shard_id: str, addresses: Optional[Sequence[str]] = None
    ) -> "ShardMap":
        """Halve each of *shard_id*'s ranges; upper halves move to
        *new_shard_id*. Returns the successor map (version + 1).

        *new_shard_id* may already be a member with zero ranges — the
        usual live-split shape, where the new group is booted, declared
        in the map, and serving bounces before any range moves to it.
        """
        if new_shard_id == shard_id:
            raise ValidationError("cannot split a shard into itself")
        if new_shard_id in self.shards and self.owned_ranges(new_shard_id):
            raise ValidationError(f"shard {new_shard_id!r} already owns ranges")
        if new_shard_id not in self.shards and addresses is None:
            raise ValidationError(f"new shard {new_shard_id!r} needs addresses")
        if shard_id not in self.shards:
            raise NotFoundError(f"no shard {shard_id!r} to split")
        ranges: list[tuple[int, int, str]] = []
        moved = False
        for lo, hi, sid in self.ranges:
            if sid != shard_id or hi - lo < 2:
                ranges.append((lo, hi, sid))
                continue
            mid = (lo + hi) // 2
            ranges.append((lo, mid, shard_id))
            ranges.append((mid, hi, new_shard_id))
            moved = True
        if not moved:
            raise ValidationError(f"shard {shard_id!r} has no splittable range")
        shards = dict(self.shards)
        if addresses is not None:
            shards[new_shard_id] = tuple(addresses)
        return ShardMap(self.version + 1, shards, ranges)

    def merge(self, from_shard: str, into_shard: str) -> "ShardMap":
        """Reassign all of *from_shard*'s ranges to *into_shard* and drop
        *from_shard* from the map. Returns the successor map."""
        if from_shard == into_shard:
            raise ValidationError("cannot merge a shard into itself")
        self.addresses_of(from_shard)
        self.addresses_of(into_shard)
        reassigned = [
            (lo, hi, into_shard if sid == from_shard else sid) for lo, hi, sid in self.ranges
        ]
        coalesced: list[tuple[int, int, str]] = []
        for lo, hi, sid in sorted(reassigned):
            if coalesced and coalesced[-1][2] == sid and coalesced[-1][1] == lo:
                coalesced[-1] = (coalesced[-1][0], hi, sid)
            else:
                coalesced.append((lo, hi, sid))
        shards = {sid: addrs for sid, addrs in self.shards.items() if sid != from_shard}
        return ShardMap(self.version + 1, shards, coalesced)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "shards": {sid: list(addrs) for sid, addrs in self.shards.items()},
            "ranges": [[lo, hi, sid] for lo, hi, sid in self.ranges],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShardMap":
        if not isinstance(data, Mapping):
            raise ValidationError("shard map must be a mapping")
        try:
            return cls(
                data["version"],
                data["shards"],
                [tuple(r) for r in data["ranges"]],
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed shard map: {exc}") from exc

    def to_json(self) -> bytes:
        return json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, blob: bytes) -> "ShardMap":
        try:
            return cls.from_dict(json.loads(bytes(blob).decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ValidationError(f"malformed shard map JSON: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.version == other.version
            and self.shards == other.shards
            and self.ranges == other.ranges
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardMap(v{self.version}, shards={sorted(self.shards)})"


class ShardNode:
    """Server-side sharding plane for one cluster node.

    Attach one per node (primary *and* standbys — a promoted standby
    must fence with the same installed map). Registers the ``Shard.*``
    verbs on the bank's endpoint and hooks itself into the server as
    ``bank.shard`` so the dispatch wrappers consult :meth:`guard` /
    :meth:`wants` / :meth:`execute_detached`.
    """

    def __init__(
        self,
        node: ClusterNode,
        shard_id: str,
        shard_map: Optional[ShardMap] = None,
        resolve_interval: Optional[float] = None,
        apply_retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.node = node
        self.bank = node.bank
        self.shard_id = str(shard_id)
        self._map_cache: Optional[tuple[int, ShardMap]] = None
        self._peer_lock = threading.Lock()
        self._peer_pool: dict[str, list[tuple[tuple[str, ...], RPCClient]]] = {}
        self._intent_seq = itertools.count(1)
        self._apply_retry = apply_retry
        self._bounces = obs_metrics.counter("bank.shard.bounces", shard=self.shard_id)
        self._register_operations()
        self.bank.accounts.id_filter = self._accepts_account_id
        self.bank.shard = self
        if shard_map is not None and self.bank.role == "primary":
            current = self.installed_map()
            if current is None or current.version < shard_map.version:
                self.install_map(shard_map)
        self.resolver: Optional[ShardResolver] = None
        if resolve_interval is not None:
            self.resolver = ShardResolver(self, resolve_interval)
            self.resolver.start()

    # -- map persistence ------------------------------------------------------

    def installed_map(self) -> Optional[ShardMap]:
        """The durably installed map, or None while unsharded.

        Cached per version: the row read is cheap, the JSON parse is
        not, and the version column changes exactly when the map does.
        """
        row = self.bank.db.find("shard_meta", (_MAP_ROW_KEY,))
        if row is None:
            return None
        cache = self._map_cache
        if cache is not None and cache[0] == row["Version"]:
            return cache[1]
        shard_map = ShardMap.from_json(row["Body"])
        self._map_cache = (shard_map.version, shard_map)
        return shard_map

    def install_map(self, shard_map: ShardMap) -> dict:
        """Durably install *shard_map* (primary only; version must advance).

        Installing the already-current version is an idempotent no-op so
        a rebalance driver can safely retry. The write is one WAL line,
        so standbys and crash recovery see the same fencing point.
        """
        db = self.bank.db
        current = self.installed_map()
        if current is not None:
            if shard_map.version < current.version or (
                shard_map.version == current.version and shard_map != current
            ):
                raise ValidationError(
                    f"stale shard map: v{shard_map.version} <= installed v{current.version}"
                )
            if shard_map == current:
                return {"shard": self.shard_id, "version": current.version, "changed": False}
        body = shard_map.to_json()
        with db.transaction():
            if db.find("shard_meta", (_MAP_ROW_KEY,)) is None:
                db.insert(
                    "shard_meta",
                    {"Key": _MAP_ROW_KEY, "Version": shard_map.version, "Body": body},
                )
            else:
                db.update(
                    "shard_meta",
                    (_MAP_ROW_KEY,),
                    {"Version": shard_map.version, "Body": body},
                )
        self._map_cache = (shard_map.version, shard_map)
        obs_metrics.gauge("bank.shard.map_version", shard=self.shard_id).set(shard_map.version)
        obs_trace.add_event("shard.map_installed", shard=self.shard_id, version=shard_map.version)
        _log.info(
            "shard.map_installed",
            shard=self.shard_id,
            version=shard_map.version,
            ranges=len(shard_map.owned_ranges(self.shard_id)),
        )
        return {"shard": self.shard_id, "version": shard_map.version, "changed": True}

    def rescan(self) -> None:
        """Drop caches rebuilt from replicated tables (post recover/promote)."""
        self._map_cache = None

    def close(self) -> None:
        resolver = self.resolver
        self.resolver = None
        if resolver is not None:
            resolver.stop()
        with self._peer_lock:
            pool = [client for entries in self._peer_pool.values() for _, client in entries]
            self._peer_pool.clear()
        for client in pool:
            try:
                client.close()
            except ReproError:
                pass

    # -- ownership ------------------------------------------------------------

    def owns(self, account_id: str) -> bool:
        shard_map = self.installed_map()
        return shard_map is None or shard_map.shard_for(account_id) == self.shard_id

    def _accepts_account_id(self, account_id: str) -> bool:
        shard_map = self.installed_map()
        if shard_map is None:
            return True
        if not shard_map.owned_ranges(self.shard_id):
            # a zero-range member (the live-split boot shape) can never
            # mint an id that hashes home: refuse the whole mint up front
            # instead of letting the counter churn through rejections
            raise AccountError(
                f"shard {self.shard_id} owns no hash ranges in map "
                f"v{shard_map.version}; create the account on an owning shard"
            )
        return shard_map.shard_for(account_id) == self.shard_id

    def guard(self, method: str, accounts: Iterable[str]) -> None:
        """Bounce ops touching accounts this shard does not own.

        Runs outermost in the dispatch chain (before the primary check:
        a misrouted client should learn the right *shard* first, not the
        wrong shard's primary). The hint carries the owner's addresses
        and this node's installed map version — after a split, the old
        owner keeps answering for moved ranges with exactly this bounce.
        """
        shard_map = self.installed_map()
        if shard_map is None:
            return
        for account in accounts:
            owner = shard_map.shard_for(account)
            if owner != self.shard_id:
                self._bounces.inc()
                obs_trace.add_event(
                    "shard.bounce", op=method, account=account, owner=owner
                )
                raise WrongShardError.for_shard(
                    owner,
                    shard_map.version,
                    shard_map.addresses_of(owner),
                    reason=f"{method}: account {account} belongs to shard {owner}",
                )

    # -- cross-shard coordinator ----------------------------------------------

    def wants(self, method: str, params: dict) -> bool:
        """True when *method* must run on the detached 2PC path: a direct
        transfer whose recipient hashes to another shard."""
        if method != "RequestDirectTransfer":
            return False
        shard_map = self.installed_map()
        if shard_map is None:
            return False
        to_account = params.get("to_account")
        return (
            isinstance(to_account, str)
            and bool(to_account)
            and shard_map.shard_for(to_account) != self.shard_id
        )

    def execute_detached(self, method: str, subject: str, params: dict, key: str):
        """Cross-shard entry point, called by ``_exactly_once`` INSTEAD of
        the normal single-transaction envelope.

        The coordinator must run outside that envelope because nested
        ``db.transaction()`` blocks are savepoints: the prepare has to be
        durable *before* the remote credit, which a single wrapping
        transaction cannot provide. Duplicate keyed requests serialize on
        the same key-lock stripe the normal path uses, and a replayed
        key answers from the reply cache exactly like a local op.
        """
        bank = self.bank
        if not key:
            return self._coordinate(subject, params, "")
        key_lock = bank._key_locks[hash(key) % len(bank._key_locks)]
        with key_lock:
            cached = bank.replies.lookup(key, subject, method)
            if cached is not None:
                obs_metrics.counter("bank.dedup_hits").inc()
                obs_trace.add_event("bank.dedup_hit", op=method, key=key)
                return ReplyCache.replay(cached)
            return self._coordinate(subject, params, key)

    def _coordinate(self, subject: str, params: dict, key: str):
        bank = self.bank
        bank._require_standing(subject)
        from_account = str(params["from_account"])
        bank._require_owner_or_admin(subject, from_account)
        to_account = str(params["to_account"])
        amount = bank._amount(params).require_positive("transfer amount")
        with obs_trace.span(
            "shard.2pc",
            kind="shard",
            shard=self.shard_id,
            drawer=from_account,
            recipient=to_account,
        ):
            intent = self._resumable_intent(key)
            if intent is None:
                intent = self._prepare(subject, from_account, to_account, amount, key)
            return self._complete(intent["IntentID"])

    def _intent_id(self, key: str, from_account: str, to_account: str) -> str:
        if key:
            # derived from the idempotency key: a client retry that races
            # past the resume lookup still collides on the primary key
            # instead of preparing (and debiting) twice
            seed = f"k|{key}"
        else:
            seed = f"l|{from_account}|{to_account}|{next(self._intent_seq)}|{self.bank.clock.epoch()}"
        return f"{hashlib.sha256(seed.encode('utf-8')).hexdigest()[:40]}"

    def _resumable_intent(self, key: str) -> Optional[dict]:
        if not key:
            return None
        rows = self.bank.db.select("xfer_intents", [eq("IdempotencyKey", key)])
        return rows[0] if rows else None

    def _prepare(
        self, subject: str, from_account: str, to_account: str, amount: Credits, key: str
    ) -> dict:
        bank = self.bank
        if from_account == to_account:
            raise AccountError("cannot transfer to the same account")
        intent_id = self._intent_id(key, from_account, to_account)
        with bank.locks.exclusive(from_account):
            with bank.db.transaction():
                drawer = bank.accounts.require_open(from_account)
                bank.accounts._require_covered(drawer, amount)
                bank.accounts._set_balances(
                    from_account, db_to_credits(drawer["AvailableBalance"]) - amount
                )
                row = {
                    "IntentID": intent_id,
                    "State": INTENT_PREPARED,
                    "DrawerAccountID": from_account,
                    "RecipientAccountID": to_account,
                    "Amount": credits_to_db(amount),
                    "Currency": drawer["Currency"],
                    "Subject": subject,
                    "IdempotencyKey": key,
                    "Date": bank.clock.now(),
                    "TraceID": current_trace_id(),
                }
                bank.db.insert("xfer_intents", row)
        obs_metrics.counter("bank.shard.xfer_prepared", shard=self.shard_id).inc()
        obs_trace.add_event("shard.2pc.prepared", intent=intent_id)
        _log.info(
            "shard.2pc.prepared",
            shard=self.shard_id,
            intent=intent_id,
            drawer=from_account,
            recipient=to_account,
        )
        return row

    def _complete(self, intent_id: str):
        """Drive a prepared intent to ``committed`` (or ``aborted``).

        Idempotent: callers must serialize per intent (the client path
        holds the request's key-lock stripe; the resolver takes the same
        stripe), and the state re-reads below make a lost race harmless.
        """
        bank = self.bank
        row = bank.db.find("xfer_intents", (intent_id,))
        if row is None:
            raise NotFoundError(f"no transfer intent {intent_id}")
        if row["State"] == INTENT_COMMITTED:
            return self._committed_result(row)
        if row["State"] == INTENT_ABORTED:
            raise AccountError(row["Detail"] or "cross-shard transfer aborted")
        try:
            applied = self._apply_remote(row)
        except _TERMINAL_APPLY_ERRORS as exc:
            self._abort(row, reason=f"{type(exc).__name__}: {exc}")
            raise
        except ReproError as exc:
            # infrastructure trouble (participant down, failover still
            # electing): funds stay reserved under the prepared intent;
            # a client retry or the resolver re-drives this same intent
            obs_metrics.counter("bank.shard.xfer_pending", shard=self.shard_id).inc()
            raise SettlementError(
                f"cross-shard transfer {intent_id} still pending "
                f"({type(exc).__name__}: {exc}); funds remain reserved — retry"
            ) from exc
        return self._commit(row, applied)

    def _commit(self, row: dict, applied: dict):
        bank = self.bank
        intent_id = row["IntentID"]
        from_account = row["DrawerAccountID"]
        amount = db_to_credits(row["Amount"])
        with bank.locks.exclusive(from_account):
            with bank.db.transaction():
                fresh = bank.db.find("xfer_intents", (intent_id,))
                if fresh is None or fresh["State"] != INTENT_PREPARED:
                    row = fresh if fresh is not None else row
                else:
                    txn_id = bank.accounts._txn_ids.next_int()
                    when = bank.clock.now()
                    bank.db.update(
                        "xfer_intents",
                        (intent_id,),
                        {"State": INTENT_COMMITTED, "TransactionID": txn_id},
                    )
                    bank.accounts._post_entry(
                        from_account, txn_id, TXN_TRANSFER, -amount, when
                    )
                    bank.db.insert(
                        "transfers",
                        {
                            "TransactionID": txn_id,
                            "Date": when,
                            "DrawerAccountID": from_account,
                            "Amount": credits_to_db(amount),
                            "RecipientAccountID": row["RecipientAccountID"],
                            "ResourceUsageRecord": b"",
                            "TraceID": current_trace_id(),
                        },
                    )
                    row = dict(row)
                    row["State"] = INTENT_COMMITTED
                    row["TransactionID"] = txn_id
                    result = self._confirmation(row, applied)
                    key = row["IdempotencyKey"]
                    if key and bank.replies.lookup(key, row["Subject"], "RequestDirectTransfer") is None:
                        bank.replies.store(key, row["Subject"], "RequestDirectTransfer", result)
                    obs_metrics.counter("bank.shard.xfer_committed", shard=self.shard_id).inc()
                    obs_metrics.counter(
                        "bank.shard.cross_value", shard=self.shard_id
                    ).inc(amount.to_float())
                    obs_trace.add_event("shard.2pc.committed", intent=intent_id, txn=txn_id)
                    _log.info(
                        "shard.2pc.committed", shard=self.shard_id, intent=intent_id, txn=txn_id
                    )
                    return result
        if row["State"] == INTENT_COMMITTED:
            return self._committed_result(row)
        raise AccountError(row.get("Detail") or "cross-shard transfer aborted")

    def _abort(self, row: dict, reason: str) -> None:
        bank = self.bank
        intent_id = row["IntentID"]
        from_account = row["DrawerAccountID"]
        amount = db_to_credits(row["Amount"])
        with bank.locks.exclusive(from_account):
            with bank.db.transaction():
                fresh = bank.db.find("xfer_intents", (intent_id,))
                if fresh is None or fresh["State"] != INTENT_PREPARED:
                    return
                drawer = bank.accounts.get_account(from_account)
                bank.accounts._set_balances(
                    from_account, db_to_credits(drawer["AvailableBalance"]) + amount
                )
                bank.db.update(
                    "xfer_intents",
                    (intent_id,),
                    {"State": INTENT_ABORTED, "Detail": reason[:150]},
                )
        obs_metrics.counter("bank.shard.xfer_aborted", shard=self.shard_id).inc()
        obs_trace.add_event("shard.2pc.aborted", intent=intent_id, reason=reason[:80])
        _log.warning("shard.2pc.aborted", shard=self.shard_id, intent=intent_id, reason=reason)

    def _committed_result(self, row: dict):
        key = row["IdempotencyKey"]
        if key:
            cached = self.bank.replies.lookup(key, row["Subject"], "RequestDirectTransfer")
            if cached is not None:
                return ReplyCache.replay(cached)
        return self._confirmation(row, {"transaction_id": 0})

    def _confirmation(self, row: dict, applied: dict) -> dict:
        payload = {
            "confirmation": "DirectTransfer",
            "transaction_id": row["TransactionID"],
            "drawer_account": row["DrawerAccountID"],
            "recipient_account": row["RecipientAccountID"],
            "amount": db_to_credits(row["Amount"]),
            "recipient_address": "",
            "committed_at": self.bank.clock.now().epoch,
            "cross_shard": True,
            "intent_id": row["IntentID"],
            "recipient_transaction_id": int(applied.get("transaction_id", 0)),
        }
        signed = Signed.make(self.bank.identity.private_key, payload, signer=self.bank.subject)
        return {"confirmation": signed.to_dict()}

    def _apply_remote(self, row: dict) -> dict:
        shard_map = self.installed_map()
        if shard_map is None:
            raise SettlementError("shard map uninstalled mid-transfer")
        to_account = row["RecipientAccountID"]
        dest = shard_map.shard_for(to_account)
        if dest == self.shard_id:
            # a rebalance moved the recipient home mid-flight: apply the
            # credit locally through the same idempotent participant path
            return self.op_shard_apply(self.bank.subject, self._apply_params(row))
        try:
            return self._call_peer(dest, shard_map.addresses_of(dest), row)
        except WrongShardError as exc:
            # the destination moved under us; chase the stamped owner once,
            # then leave the intent pending for the resolver
            owner, addresses = exc.shard_id, exc.addresses
            if not owner or not addresses:
                raise
            obs_metrics.counter("bank.shard.apply_rerouted", shard=self.shard_id).inc()
            return self._call_peer(owner, addresses, row)

    def _apply_params(self, row: dict) -> dict:
        return {
            "intent_id": row["IntentID"],
            "to_account": row["RecipientAccountID"],
            "from_account": row["DrawerAccountID"],
            "amount": row["Amount"],
            "currency": row["Currency"],
            "origin_shard": self.shard_id,
        }

    def _call_peer(self, shard_id: str, addresses: tuple[str, ...], row: dict) -> dict:
        client = self._checkout_peer(shard_id, addresses)
        try:
            result = client.call("Shard.Apply", **self._apply_params(row))
        except ReproError:
            try:
                client.close()
            except ReproError:
                pass
            raise
        self._checkin_peer(shard_id, addresses, client)
        return result

    def _checkout_peer(self, shard_id: str, addresses: tuple[str, ...]) -> RPCClient:
        with self._peer_lock:
            entries = self._peer_pool.get(shard_id, [])
            while entries:
                pooled_addresses, client = entries.pop()
                if pooled_addresses == addresses:
                    return client
                try:
                    client.close()
                except ReproError:
                    pass
        bank = self.bank
        retry = self._apply_retry
        if retry is None:
            retry = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.25)
        return cluster_client(
            bank.identity,
            bank.endpoint.trust_store,
            self.node.connect,
            addresses,
            clock=bank.clock,
            retry_policy=retry,
        )

    def _checkin_peer(self, shard_id: str, addresses: tuple[str, ...], client: RPCClient) -> None:
        with self._peer_lock:
            self._peer_pool.setdefault(shard_id, []).append((addresses, client))

    # -- recovery -------------------------------------------------------------

    def pending_intents(self) -> list[dict]:
        return self.bank.db.select("xfer_intents", [eq("State", INTENT_PREPARED)])

    def resolve_pending(self) -> dict:
        """Re-drive every prepared intent to a terminal state.

        The coordinator's crash-recovery half of 2PC: safe to call any
        time on a primary (no-op on standbys — their intents resolve via
        the replicated WAL when the primary resolves its own).
        """
        if self.bank.role != "primary":
            return {"resolved": 0, "aborted": 0, "pending": 0}
        resolved = aborted = pending = 0
        for row in self.pending_intents():
            key = row["IdempotencyKey"] or row["IntentID"]
            key_lock = self.bank._key_locks[hash(key) % len(self.bank._key_locks)]
            with key_lock:
                try:
                    self._complete(row["IntentID"])
                    resolved += 1
                except _TERMINAL_APPLY_ERRORS:
                    aborted += 1
                except ReproError:
                    pending += 1
        if resolved or aborted:
            _log.info(
                "shard.2pc.resolved",
                shard=self.shard_id,
                resolved=resolved,
                aborted=aborted,
                pending=pending,
            )
        return {"resolved": resolved, "aborted": aborted, "pending": pending}

    # -- funds accounting -----------------------------------------------------

    def owned_funds(self) -> Credits:
        """Available+locked over accounts this shard currently owns.

        During a rebalance the exporting shard may briefly still hold
        rows for moved accounts; counting by ownership keeps the global
        sum from double-counting them.
        """
        total = ZERO
        for row in self.bank.db.table("accounts").all_rows():
            if self.owns(row["AccountID"]):
                total = (
                    total
                    + db_to_credits(row["AvailableBalance"])
                    + db_to_credits(row["LockedBalance"])
                )
        return total

    def prepared_total(self) -> Credits:
        total = ZERO
        for row in self.pending_intents():
            total = total + db_to_credits(row["Amount"])
        return total

    # -- RPC operations -------------------------------------------------------

    def _register_operations(self) -> None:
        endpoint = self.bank.endpoint
        instrument = self.bank._instrumented
        endpoint.register("Shard.Map", instrument(self.op_shard_map))
        endpoint.register("Shard.Status", instrument(self.op_shard_status))
        endpoint.register("Shard.Apply", instrument(self.op_shard_apply))
        endpoint.register("Shard.Install", instrument(self.op_shard_install))
        endpoint.register("Shard.Export", instrument(self.op_shard_export))
        endpoint.register("Shard.Import", instrument(self.op_shard_import))
        endpoint.register("Shard.Evict", instrument(self.op_shard_evict))
        endpoint.register("Shard.Resolve", instrument(self.op_shard_resolve))

    def _require_primary(self, what: str) -> None:
        if self.bank.role != "primary":
            raise NotPrimaryError.for_primary(
                self.bank.primary_address, f"{what} requires the shard primary"
            )

    def op_shard_map(self, subject: str, params: dict) -> dict:
        """Unauthenticated (like BankInfo): routers bootstrap from it."""
        shard_map = self.installed_map()
        return {
            "shard": self.shard_id,
            "map": shard_map.to_dict() if shard_map is not None else None,
        }

    def op_shard_status(self, subject: str, params: dict) -> dict:
        self.node._require_peer(subject)
        shard_map = self.installed_map()
        owned = 0
        if shard_map is not None:
            for row in self.bank.db.table("accounts").all_rows():
                if self.owns(row["AccountID"]):
                    owned += 1
        else:
            owned = len(self.bank.db.table("accounts").all_rows())
        return {
            "shard": self.shard_id,
            "map_version": shard_map.version if shard_map is not None else 0,
            "ranges": [list(r) for r in (shard_map.owned_ranges(self.shard_id) if shard_map else ())],
            "owned_accounts": owned,
            "prepared_intents": len(self.pending_intents()),
            "owned_funds": self.owned_funds().to_float(),
            "cluster": self.node.status(),
        }

    def op_shard_apply(self, subject: str, params: dict) -> dict:
        """Participant half of the 2PC: idempotent credit keyed by intent.

        The reply row commits in the same WAL line as the credit and
        ships to this shard's standbys, so a coordinator retry after
        participant failover replays on the promoted standby instead of
        double-crediting.
        """
        self.node._require_peer(subject)
        self._require_primary("Shard.Apply")
        bank = self.bank
        intent_id = str(params["intent_id"])
        to_account = str(params["to_account"])
        shard_map = self.installed_map()
        if shard_map is not None:
            owner = shard_map.shard_for(to_account)
            if owner != self.shard_id:
                self._bounces.inc()
                raise WrongShardError.for_shard(
                    owner,
                    shard_map.version,
                    shard_map.addresses_of(owner),
                    reason=f"Shard.Apply: account {to_account} belongs to shard {owner}",
                )
        amount = Credits(params["amount"]).require_positive("transfer amount")
        cache_key = f"2pc:{intent_id}"
        with bank.locks.exclusive(to_account):
            cached = bank.replies.lookup(cache_key, subject, "Shard.Apply")
            if cached is not None:
                obs_metrics.counter("bank.shard.apply_dedup", shard=self.shard_id).inc()
                return ReplyCache.replay(cached)
            with bank.db.transaction():
                recipient = bank.accounts.require_open(to_account)
                currency = str(params.get("currency", recipient["Currency"]))
                if recipient["Currency"] != currency:
                    raise AccountError(
                        f"currency mismatch: transfer carries {currency}, "
                        f"{to_account} holds {recipient['Currency']}"
                    )
                txn_id = bank.accounts._txn_ids.next_int()
                when = bank.clock.now()
                bank.accounts._set_balances(
                    to_account, db_to_credits(recipient["AvailableBalance"]) + amount
                )
                bank.accounts._post_entry(to_account, txn_id, TXN_TRANSFER, amount, when)
                result = {"transaction_id": txn_id, "shard": self.shard_id}
                bank.replies.store(cache_key, subject, "Shard.Apply", result)
        obs_metrics.counter("bank.shard.applies", shard=self.shard_id).inc()
        obs_trace.add_event("shard.2pc.applied", intent=intent_id, account=to_account)
        return result

    def op_shard_install(self, subject: str, params: dict) -> dict:
        self.node._require_peer(subject)
        self._require_primary("Shard.Install")
        return self.install_map(ShardMap.from_dict(params["map"]))

    def op_shard_export(self, subject: str, params: dict) -> dict:
        """Everything a moved account needs at its new owner (post-fence).

        One cut, four tables:

        - ``accounts`` — rows this node holds but no longer owns;
        - ``transactions`` / ``transfers`` — the moved accounts' ledger
          history, so statements keep working after the move (transfer
          rows ride along when *either* party moved — the staying
          party's copy stays behind too);
        - ``replies`` — the full reply-cache cut. Reply keys cannot be
          attributed to accounts without per-method body knowledge, and
          stranding them breaks exactly-once: a participant reply
          (``2pc:<IntentID>``) left behind lets a still-prepared intent
          coordinated on *another* shard double-credit when re-driven at
          the new owner, and a stranded client reply re-executes a
          committed op on retry. Keys are globally unique and the cache
          is bounded (``max_entries``), so copying the whole cut is safe
          and cheap; rows for unmoved accounts are unreachable at the
          target (the guard bounces before any cache lookup) and simply
          age out.
        """
        self.node._require_peer(subject)
        self._require_primary("Shard.Export")
        shard_map = self.installed_map()
        if shard_map is None:
            return {
                "accounts": [],
                "transactions": [],
                "transfers": [],
                "replies": [],
                "version": 0,
            }
        db = self.bank.db
        rows = [
            dict(row)
            for row in db.table("accounts").all_rows()
            if shard_map.shard_for(row["AccountID"]) != self.shard_id
        ]
        moved = {row["AccountID"] for row in rows}
        transactions = [
            dict(row)
            for row in db.table("transactions").all_rows()
            if row["AccountID"] in moved
        ]
        transfers = [
            dict(row)
            for row in db.table("transfers").all_rows()
            if row["DrawerAccountID"] in moved or row["RecipientAccountID"] in moved
        ]
        replies = [dict(row) for row in db.table("replies").all_rows()]
        return {
            "accounts": rows,
            "transactions": transactions,
            "transfers": transfers,
            "replies": replies,
            "version": shard_map.version,
        }

    def op_shard_import(self, subject: str, params: dict) -> dict:
        """Adopt an exported cut: accounts, ledger history, reply rows.

        Idempotency is two-layered. Account and reply rows are keyed
        (existing rows win), so re-running them is harmless. Ledger rows
        are NOT naturally keyed here — ``EntryID``/``TransactionID`` are
        shard-local counters, so imported history is re-identified under
        freshly allocated ids (consistently: every ledger row sharing an
        old ``TransactionID`` shares the new one, keeping the statement
        join intact) — and a blind re-run would duplicate history. A
        ``shard_meta`` marker row (``import:v<version>``), committed in
        the same transaction as the ledger rows, makes the remap
        exactly-once across rebalance-driver retries and crash recovery.
        """
        self.node._require_peer(subject)
        self._require_primary("Shard.Import")
        bank = self.bank
        rows = params.get("accounts") or []
        ledger_entries = params.get("transactions") or []
        ledger_transfers = params.get("transfers") or []
        reply_rows = params.get("replies") or []
        version = int(params.get("version") or 0)
        marker_key = f"import:v{version}"
        imported = entries = transfers = replies = 0
        with bank.db.transaction():
            for row in rows:
                if not isinstance(row, dict) or "AccountID" not in row:
                    raise ValidationError("malformed account row in Shard.Import")
                if bank.db.find("accounts", (row["AccountID"],)) is None:
                    bank.db.insert("accounts", dict(row))
                    imported += 1
            remap_done = version > 0 and bank.db.find("shard_meta", (marker_key,)) is not None
            if not remap_done and (ledger_entries or ledger_transfers):
                txn_map: dict[int, int] = {}

                def remapped(old_txn: int) -> int:
                    if old_txn not in txn_map:
                        txn_map[old_txn] = bank.accounts._txn_ids.next_int()
                    return txn_map[old_txn]

                for row in ledger_transfers:
                    if not isinstance(row, dict) or "TransactionID" not in row:
                        raise ValidationError("malformed transfer row in Shard.Import")
                    adopted = dict(row)
                    adopted["TransactionID"] = remapped(row["TransactionID"])
                    bank.db.insert("transfers", adopted)
                    transfers += 1
                for row in ledger_entries:
                    if not isinstance(row, dict) or "TransactionID" not in row:
                        raise ValidationError("malformed transaction row in Shard.Import")
                    adopted = dict(row)
                    adopted["TransactionID"] = remapped(row["TransactionID"])
                    adopted["EntryID"] = bank.accounts._entry_ids.next_int()
                    bank.db.insert("transactions", adopted)
                    entries += 1
                if version > 0:
                    bank.db.insert(
                        "shard_meta", {"Key": marker_key, "Version": version, "Body": b""}
                    )
            for row in reply_rows:
                if not isinstance(row, dict) or "IdempotencyKey" not in row:
                    raise ValidationError("malformed reply row in Shard.Import")
                if bank.db.find("replies", (row["IdempotencyKey"],)) is None:
                    bank.db.insert("replies", dict(row))
                    replies += 1
        # imported ids may exceed the local counters; rescan so future
        # mints/stores cannot collide with adopted rows
        bank.accounts.rescan_ids()
        bank.replies.rescan()
        if imported or entries or transfers or replies:
            obs_metrics.counter("bank.shard.accounts_imported", shard=self.shard_id).inc(imported)
            _log.info(
                "shard.import",
                shard=self.shard_id,
                imported=imported,
                ledger_entries=entries,
                ledger_transfers=transfers,
                replies=replies,
            )
        return {
            "imported": imported,
            "transactions": entries,
            "transfers": transfers,
            "replies": replies,
        }

    def op_shard_evict(self, subject: str, params: dict) -> dict:
        """Drop rows for ranges this node no longer owns (post-import).

        Evicts the moved accounts and their ledger entries. A transfer
        row is dropped only when *neither* party is still owned here —
        the staying party's statement join needs its copy (the new owner
        received a re-identified copy of its own in the export cut).
        Reply rows stay: they cannot be attributed to accounts, are
        unreachable behind the ownership guard, and age out of the
        bounded cache on their own.
        """
        self.node._require_peer(subject)
        self._require_primary("Shard.Evict")
        bank = self.bank
        shard_map = self.installed_map()
        if shard_map is None:
            return {"evicted": 0}

        def owned(account_id: str) -> bool:
            return shard_map.shard_for(account_id) == self.shard_id

        doomed = [
            row["AccountID"]
            for row in bank.db.table("accounts").all_rows()
            if not owned(row["AccountID"])
        ]
        doomed_entries = [
            row["EntryID"]
            for row in bank.db.table("transactions").all_rows()
            if not owned(row["AccountID"])
        ]
        doomed_transfers = [
            row["TransactionID"]
            for row in bank.db.table("transfers").all_rows()
            if not owned(row["DrawerAccountID"]) and not owned(row["RecipientAccountID"])
        ]
        with bank.db.transaction():
            for account_id in doomed:
                bank.db.delete("accounts", (account_id,))
            for entry_id in doomed_entries:
                bank.db.delete("transactions", (entry_id,))
            for txn_id in doomed_transfers:
                bank.db.delete("transfers", (txn_id,))
        if doomed:
            obs_metrics.counter("bank.shard.accounts_evicted", shard=self.shard_id).inc(len(doomed))
            _log.info(
                "shard.evict",
                shard=self.shard_id,
                evicted=len(doomed),
                ledger_entries=len(doomed_entries),
                ledger_transfers=len(doomed_transfers),
            )
        return {"evicted": len(doomed)}

    def op_shard_resolve(self, subject: str, params: dict) -> dict:
        self.node._require_peer(subject)
        self._require_primary("Shard.Resolve")
        return self.resolve_pending()


class ShardResolver(threading.Thread):
    """Background re-driver for prepared intents (coordinator recovery).

    Polls only while this node is primary and alive; the interval can be
    generous — client retries resolve the common case, this thread is
    the backstop for coordinators whose client never came back.
    """

    def __init__(self, shard: ShardNode, interval: float) -> None:
        super().__init__(name=f"shard-resolver-{shard.shard_id}", daemon=True)
        self.shard = shard
        self.interval = max(0.01, float(interval))
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=2.0)

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            bank = self.shard.bank
            if bank.role != "primary" or bank.endpoint.crashed:
                continue
            try:
                self.shard.resolve_pending()
            except ReproError as exc:  # pragma: no cover - defensive
                _log.warning(
                    "shard.resolver_error",
                    shard=self.shard.shard_id,
                    error=type(exc).__name__,
                    reason=str(exc),
                )


class ShardRouter:
    """Client-side shard fan-out: route by account hash, follow hints.

    Generalizes :func:`~repro.bank.cluster.cluster_client`: one
    failover-aware client per shard group (NotPrimaryError handled
    inside each), plus WrongShardError handled here by adopting the
    newer map — refetched via ``Shard.Map`` from the hinted owner — and
    re-dialing. During the split window the old and new owner may bounce
    a key back and forth (the new owner serves only once the map is
    installed on it); bounded retries with backoff ride that out.
    """

    def __init__(
        self,
        credential,
        trust_store,
        connect: Callable[[str], object],
        shard_map: ShardMap,
        clock=None,
        rng=None,
        retry_policy: Optional[RetryPolicy] = None,
        max_bounces: int = 8,
        bounce_backoff: float = 0.02,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.credential = credential
        self.trust_store = trust_store
        self.connect = connect
        self.map = shard_map
        self.clock = clock
        self.rng = rng
        self.retry_policy = retry_policy
        self.max_bounces = int(max_bounces)
        self.bounce_backoff = float(bounce_backoff)
        self._sleep = sleep
        self._clients: dict[str, tuple[tuple[str, ...], RPCClient]] = {}
        self._lock = threading.Lock()
        self._rr = itertools.count()
        self._bounces = obs_metrics.counter("shard.router.bounces")
        self._refreshes = obs_metrics.counter("shard.router.map_refreshes")

    # -- connections ----------------------------------------------------------

    def client_for(self, shard_id: str) -> RPCClient:
        addresses = self.map.addresses_of(shard_id)
        with self._lock:
            entry = self._clients.get(shard_id)
            if entry is not None and entry[0] == addresses:
                return entry[1]
        client = cluster_client(
            self.credential,
            self.trust_store,
            self.connect,
            addresses,
            clock=self.clock,
            rng=self.rng,
            retry_policy=self.retry_policy,
        )
        with self._lock:
            stale = self._clients.get(shard_id)
            self._clients[shard_id] = (addresses, client)
        if stale is not None and stale[1] is not client:
            try:
                stale[1].close()
            except ReproError:
                pass
        return client

    def close(self) -> None:
        with self._lock:
            clients = [client for _, client in self._clients.values()]
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except ReproError:
                pass

    # -- map adoption ---------------------------------------------------------

    def adopt(self, shard_map: ShardMap) -> bool:
        if shard_map.version <= self.map.version:
            return False
        self.map = shard_map
        self._refreshes.inc()
        return True

    def refresh_map(self, addresses: Iterable[str] = ()) -> ShardMap:
        """Refetch the map from *addresses* (or every known shard)."""
        probes: list[tuple[str, ...]] = []
        addresses = tuple(addresses)
        if addresses:
            probes.append(addresses)
        probes.extend(self.map.shards[sid] for sid in sorted(self.map.shards))
        last_error: Optional[Exception] = None
        for addrs in probes:
            try:
                client = cluster_client(
                    self.credential,
                    self.trust_store,
                    self.connect,
                    addrs,
                    clock=self.clock,
                    rng=self.rng,
                    retry_policy=self.retry_policy,
                )
                try:
                    answer = client.call("Shard.Map")
                finally:
                    client.close()
            except ReproError as exc:
                last_error = exc
                continue
            if answer.get("map"):
                self.adopt(ShardMap.from_dict(answer["map"]))
                return self.map
        if last_error is not None:
            raise SettlementError(f"shard map refresh failed: {last_error}") from last_error
        return self.map

    # -- routing --------------------------------------------------------------

    _ROUTE_PARAMS = ("from_account", "account_id", "to_account")

    def route_account(self, method: str, params: dict) -> Optional[str]:
        """The account whose hash decides the shard: the drawer for
        transfers (the coordinator is the source shard), otherwise the
        first account-ish parameter present."""
        for name in self._ROUTE_PARAMS:
            value = params.get(name)
            if isinstance(value, str) and value:
                return value
        return None

    def shard_of(self, account_id: str) -> str:
        return self.map.shard_for(account_id)

    def call(self, method: str, *, shard_id: Optional[str] = None, **params):
        account = self.route_account(method, params)
        last_exc: Optional[WrongShardError] = None
        for attempt in range(self.max_bounces):
            if shard_id is None:
                target = self.map.shard_for(account) if account else sorted(self.map.shards)[0]
            else:
                target = shard_id
            try:
                return self.client_for(target).call(method, **params)
            except WrongShardError as exc:
                last_exc = exc
                self._bounces.inc()
                shard_id = None
                hinted_version = exc.map_version
                if hinted_version > self.map.version:
                    try:
                        self.refresh_map(exc.addresses)
                    except SettlementError:
                        pass
                if attempt + 1 < self.max_bounces:
                    self._sleep(min(self.bounce_backoff * (attempt + 1), 0.2))
        assert last_exc is not None
        raise last_exc

    # -- conveniences ---------------------------------------------------------

    def create_account(self, **params):
        """Round-robin new accounts across shards; each shard mints ids
        hashing into its own ranges (see ``GBAccounts.id_filter``).
        Zero-range members (declared live-split targets) are skipped —
        they cannot mint an id that hashes home and would refuse."""
        sids = sorted(sid for sid in self.map.shards if self.map.owned_ranges(sid))
        target = sids[next(self._rr) % len(sids)]
        return self.call("CreateAccount", shard_id=target, **params)

    def transfer(self, from_account: str, to_account: str, amount: float, **params):
        return self.call(
            "RequestDirectTransfer",
            from_account=from_account,
            to_account=to_account,
            amount=amount,
            **params,
        )


# -- rebalance orchestration ----------------------------------------------------


def rebalance(
    clients: Mapping[str, RPCClient],
    new_map: ShardMap,
    source: str,
    target: str,
) -> ShardMap:
    """Drive an epoch-fenced range move from *source* to *target*.

    Order matters and is the whole point:

    1. install on *source* — the old owner starts bouncing moved ranges
       with hints stamped ``new_map.version`` (the fence);
    2. resolve *source*'s in-flight cross-shard intents — their debits
       must land in rows that are about to move;
    3. export the moved account rows — plus their ledger history and
       the reply-cache cut — from *source*;
    4. import the cut into *target* (still fenced: *target*'s old map
       bounces them right back until step 5);
    5. install on *target* — it starts serving the moved ranges;
    6. evict the moved rows from *source*;
    7. broadcast the map to every other shard so their coordinators
       route 2PC credits at the new owner directly, then sweep
       ``Shard.Resolve`` fleet-wide (best-effort): a *prepared* intent
       coordinated on another shard whose recipient just moved re-drives
       at the new owner now instead of waiting for its resolver tick —
       the imported ``2pc:<IntentID>`` reply rows make that replay
       idempotent even when the credit already landed on *source*
       before the fence.

    *clients* must hold an authorized (peer/admin) client per shard id
    in ``new_map`` — including *target* — plus *source* when a merge
    removes it from the map.
    """
    with obs_trace.span(
        "shard.rebalance", kind="shard", source=source, target=target, version=new_map.version
    ):
        clients[source].call("Shard.Install", map=new_map.to_dict())
        for _ in range(10):
            verdict = clients[source].call("Shard.Resolve")
            if not verdict["pending"]:
                break
            time.sleep(0.05)
        else:
            raise SettlementError(
                f"cannot rebalance: shard {source} still has unresolved transfer intents"
            )
        exported = clients[source].call("Shard.Export")
        moved = exported["accounts"]
        if moved:
            clients[target].call(
                "Shard.Import",
                accounts=moved,
                transactions=exported.get("transactions") or [],
                transfers=exported.get("transfers") or [],
                replies=exported.get("replies") or [],
                version=exported.get("version") or new_map.version,
            )
        clients[target].call("Shard.Install", map=new_map.to_dict())
        clients[source].call("Shard.Evict")
        for sid in new_map.shards:
            if sid in (source, target):
                continue
            clients[sid].call("Shard.Install", map=new_map.to_dict())
        # best-effort: re-drive every shard's prepared intents under the
        # new map so credits aimed at moved ranges land at the new owner
        # now rather than on the next resolver tick
        for sid in new_map.shards:
            try:
                clients[sid].call("Shard.Resolve")
            except ReproError:
                pass
        obs_metrics.counter("shard.rebalance.moves").inc()
        obs_metrics.counter("shard.rebalance.accounts_moved").inc(len(moved))
        _log.info(
            "shard.rebalanced",
            source=source,
            target=target,
            version=new_map.version,
            moved=len(moved),
        )
    return new_map


def split_shard(
    clients: Mapping[str, RPCClient],
    shard_map: ShardMap,
    shard_id: str,
    new_shard_id: str,
    addresses: Optional[Sequence[str]] = None,
) -> ShardMap:
    """Split *shard_id* live: upper halves of its ranges move to
    *new_shard_id* (whose cluster must already be serving at *addresses*
    with an authorized client in *clients*)."""
    new_map = shard_map.split(shard_id, new_shard_id, addresses)
    return rebalance(clients, new_map, source=shard_id, target=new_shard_id)


def merge_shards(
    clients: Mapping[str, RPCClient],
    shard_map: ShardMap,
    from_shard: str,
    into_shard: str,
) -> ShardMap:
    """Merge *from_shard*'s ranges into *into_shard* and retire it."""
    new_map = shard_map.merge(from_shard, into_shard)
    return rebalance(clients, new_map, source=from_shard, target=into_shard)


def sharded_total_funds(shards: Iterable[ShardNode]) -> Credits:
    """Global conservation probe: owned balances plus in-flight reserves.

    Pass each shard group's *primary* ShardNode. Funds inside a prepared
    intent have left the drawer's row but not yet reached the recipient's
    — they are still the bank's liability, so they count. EXCEPT when the
    participant's reply row (``2pc:<IntentID>``) already exists on one of
    the given shards: then the credit has landed in the recipient's
    balance while the coordinator has not yet flipped the row to
    ``committed``, and counting the reserve again would report a
    transient surplus (a concurrent probe mid-2PC would flake).
    """
    shard_list = list(shards)
    total = ZERO
    for shard in shard_list:
        total = total + shard.owned_funds()
        for row in shard.pending_intents():
            reply_key = f"2pc:{row['IntentID']}"
            applied = any(
                peer.bank.db.find("replies", (reply_key,)) is not None
                for peer in shard_list
            )
            if not applied:
                total = total + db_to_credits(row["Amount"])
    return total
