"""Hash helpers and PayWord hash chains.

The pay-as-you-go "GridHash" protocol (paper sec 3.1) is based on PayWord
[Rivest & Shamir 1996]: the consumer picks a random seed ``w_N`` and hashes
it N times to a *root* ``w_0``. The signed commitment covers the root; each
successive payment reveals the next preimage ``w_i`` and is verified by
hashing back to the last seen link. One signature thus amortizes over N
micropayments, with each payment costing one hash to verify.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Optional

from repro.errors import ValidationError
from repro.util.serialize import to_bytes

__all__ = ["sha256", "sha256_hex", "HashChain", "verify_link"]


def sha256(value: Any) -> bytes:
    """SHA-256 of the canonical byte view of *value*."""
    return hashlib.sha256(to_bytes(value)).digest()


def sha256_hex(value: Any) -> str:
    return hashlib.sha256(to_bytes(value)).hexdigest()


def verify_link(claimed: bytes, prior: bytes, distance: int = 1) -> bool:
    """True iff hashing *claimed* ``distance`` times yields *prior*.

    Supports distance > 1 so a verifier can catch up after skipped payments
    (the payer may reveal w_{i+k} against last-seen w_i).
    """
    if distance < 1:
        raise ValidationError("distance must be >= 1")
    digest = claimed
    for _ in range(distance):
        digest = hashlib.sha256(digest).digest()
    return digest == prior


class HashChain:
    """A PayWord chain of *length* spendable links.

    ``root`` is link 0 (committed, not spendable). :meth:`link` returns the
    i-th preimage, i in [0, length]; callers spend links in increasing order.
    The full chain is materialized once at construction (length hashes).
    """

    __slots__ = ("_links", "length")

    def __init__(self, length: int, rng: Optional[random.Random] = None, seed: Optional[bytes] = None) -> None:
        if length < 1:
            raise ValidationError("hash chain needs at least one link")
        if seed is None:
            r = rng if rng is not None else random.Random()
            seed = bytes(r.getrandbits(8) for _ in range(32))
        if len(seed) < 16:
            raise ValidationError("hash chain seed must be at least 16 bytes")
        links = [b""] * (length + 1)
        links[length] = seed
        for i in range(length - 1, -1, -1):
            links[i] = hashlib.sha256(links[i + 1]).digest()
        self._links = links
        self.length = length

    @property
    def root(self) -> bytes:
        """Link 0 — the value the signed commitment covers."""
        return self._links[0]

    def link(self, index: int) -> bytes:
        """Preimage number *index* (0 == root, length == seed)."""
        if not 0 <= index <= self.length:
            raise ValidationError(f"link index {index} outside [0, {self.length}]")
        return self._links[index]

    def __len__(self) -> int:
        return self.length
