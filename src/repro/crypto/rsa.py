"""RSA key generation and raw modular operations.

Textbook RSA over two Miller–Rabin primes with CRT-accelerated private
operations. Padding/encoding live in :mod:`repro.crypto.signature`; this
module only provides the trapdoor permutation and key structures.

Default modulus size is 1024 bits — small enough that seeded key generation
in pure Python stays well under a second, large enough to exercise real
multi-precision paths. Sizes are configurable per call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from repro.crypto.primes import generate_prime
from repro.errors import ValidationError

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "RSAKeyPair",
    "generate_keypair",
    "encrypt_bytes",
    "decrypt_bytes",
    "DEFAULT_BITS",
]

DEFAULT_BITS = 1024
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """Public half: modulus *n* and exponent *e*."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt_int(self, m: int) -> int:
        """Raw public operation m^e mod n (also signature verification)."""
        if not 0 <= m < self.n:
            raise ValidationError("message representative out of range")
        return pow(m, self.e, self.n)

    def fingerprint(self) -> str:
        """Short stable identifier for the key (first 16 hex of SHA-256)."""
        import hashlib

        digest = hashlib.sha256(f"{self.n:x}:{self.e:x}".encode("ascii")).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class RSAPrivateKey:
    """Private half with CRT components for ~4x faster private operations."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    @cached_property
    def _crt(self) -> tuple[int, int, int]:
        # (dp, dq, q_inv) are pure functions of the key; cached_property
        # writes to __dict__ directly, which frozen dataclasses permit
        return self.d % (self.p - 1), self.d % (self.q - 1), pow(self.q, -1, self.p)

    def decrypt_int(self, c: int) -> int:
        """Raw private operation c^d mod n via CRT (also signing)."""
        if not 0 <= c < self.n:
            raise ValidationError("ciphertext representative out of range")
        dp, dq, q_inv = self._crt
        m1 = pow(c, dp, self.p)
        m2 = pow(c, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


@dataclass(frozen=True)
class RSAKeyPair:
    private: RSAPrivateKey
    public: RSAPublicKey


def encrypt_bytes(public: RSAPublicKey, plaintext: bytes, rng: Optional[random.Random] = None) -> bytes:
    """PKCS#1-v1.5-style public-key encryption of a short message.

    Used by the GSI handshake to ship the pre-master secret. The message
    representative is ``0x00 0x02 <nonzero random pad> 0x00 <plaintext>``.
    """
    k = public.byte_length
    if len(plaintext) > k - 11:
        raise ValidationError(f"message too long for {public.bits}-bit RSA encryption")
    r = rng if rng is not None else random.Random()
    pad = bytes(r.randrange(1, 256) for _ in range(k - len(plaintext) - 3))
    em = b"\x00\x02" + pad + b"\x00" + plaintext
    c = pow(int.from_bytes(em, "big"), public.e, public.n)
    return c.to_bytes(k, "big")


def decrypt_bytes(private: RSAPrivateKey, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_bytes`; raises on malformed padding."""
    k = private.byte_length
    if len(ciphertext) != k:
        raise ValidationError("ciphertext length does not match modulus")
    m = private.decrypt_int(int.from_bytes(ciphertext, "big"))
    em = m.to_bytes(k, "big")
    if not em.startswith(b"\x00\x02"):
        raise ValidationError("malformed encryption padding")
    try:
        sep = em.index(b"\x00", 2)
    except ValueError:
        raise ValidationError("malformed encryption padding") from None
    if sep < 10:
        raise ValidationError("malformed encryption padding")
    return em[sep + 1 :]


def generate_keypair(bits: int = DEFAULT_BITS, rng: Optional[random.Random] = None) -> RSAKeyPair:
    """Generate an RSA keypair with modulus of exactly *bits* bits.

    Pass a seeded ``random.Random`` for reproducible keys in tests and
    simulations; an unseeded one is created otherwise.
    """
    if bits < 256:
        raise ValidationError("modulus must be at least 256 bits")
    if bits % 2 != 0:
        raise ValidationError("modulus bit size must be even")
    r = rng if rng is not None else random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, r)
        q = generate_prime(half, r)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        e = _PUBLIC_EXPONENT
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        private = RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)
        return RSAKeyPair(private=private, public=private.public_key())
