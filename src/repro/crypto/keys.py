"""Key (de)serialization to canonical-JSON-friendly dicts.

Public keys travel inside certificates; private keys only ever persist to
local key stores. Integers are hex-encoded strings to keep payloads compact
and hashable by the canonical serializer.
"""

from __future__ import annotations

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.errors import ValidationError

__all__ = [
    "public_key_to_dict",
    "public_key_from_dict",
    "private_key_to_dict",
    "private_key_from_dict",
]


def public_key_to_dict(key: RSAPublicKey) -> dict:
    return {"kty": "RSA", "n": f"{key.n:x}", "e": f"{key.e:x}"}


def public_key_from_dict(data: dict) -> RSAPublicKey:
    try:
        if data["kty"] != "RSA":
            raise ValidationError(f"unsupported key type {data['kty']!r}")
        return RSAPublicKey(n=int(data["n"], 16), e=int(data["e"], 16))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed public key: {exc}") from exc


def private_key_to_dict(key: RSAPrivateKey) -> dict:
    return {
        "kty": "RSA",
        "n": f"{key.n:x}",
        "e": f"{key.e:x}",
        "d": f"{key.d:x}",
        "p": f"{key.p:x}",
        "q": f"{key.q:x}",
    }


def private_key_from_dict(data: dict) -> RSAPrivateKey:
    try:
        if data["kty"] != "RSA":
            raise ValidationError(f"unsupported key type {data['kty']!r}")
        return RSAPrivateKey(
            n=int(data["n"], 16),
            e=int(data["e"], 16),
            d=int(data["d"], 16),
            p=int(data["p"], 16),
            q=int(data["q"], 16),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed private key: {exc}") from exc
