"""Authenticated symmetric channel cipher.

Stands in for the GSS/SSL symmetric encryption the paper gets from Globus
I/O ("GSS API also provides symmetric data encryption based on SSL
technologies to securely exchange sensitive financial information",
sec 3.1). Construction:

* keystream: ``SHA-256(enc_key || nonce || counter_be8)`` blocks XORed over
  the plaintext (a CTR-mode stream cipher with SHA-256 as the PRF);
* integrity: HMAC-SHA-256 over ``nonce || seq_be8 || ciphertext`` with an
  independent MAC key (encrypt-then-MAC);
* key separation: both keys derive from a shared master secret via
  HMAC-based expansion with distinct labels.

Sequence numbers bind each message to its position in the conversation so
replayed or reordered records are rejected — the property the bank's
payment messages need.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Optional

from repro.errors import ChannelError, ValidationError

__all__ = ["derive_keys", "ChannelCipher", "seal", "open_sealed"]

_NONCE_LEN = 16
_TAG_LEN = 32
_BLOCK = 32


def derive_keys(master_secret: bytes) -> tuple[bytes, bytes]:
    """Derive independent (encryption, MAC) keys from a master secret."""
    if len(master_secret) < 16:
        raise ValidationError("master secret must be at least 16 bytes")
    enc = hmac.new(master_secret, b"gridbank-enc", hashlib.sha256).digest()
    mac = hmac.new(master_secret, b"gridbank-mac", hashlib.sha256).digest()
    return enc, mac


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    prefix = enc_key + nonce
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest())
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    # single big-int XOR: ~10x faster than a byte-wise generator for
    # kilobyte-sized records on the hot protect/unprotect path
    n = len(data)
    if len(stream) > n:
        stream = stream[:n]
    x = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    return x.to_bytes(n, "big")


def seal(enc_key: bytes, mac_key: bytes, seq: int, plaintext: bytes, rng: Optional[random.Random] = None) -> bytes:
    """Encrypt-then-MAC one record: ``nonce || ciphertext || tag``."""
    r = rng if rng is not None else random.Random()
    nonce = r.getrandbits(8 * _NONCE_LEN).to_bytes(_NONCE_LEN, "big")
    ciphertext = _xor(plaintext, _keystream(enc_key, nonce, len(plaintext)))
    tag = hmac.new(mac_key, nonce + seq.to_bytes(8, "big") + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def open_sealed(enc_key: bytes, mac_key: bytes, seq: int, record: bytes) -> bytes:
    """Verify and decrypt one record; raises :class:`ChannelError` on tamper."""
    if len(record) < _NONCE_LEN + _TAG_LEN:
        raise ChannelError("sealed record too short")
    nonce = record[:_NONCE_LEN]
    ciphertext = record[_NONCE_LEN:-_TAG_LEN]
    tag = record[-_TAG_LEN:]
    expected = hmac.new(mac_key, nonce + seq.to_bytes(8, "big") + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise ChannelError("record MAC verification failed")
    return _xor(ciphertext, _keystream(enc_key, nonce, len(ciphertext)))


class ChannelCipher:
    """Stateful record protection for one direction of a channel.

    Each side holds two of these (send/receive) sharing the master secret.
    The sequence number travels in clear at the head of each record but is
    bound by the MAC; the receiver accepts only strictly increasing
    sequence numbers, so replayed or stale records are rejected while
    records lost in transit (network faults) merely leave a gap.
    """

    def __init__(self, master_secret: bytes, rng: Optional[random.Random] = None) -> None:
        self._enc_key, self._mac_key = derive_keys(master_secret)
        self._send_seq = 0
        self._recv_seq = 0  # next acceptable sequence number
        self._rng = rng if rng is not None else random.Random()

    def protect(self, plaintext: bytes) -> bytes:
        record = seal(self._enc_key, self._mac_key, self._send_seq, plaintext, self._rng)
        header = self._send_seq.to_bytes(8, "big")
        self._send_seq += 1
        return header + record

    def unprotect(self, record: bytes) -> bytes:
        if len(record) < 8:
            raise ChannelError("record too short for sequence header")
        seq = int.from_bytes(record[:8], "big")
        if seq < self._recv_seq:
            raise ChannelError(f"replayed or stale record (seq {seq} < {self._recv_seq})")
        plaintext = open_sealed(self._enc_key, self._mac_key, seq, record[8:])
        self._recv_seq = seq + 1
        return plaintext

    @property
    def sent(self) -> int:
        return self._send_seq

    @property
    def received(self) -> int:
        return self._recv_seq
