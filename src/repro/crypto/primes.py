"""Prime generation for RSA key material.

Miller–Rabin probabilistic primality testing with a deterministic witness
set for small inputs and random witnesses above, preceded by trial division
against a sieve of small primes (which rejects ~80% of candidates cheaply).
All randomness comes from a caller-supplied ``random.Random`` so key
generation is reproducible under a fixed seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ValidationError

__all__ = ["SMALL_PRIMES", "is_probable_prime", "generate_prime"]


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES: list[int] = _sieve(2000)

# For n < 3.3e24 these witnesses make Miller-Rabin deterministic.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def _miller_rabin_round(n: int, d: int, r: int, a: int) -> bool:
    """One MR round; returns True if *n* passes (is possibly prime)."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: Optional[random.Random] = None, rounds: int = 40) -> bool:
    """Miller–Rabin primality test.

    Deterministic (and exact) for n below ~3.3e24; otherwise *rounds*
    random-witness iterations giving error probability <= 4**-rounds.
    """
    if not isinstance(n, int) or isinstance(n, bool):
        raise ValidationError("primality test requires an int")
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_LIMIT:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        r_rng = rng if rng is not None else random.Random()
        witnesses = [r_rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, d, r, a) for a in witnesses)


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly *bits* bits.

    The top two bits are forced to 1 (so the product of two such primes has
    exactly ``2*bits`` bits) and the candidate is forced odd.
    """
    if bits < 8:
        raise ValidationError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
