"""From-scratch cryptographic substrate.

The paper relies on Globus GSI — PKI with X509v3 certificates, GSS-API
authentication, and SSL-based symmetric encryption. No external crypto
library is available here, so this package implements the needed primitives
directly:

* :mod:`repro.crypto.primes` — Miller–Rabin testing and prime generation;
* :mod:`repro.crypto.rsa` — RSA key generation and raw modular operations;
* :mod:`repro.crypto.signature` — PKCS#1-v1.5-style RSA/SHA-256 signatures;
* :mod:`repro.crypto.hashes` — SHA-256 helpers and PayWord hash chains;
* :mod:`repro.crypto.cipher` — authenticated stream cipher (SHA-256-CTR
  keystream, encrypt-then-HMAC) standing in for the GSS/SSL channel crypto;
* :mod:`repro.crypto.keys` — key (de)serialization.

These are *reproduction-grade* implementations: correct constructions at
reduced default key sizes (1024-bit) so tests run fast. They are not
intended to protect real funds.
"""

from repro.crypto.primes import is_probable_prime, generate_prime
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSAPrivateKey, generate_keypair
from repro.crypto.signature import sign, verify, Signed
from repro.crypto.hashes import sha256, HashChain
from repro.crypto.cipher import ChannelCipher, seal, open_sealed
from repro.crypto.keys import (
    public_key_to_dict,
    public_key_from_dict,
    private_key_to_dict,
    private_key_from_dict,
)

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "RSAKeyPair",
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_keypair",
    "sign",
    "verify",
    "Signed",
    "sha256",
    "HashChain",
    "ChannelCipher",
    "seal",
    "open_sealed",
    "public_key_to_dict",
    "public_key_from_dict",
    "private_key_to_dict",
    "private_key_from_dict",
]
