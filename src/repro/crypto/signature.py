"""RSA/SHA-256 signatures with PKCS#1-v1.5-style encoding.

Used everywhere the paper requires non-repudiation: certificates, signed
charge calculations ("These calculations along with the rates and RUR
records are signed by GSP", sec 2.1), GridCheques and hash-chain
commitments.

The message representative is ``0x00 0x01 FF.. 0x00 || DigestInfo`` where
DigestInfo is the SHA-256 ASN.1 prefix plus digest — byte-compatible in
structure with PKCS#1 v1.5 signing, implemented directly over our RSA.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.hashes import sha256
from repro.errors import SignatureError, ValidationError
from repro.obs import metrics
from repro.util.serialize import to_bytes

__all__ = [
    "sign",
    "verify",
    "require_valid",
    "Signed",
    "VerifyCache",
    "VERIFY_CACHE",
    "configure_verify_cache",
]

# ASN.1 DER prefix for a SHA-256 DigestInfo (RFC 8017 section 9.2 note 1).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")


class VerifyCache:
    """LRU cache of signatures that have already verified successfully.

    The same certificates, cheques and hash-chain commitments are
    re-verified on every request (cert chains on each handshake, the
    bank's signature on every instrument a GSP redeems), and each
    verification is a full RSA public-key exponentiation plus EMSA
    encoding. Caching is sound because a signature either verifies under
    a key or it does not — the result is a pure function of
    ``(n, e, digest(message), signature)``. Only *positive* results are
    cached so an attacker cannot pin a forgery, and the key includes the
    message digest so a cached signature never validates a different
    message. Hit/miss counters land in the metrics registry as
    ``crypto.verify_cache.{hits,misses}``.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValidationError("verify cache capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, None] = OrderedDict()

    def check(self, key: tuple) -> bool:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True
            return False

    def store(self, key: tuple) -> None:
        with self._lock:
            self._entries[key] = None
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide cache used by :func:`verify`.
VERIFY_CACHE = VerifyCache()


def configure_verify_cache(enabled: bool = True, capacity: int | None = None) -> None:
    """Toggle or resize the process-wide verified-signature cache."""
    VERIFY_CACHE.enabled = enabled
    if capacity is not None:
        if capacity < 1:
            raise ValidationError("verify cache capacity must be >= 1")
        VERIFY_CACHE.capacity = capacity
    if not enabled:
        VERIFY_CACHE.clear()


def _emsa_encode_digest(digest: bytes, em_len: int) -> int:
    digest_info = _SHA256_PREFIX + digest
    if em_len < len(digest_info) + 11:
        raise ValidationError("RSA modulus too small for SHA-256 signature")
    padding = b"\xff" * (em_len - len(digest_info) - 3)
    em = b"\x00\x01" + padding + b"\x00" + digest_info
    return int.from_bytes(em, "big")


def _emsa_encode(message: Any, em_len: int) -> int:
    return _emsa_encode_digest(sha256(to_bytes(message)), em_len)


def sign(private: RSAPrivateKey, message: Any) -> bytes:
    """Sign the canonical byte view of *message*; returns the raw signature."""
    m = _emsa_encode(message, private.byte_length)
    s = private.decrypt_int(m)
    return s.to_bytes(private.byte_length, "big")


def verify(public: RSAPublicKey, message: Any, signature: bytes) -> bool:
    """True iff *signature* is a valid signature of *message* under *public*."""
    if not isinstance(signature, bytes) or len(signature) != public.byte_length:
        return False
    s = int.from_bytes(signature, "big")
    if s >= public.n:
        return False
    try:
        digest = sha256(to_bytes(message))
    except ValidationError:
        return False
    cache = VERIFY_CACHE
    cache_key: tuple = ()
    if cache.enabled:
        # (n, e) identify the key without paying fingerprint()'s hash
        cache_key = (public.n, public.e, digest, signature)
        if cache.check(cache_key):
            metrics.counter("crypto.verify_cache.hits").inc()
            return True
        metrics.counter("crypto.verify_cache.misses").inc()
    try:
        expected = _emsa_encode_digest(digest, public.byte_length)
    except ValidationError:
        return False
    ok = public.encrypt_int(s) == expected
    if ok and cache.enabled and cache_key:
        cache.store(cache_key)
    return ok


def require_valid(public: RSAPublicKey, message: Any, signature: bytes, what: str = "signature") -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(public, message, signature):
        raise SignatureError(f"invalid {what}")


@dataclass(frozen=True)
class Signed:
    """A payload bundled with its signature and the signer's subject name.

    The subject name is advisory (lookups resolve it to a certificate whose
    key actually verifies); the signature is over the payload alone.
    """

    payload: Any
    signature: bytes
    signer: str

    @classmethod
    def make(cls, private: RSAPrivateKey, payload: Any, signer: str) -> "Signed":
        return cls(payload=payload, signature=sign(private, payload), signer=signer)

    def check(self, public: RSAPublicKey) -> bool:
        return verify(public, self.payload, self.signature)

    def to_dict(self) -> dict:
        return {"payload": self.payload, "signature": self.signature, "signer": self.signer}

    @classmethod
    def from_dict(cls, data: dict) -> "Signed":
        try:
            return cls(payload=data["payload"], signature=data["signature"], signer=data["signer"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed Signed envelope: {exc}") from exc
