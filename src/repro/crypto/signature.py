"""RSA/SHA-256 signatures with PKCS#1-v1.5-style encoding.

Used everywhere the paper requires non-repudiation: certificates, signed
charge calculations ("These calculations along with the rates and RUR
records are signed by GSP", sec 2.1), GridCheques and hash-chain
commitments.

The message representative is ``0x00 0x01 FF.. 0x00 || DigestInfo`` where
DigestInfo is the SHA-256 ASN.1 prefix plus digest — byte-compatible in
structure with PKCS#1 v1.5 signing, implemented directly over our RSA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.hashes import sha256
from repro.errors import SignatureError, ValidationError
from repro.util.serialize import to_bytes

__all__ = ["sign", "verify", "require_valid", "Signed"]

# ASN.1 DER prefix for a SHA-256 DigestInfo (RFC 8017 section 9.2 note 1).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")


def _emsa_encode(message: Any, em_len: int) -> int:
    digest_info = _SHA256_PREFIX + sha256(to_bytes(message))
    if em_len < len(digest_info) + 11:
        raise ValidationError("RSA modulus too small for SHA-256 signature")
    padding = b"\xff" * (em_len - len(digest_info) - 3)
    em = b"\x00\x01" + padding + b"\x00" + digest_info
    return int.from_bytes(em, "big")


def sign(private: RSAPrivateKey, message: Any) -> bytes:
    """Sign the canonical byte view of *message*; returns the raw signature."""
    m = _emsa_encode(message, private.byte_length)
    s = private.decrypt_int(m)
    return s.to_bytes(private.byte_length, "big")


def verify(public: RSAPublicKey, message: Any, signature: bytes) -> bool:
    """True iff *signature* is a valid signature of *message* under *public*."""
    if not isinstance(signature, bytes) or len(signature) != public.byte_length:
        return False
    s = int.from_bytes(signature, "big")
    if s >= public.n:
        return False
    try:
        expected = _emsa_encode(message, public.byte_length)
    except ValidationError:
        return False
    return public.encrypt_int(s) == expected


def require_valid(public: RSAPublicKey, message: Any, signature: bytes, what: str = "signature") -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(public, message, signature):
        raise SignatureError(f"invalid {what}")


@dataclass(frozen=True)
class Signed:
    """A payload bundled with its signature and the signer's subject name.

    The subject name is advisory (lookups resolve it to a certificate whose
    key actually verifies); the signature is over the payload alone.
    """

    payload: Any
    signature: bytes
    signer: str

    @classmethod
    def make(cls, private: RSAPrivateKey, payload: Any, signer: str) -> "Signed":
        return cls(payload=payload, signature=sign(private, payload), signer=signer)

    def check(self, public: RSAPublicKey) -> bool:
        return verify(public, self.payload, self.signature)

    def to_dict(self) -> dict:
        return {"payload": self.payload, "signature": self.signature, "signer": self.signer}

    @classmethod
    def from_dict(cls, data: dict) -> "Signed":
        try:
            return cls(payload=data["payload"], signature=data["signature"], signer=data["signer"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed Signed envelope: {exc}") from exc
