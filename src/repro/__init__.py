"""GridBank / GASA reproduction.

A from-scratch Python implementation of *GridBank: A Grid Accounting
Services Architecture (GASA) for Distributed Systems Sharing and
Integration* (Barmouta & Buyya, 2003): the GridBank server (accounts,
admin, security, payment protocols over a relational engine), the
client-side GBPM/GBCM modules, Resource Usage Records, the GSP substrate
(metering, trading, template accounts) and a Nimrod-G-like broker, all
runnable end to end on a discrete-event grid simulator or over real TCP.

Quick start::

    from repro import GridSession, PaymentStrategy, ServiceRatesRecord, Job

    session = GridSession(seed=1)
    alice = session.add_consumer("alice", funds=1000)
    gsp = session.add_provider("gsp1", ServiceRatesRecord.flat(cpu_per_hour=6.0))
    job = Job(job_id="j1", user_subject=alice.subject,
              application_name="render", length_mi=900_000)
    outcome = session.run_job(alice, gsp, job, PaymentStrategy.PAY_AFTER_USE)
    print(outcome.charge, outcome.paid)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.util.money import Credits, ZERO
from repro.util.gbtime import Timestamp, VirtualClock, SystemClock
from repro.core.rates import ServiceRatesRecord
from repro.core.session import GridSession, PaymentStrategy, SessionOutcome, Participant
from repro.grid.job import Job, JobStatus
from repro.rur.record import ResourceUsageRecord, UsageVector

__version__ = "1.0.0"

__all__ = [
    "Credits",
    "ZERO",
    "Timestamp",
    "VirtualClock",
    "SystemClock",
    "ServiceRatesRecord",
    "GridSession",
    "PaymentStrategy",
    "SessionOutcome",
    "Participant",
    "Job",
    "JobStatus",
    "ResourceUsageRecord",
    "UsageVector",
    "__version__",
]
