"""Diagnosis plane — always-on profiler, flight recorder, debug bundles.

The telemetry stack (metrics, spans, SLO burn alerts, usage metering)
answers *what* happened; this module answers *why it was slow or wedged*
— the evidence an operator needs when a page fires, captured before the
anomaly rather than reconstructed after it.

Three cooperating pieces:

* :class:`SamplingProfiler` — a daemon thread walking
  ``sys._current_frames()`` at a configurable hz and folding each
  thread's stack into collapsed form. Samples are attributed per
  operation by joining the thread ident against the active-span registry
  (:func:`repro.obs.trace.thread_spans`), so the output reads "62% of
  CPU under ``bank.op.direct_transfer``, hottest frame ``rsa:decrypt``".
  At the default 25 hz a sample is a dict walk over a handful of
  threads; measured overhead on the transfer storm is well under the 5%
  budget (``benchmarks/bench_diag.py`` asserts it).

* :class:`FlightRecorder` — bounded rings of the recent past: finished
  spans (a pre-sampling sink, so it sees what the durable store may have
  sampled away), log records, per-second metric counter deltas, and
  profile-fold deltas. When a trigger fires — SLO page transition,
  corruption latch, deadline-exceeded storm, unhandled dispatch
  exception — the rings are snapshotted into a timestamped post-mortem
  directory. Dumps are rate-limited so a flapping trigger cannot fill a
  disk.

* :class:`DiagPlane` — wires both into the process: installs the
  stripe-lock wait hook (:func:`repro.bank.locks.set_wait_hook`) and the
  WAL flush-path hook (:func:`repro.db.database.set_wal_wait_hook`) so
  contention has first-class attribution, and exposes the snapshots the
  ``Diag.Profile`` / ``Diag.FlightRecord`` cluster RPCs and the
  ``gridbank debug-bundle`` CLI collect.

Everything here is observation of the observer, so the cardinal rule is
*do no harm*: hooks are single ``is not None`` checks when disabled,
ring appends are O(1) deque operations, trigger paths swallow their own
errors into counters, and the plane's own threads are excluded from
profiles and usage metering (see ``UNTRACKED_OPS``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Optional, Union

from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.gbtime import Clock, SystemClock

__all__ = [
    "SamplingProfiler",
    "FlightRecorder",
    "DiagPlane",
    "WaitStats",
    "LOCK_WAITS",
    "WAL_WAITS",
    "record_lock_wait",
    "record_wal_wait",
    "fold_stack",
    "render_profile",
    "notify_trigger",
    "notify_slo_transition",
    "active_plane",
    "set_active_plane",
    "register_diag_thread",
    "unregister_diag_thread",
]

_log = obs_logging.get_logger("obs.diag")

# Thread idents belonging to the diagnosis plane itself (profiler loop,
# recorder ticker). The profiler skips them so self-observation never
# shows up in per-op CPU attribution.
_diag_threads: set[int] = set()


def register_diag_thread(ident: Optional[int] = None) -> None:
    """Mark a thread (default: the calling one) as diagnosis-plane
    internal, excluding it from profiles."""
    _diag_threads.add(ident if ident is not None else threading.get_ident())


def unregister_diag_thread(ident: Optional[int] = None) -> None:
    """Remove a thread from the diagnosis-plane set. Loop threads call
    this on exit — the OS reuses thread idents, so a stale entry would
    silently blind the profiler to whatever unrelated thread inherits
    the ident next."""
    _diag_threads.discard(ident if ident is not None else threading.get_ident())


# -- wait/contention accounting -----------------------------------------------


class WaitStats:
    """Aggregated blocked-wait totals keyed by origin.

    One instance per wait domain (account-stripe locks, WAL flush path);
    each recorded wait folds into ``count / total_seconds / max_seconds``
    per key, so a snapshot names the specific stripe or WAL phase a
    workload convoys on without storing individual events.
    """

    __slots__ = ("_lock", "_data")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, list] = {}  # key -> [count, total, max]

    def record(self, key: str, seconds: float) -> None:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                entry = self._data[key] = [0, 0.0, 0.0]
            entry[0] += 1
            entry[1] += seconds
            if seconds > entry[2]:
                entry[2] = seconds

    def snapshot(self) -> dict:
        with self._lock:
            return {
                key: {
                    "count": entry[0],
                    "total_seconds": entry[1],
                    "max_seconds": entry[2],
                }
                for key, entry in sorted(self._data.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._data = {}


#: Blocked stripe-lock acquisitions, keyed ``stripe-<index>/<mode>``.
LOCK_WAITS = WaitStats()
#: Group-commit WAL waits, keyed by phase (``commit_wait``/``linger``/``flush``).
WAL_WAITS = WaitStats()


# The hooks sit on every WAL commit, so the histogram label-key lookup
# (~1.3us) is cached per label value and revalidated against registry
# resets via the generation counter (~0.3us on the hit path).
_hist_cache: dict[str, tuple] = {}


def _cached_histogram(key: str, name: str, **kw):
    generation = obs_metrics.REGISTRY.generation
    entry = _hist_cache.get(key)
    if entry is None or entry[0] != generation:
        entry = (generation, obs_metrics.histogram(name, **kw))
        _hist_cache[key] = entry
    return entry[1]


def record_lock_wait(stripe: int, mode: str, seconds: float) -> None:
    """Hook installed into :mod:`repro.bank.locks` — called only for
    acquisitions that actually blocked."""
    LOCK_WAITS.record(f"stripe-{stripe}/{mode}", seconds)
    _cached_histogram(f"lock/{mode}", "bank.lock.wait_seconds", mode=mode).observe(seconds)


def record_wal_wait(kind: str, seconds: float, batch: int = 0) -> None:
    """Hook installed into :mod:`repro.db.database`'s group-commit path."""
    WAL_WAITS.record(kind, seconds)
    _cached_histogram(f"wal/{kind}", "db.wal.wait_seconds", kind=kind).observe(seconds)
    if batch > 1:
        _cached_histogram(
            "wal/batch", "db.wal.flush_batch_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        ).observe(batch)


# -- stack folding ------------------------------------------------------------

_STACK_DEPTH = 48


def fold_stack(frame, limit: int = _STACK_DEPTH) -> str:
    """Collapse a frame chain into ``root:fn;...;leaf:fn`` form.

    Frames are named ``<file stem>:<function>`` — enough to find the code
    without the noise (and cost) of full paths/line numbers at sampling
    rate. The walk is bounded so a pathological recursion cannot make a
    single sample expensive.
    """
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < limit:
        code = frame.f_code
        filename = code.co_filename
        slash = filename.rfind("/")
        stem = filename[slash + 1:]
        if stem.endswith(".py"):
            stem = stem[:-3]
        parts.append(f"{stem}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


# -- sampling profiler --------------------------------------------------------


class SamplingProfiler:
    """Always-on statistical profiler with per-operation attribution.

    A daemon thread wakes ``hz`` times per second, snapshots every
    thread's current frame via ``sys._current_frames()``, folds each
    stack, and attributes the sample to the span running on that thread
    (via :func:`repro.obs.trace.thread_spans`). Threads outside any span
    are attributed ``(untraced)``; the plane's own threads are skipped.

    Fold storage is bounded: once ``max_stacks`` distinct (op, stack)
    keys exist, new stacks collapse into an ``(overflow)`` bucket per op
    so memory stays flat under pathological stack diversity.
    """

    DEFAULT_HZ = 25.0

    def __init__(self, hz: float = DEFAULT_HZ, max_stacks: int = 2000,
                 stack_depth: int = _STACK_DEPTH) -> None:
        if hz <= 0:
            raise ValueError("profiler hz must be positive")
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._max_stacks = max_stacks
        self._stack_depth = stack_depth
        self._lock = threading.Lock()
        self._folds: dict[tuple[str, str], int] = {}
        self._op_samples: dict[str, int] = {}
        self._samples = 0
        self._ticks = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_perf = 0.0
        self._elapsed = 0.0  # accumulated across start/stop cycles

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_perf = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="gridbank-diag-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        self._elapsed += time.perf_counter() - self._started_perf

    def _run(self) -> None:
        register_diag_thread()
        try:
            while not self._stop.wait(self._interval):
                try:
                    self.sample_once()
                except Exception:  # noqa: BLE001 - one bad sample must not
                    # kill the loop; the failure count stays visible
                    obs_metrics.counter("obs.diag.profiler_errors").inc()
        finally:
            unregister_diag_thread()

    def sample_once(self) -> None:
        """Take one sample of every live thread (the loop body; public so
        tests and virtual-time drills can sample deterministically)."""
        frames = sys._current_frames()  # noqa: SLF001 - the documented API
        spans = obs_trace.thread_spans()
        with self._lock:
            self._ticks += 1
            for ident, frame in frames.items():
                if ident in _diag_threads:
                    continue
                entry = spans.get(ident)
                op = entry[0] if entry is not None else "(untraced)"
                key = (op, fold_stack(frame, self._stack_depth))
                if key not in self._folds and len(self._folds) >= self._max_stacks:
                    key = (op, "(overflow)")
                self._folds[key] = self._folds.get(key, 0) + 1
                self._op_samples[op] = self._op_samples.get(op, 0) + 1
                self._samples += 1

    def _duration(self) -> float:
        if self._thread is not None:
            return self._elapsed + (time.perf_counter() - self._started_perf)
        return self._elapsed

    def fold_counts(self) -> dict[tuple[str, str], int]:
        """Cumulative (op, stack) -> sample count (copy)."""
        with self._lock:
            return dict(self._folds)

    def fold_lines(self) -> list[str]:
        """Collapsed-stack lines (``op;frame;...;frame count``) — the
        format flamegraph tooling ingests directly."""
        with self._lock:
            items = sorted(self._folds.items(), key=lambda kv: -kv[1])
        return [f"{op};{stack} {count}" for (op, stack), count in items]

    def snapshot(self, top: int = 25) -> dict:
        """JSON-ready profile: per-op CPU shares plus the hottest stacks."""
        with self._lock:
            samples = self._samples
            ticks = self._ticks
            op_samples = dict(self._op_samples)
            folds = sorted(self._folds.items(), key=lambda kv: -kv[1])[:top]
        ops = {
            op: {
                "samples": count,
                "cpu_share": count / samples if samples else 0.0,
            }
            for op, count in sorted(op_samples.items(), key=lambda kv: -kv[1])
        }
        return {
            "enabled": True,
            "hz": self.hz,
            "ticks": ticks,
            "samples": samples,
            "duration_seconds": self._duration(),
            "ops": ops,
            "hot_stacks": [
                {"op": op, "stack": stack, "samples": count}
                for (op, stack), count in folds
            ],
        }

    def reset(self) -> None:
        with self._lock:
            self._folds = {}
            self._op_samples = {}
            self._samples = 0
            self._ticks = 0


# -- flight recorder ----------------------------------------------------------


def _jsonable(value: object) -> object:
    """Force *value* JSON-clean (RPC responses and dump files both need
    it); anything exotic is stringified rather than raising."""
    return json.loads(json.dumps(value, default=str))


def _repro_error_names() -> frozenset:
    """Names of every :class:`ReproError` subclass — the *expected*
    error vocabulary. A dispatch span failing outside it means an
    exception escaped the application's error model."""
    from repro.errors import ReproError

    names = {ReproError.__name__}
    stack = [ReproError]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub.__name__ not in names:
                names.add(sub.__name__)
                stack.append(sub)
    return frozenset(names)


class FlightRecorder:
    """Bounded rings of the recent past, dumped when a trigger fires.

    Rings (all ``deque(maxlen=...)``, so appends are O(1) and memory is
    flat): finished span records, log records (via a
    :class:`~repro.obs.logging.RingHandler` on the gridbank root),
    per-tick metric counter deltas, and per-tick profile-fold deltas.

    Triggers: :meth:`trigger` is called directly by the SLO engine
    (page transition), the database (corruption latch) — both through
    :func:`notify_trigger` — and internally from the span sink
    (deadline-exceeded storm, unhandled dispatch exception). A dump
    writes every ring plus a metrics snapshot and wait stats into
    ``<dump_dir>/postmortem-<stamp>-<seq>-<reason>/``; dumps are
    rate-limited to one per ``min_dump_interval`` seconds.
    """

    def __init__(
        self,
        profiler: Optional[SamplingProfiler] = None,
        clock: Optional[Clock] = None,
        dump_dir: Optional[Union[str, Path]] = None,
        span_capacity: int = 512,
        log_capacity: int = 512,
        delta_capacity: int = 120,
        fold_capacity: int = 64,
        tick_interval: float = 1.0,
        min_dump_interval: float = 30.0,
        deadline_storm_threshold: int = 8,
        deadline_storm_window: float = 5.0,
    ) -> None:
        self.profiler = profiler
        self.clock = clock if clock is not None else SystemClock()
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.tick_interval = tick_interval
        self.min_dump_interval = min_dump_interval
        self.deadline_storm_threshold = deadline_storm_threshold
        self.deadline_storm_window = deadline_storm_window
        self._spans: deque = deque(maxlen=span_capacity)
        self._deltas: deque = deque(maxlen=delta_capacity)
        self._folds: deque = deque(maxlen=fold_capacity)
        self._log_handler = obs_logging.RingHandler(capacity=log_capacity)
        self._prev_level = 0
        self._deadlines: deque = deque()
        self._trigger_lock = threading.Lock()
        self._last_dump_perf: Optional[float] = None
        self._dump_count = 0
        self._last_triggers: deque = deque(maxlen=16)
        self._prev_counters: dict = {}
        self._prev_folds: dict = {}
        self._error_names: frozenset = frozenset()
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        self._started = False

    def start(self) -> "FlightRecorder":
        if self._started:
            return self
        self._started = True
        # computed at start so subclasses defined by then are included
        self._error_names = _repro_error_names()
        self._prev_level = obs_logging.attach_ring(self._log_handler)
        obs_trace.add_sink(self._span_sink)
        _recorders.append(self)
        if self.tick_interval > 0:
            self._stop.clear()
            self._ticker = threading.Thread(
                target=self._run_ticker, name="gridbank-diag-recorder", daemon=True
            )
            self._ticker.start()
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self._ticker is not None:
            self._stop.set()
            self._ticker.join(timeout=2.0)
            self._ticker = None
        obs_trace.remove_sink(self._span_sink)
        obs_logging.detach_ring(self._log_handler, self._prev_level)
        if self in _recorders:
            _recorders.remove(self)

    # -- ring feeds -----------------------------------------------------------

    def _span_sink(self, record: dict) -> None:
        self._spans.append(record)
        error_type = record.get("error_type") or ""
        if error_type:
            self._check_error_triggers(record, error_type)

    def _check_error_triggers(self, record: dict, error_type: str) -> None:
        if error_type.startswith("DeadlineExceeded"):
            now = time.monotonic()
            window = self._deadlines
            window.append(now)
            while window and now - window[0] > self.deadline_storm_window:
                window.popleft()
            if len(window) >= self.deadline_storm_threshold:
                count = len(window)
                window.clear()
                self.trigger(
                    "deadline_storm",
                    count=count,
                    window_seconds=self.deadline_storm_window,
                )
        elif (
            record.get("name") == "rpc.server.dispatch"
            and error_type not in self._error_names
        ):
            attrs = record.get("attrs")
            method = attrs.get("method", "") if isinstance(attrs, dict) else ""
            self.trigger("unhandled_exception", error=error_type, method=str(method))

    def _run_ticker(self) -> None:
        register_diag_thread()
        try:
            while not self._stop.wait(self.tick_interval):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - recorder upkeep never crashes
                    obs_metrics.counter("obs.diag.recorder_errors").inc()
        finally:
            unregister_diag_thread()

    def tick(self) -> None:
        """Capture one metric-delta (and profile-fold-delta) sample;
        public so tests and virtual-time drills can tick deterministically."""
        counters = obs_metrics.snapshot()["counters"]
        delta = {}
        for key, value in counters.items():
            moved = value - self._prev_counters.get(key, 0.0)
            if moved:
                delta[key] = moved
        self._prev_counters = counters
        epoch = self.clock.epoch()
        self._deltas.append({"epoch": epoch, "counters": delta})
        if self.profiler is not None:
            folds = self.profiler.fold_counts()
            fresh = []
            for key, count in folds.items():
                moved = count - self._prev_folds.get(key, 0)
                if moved > 0:
                    fresh.append((key, moved))
            self._prev_folds = folds
            if fresh:
                fresh.sort(key=lambda kv: -kv[1])
                self._folds.append(
                    {
                        "epoch": epoch,
                        "folds": [
                            [op, stack, count] for (op, stack), count in fresh[:50]
                        ],
                    }
                )

    # -- triggering and dumping -----------------------------------------------

    def trigger(self, reason: str, **details: object) -> Optional[Path]:
        """Record a trigger; snapshot the rings to disk unless one was
        dumped less than ``min_dump_interval`` seconds ago. Returns the
        post-mortem directory, or ``None`` when suppressed/disabled."""
        obs_metrics.counter("obs.diag.triggers", reason=reason).inc()
        info = {"reason": reason, "details": _jsonable(dict(details)),
                "epoch": self.clock.epoch()}
        self._last_triggers.append(info)
        _log.warning("diag.trigger", reason=reason)
        now = time.perf_counter()
        with self._trigger_lock:
            if (
                self._last_dump_perf is not None
                and now - self._last_dump_perf < self.min_dump_interval
            ):
                obs_metrics.counter("obs.diag.dumps_suppressed").inc()
                return None
            self._last_dump_perf = now
            self._dump_count += 1
            sequence = self._dump_count
        if self.dump_dir is None:
            return None
        try:
            return self._dump(reason, info, sequence)
        except Exception:  # noqa: BLE001 - a failed dump must not take the
            # triggering request path down with it
            obs_metrics.counter("obs.diag.dump_errors").inc()
            return None

    def _dump(self, reason: str, info: dict, sequence: int) -> Path:
        stamp = self.clock.now().stamp14
        out = self.dump_dir / f"postmortem-{stamp}-{sequence:03d}-{reason}"
        out.mkdir(parents=True, exist_ok=True)
        meta = dict(info)
        meta["sequence"] = sequence
        meta["recent_triggers"] = list(self._last_triggers)
        (out / "meta.json").write_text(
            json.dumps(meta, indent=2, default=str), encoding="utf-8"
        )
        with (out / "spans.jsonl").open("w", encoding="utf-8") as fh:
            for record in list(self._spans):
                fh.write(json.dumps(record, default=str) + "\n")
        with (out / "logs.jsonl").open("w", encoding="utf-8") as fh:
            for record in self._log_handler.tail():
                fh.write(json.dumps(record, default=str) + "\n")
        (out / "metrics.json").write_text(
            json.dumps(
                {"snapshot": obs_metrics.snapshot(), "deltas": list(self._deltas)},
                indent=2,
                default=str,
            ),
            encoding="utf-8",
        )
        (out / "waits.json").write_text(
            json.dumps(
                {"lock_waits": LOCK_WAITS.snapshot(), "wal_waits": WAL_WAITS.snapshot()},
                indent=2,
            ),
            encoding="utf-8",
        )
        if self.profiler is not None:
            (out / "profile.folded").write_text(
                "\n".join(self.profiler.fold_lines()) + "\n", encoding="utf-8"
            )
            (out / "profile.json").write_text(
                json.dumps(self.profiler.snapshot(), indent=2), encoding="utf-8"
            )
        obs_metrics.counter("obs.diag.dumps").inc()
        _log.warning("diag.dump", reason=reason, path=str(out))
        return out

    def snapshot(self, limit: int = 128) -> dict:
        """JSON-ready view of the rings for the ``Diag.FlightRecord``
        RPC: recent + slowest spans, logs, metric deltas, fold deltas."""
        spans = list(self._spans)
        slow = sorted(
            spans, key=lambda r: r.get("duration_seconds", 0.0), reverse=True
        )[:20]
        return {
            "enabled": True,
            "spans": _jsonable(spans[-limit:]),
            "slow_spans": _jsonable(slow),
            "logs": self._log_handler.tail(limit),
            "metric_deltas": _jsonable(list(self._deltas)[-limit:]),
            "profile_folds": _jsonable(list(self._folds)[-limit:]),
            "recent_triggers": list(self._last_triggers),
            "dump_count": self._dump_count,
            "metrics": obs_metrics.snapshot(),
        }


# -- the plane ----------------------------------------------------------------


class DiagPlane:
    """Profiler + flight recorder + contention hooks as one lifecycle.

    ``gridbank serve`` builds one per process (``--profile-hz 0``
    disables the sampler, ``--no-diag`` the whole plane); tests build
    throwaway planes with tiny rings and virtual clocks.
    """

    def __init__(
        self,
        profile_hz: float = SamplingProfiler.DEFAULT_HZ,
        dump_dir: Optional[Union[str, Path]] = None,
        clock: Optional[Clock] = None,
        **recorder_options: object,
    ) -> None:
        self.profiler = (
            SamplingProfiler(hz=profile_hz) if profile_hz and profile_hz > 0 else None
        )
        self.recorder = FlightRecorder(
            profiler=self.profiler, clock=clock, dump_dir=dump_dir,
            **recorder_options,  # type: ignore[arg-type]
        )
        self._hooks_installed = False
        self._started = False

    def start(self) -> "DiagPlane":
        if self._started:
            return self
        self._started = True
        # imported here, not at module top: the obs layer must not drag
        # the bank/db layers in just to be importable
        from repro.bank import locks as bank_locks
        from repro.db import database as db_database

        bank_locks.set_wait_hook(record_lock_wait)
        db_database.set_wal_wait_hook(record_wal_wait)
        self._hooks_installed = True
        if self.profiler is not None:
            self.profiler.start()
        self.recorder.start()
        set_active_plane(self)
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self.recorder.stop()
        if self.profiler is not None:
            self.profiler.stop()
        if self._hooks_installed:
            from repro.bank import locks as bank_locks
            from repro.db import database as db_database

            if bank_locks.wait_hook() is record_lock_wait:
                bank_locks.set_wait_hook(None)
            if db_database.wal_wait_hook() is record_wal_wait:
                db_database.set_wal_wait_hook(None)
            self._hooks_installed = False
        if active_plane() is self:
            set_active_plane(None)

    def profile_snapshot(self, top: int = 25) -> dict:
        """Per-op CPU attribution + contention stats (``Diag.Profile``)."""
        data = (
            self.profiler.snapshot(top=top)
            if self.profiler is not None
            else {"enabled": False, "ops": {}, "hot_stacks": []}
        )
        data["lock_waits"] = LOCK_WAITS.snapshot()
        data["wal_waits"] = WAL_WAITS.snapshot()
        return data

    def flight_snapshot(self, limit: int = 128) -> dict:
        return self.recorder.snapshot(limit=limit)


# -- process-wide notification plumbing ---------------------------------------

_recorders: list[FlightRecorder] = []
_active: Optional[DiagPlane] = None


def set_active_plane(plane: Optional[DiagPlane]) -> None:
    global _active
    _active = plane


def active_plane() -> Optional[DiagPlane]:
    """The process's serving DiagPlane, if one is started."""
    return _active


def notify_trigger(reason: str, **details: object) -> None:
    """Fan a trigger out to every started flight recorder.

    This is the entry point instrumented modules call lazily (the SLO
    engine on a page transition, the database on a corruption latch) —
    cheap and safe when no recorder exists."""
    for recorder in list(_recorders):
        try:
            recorder.trigger(reason, **details)
        except Exception:  # noqa: BLE001 - diagnostics never break callers
            pass


def notify_slo_transition(
    op: str = "", previous: str = "", state: str = "", **fields: object
) -> None:
    """SLO state-change hook; only *entering* page triggers a dump (the
    ok->warn and recovery edges are routine)."""
    if state == "page":
        notify_trigger("slo_page", op=op, previous=previous, **fields)


# -- rendering (`gridbank profile`) -------------------------------------------


def render_profile(profile: dict, top: int = 10) -> str:
    """Human-readable profile: per-op CPU%, hottest stacks, wait tables."""
    if not profile.get("enabled", False):
        return "(profiler disabled)"
    lines = [
        f"samples={profile.get('samples', 0)} hz={profile.get('hz', 0):g} "
        f"duration={profile.get('duration_seconds', 0.0):.1f}s"
    ]
    ops = profile.get("ops", {})
    if ops:
        lines.append("")
        lines.append(f"{'OP':<44} {'SAMPLES':>8} {'CPU%':>7}")
        for op, row in list(ops.items())[:top]:
            lines.append(
                f"{op:<44} {row.get('samples', 0):>8} "
                f"{100.0 * row.get('cpu_share', 0.0):>6.1f}%"
            )
    hot = profile.get("hot_stacks", [])
    if hot:
        lines.append("")
        lines.append("hot stacks (samples  [op] leaf frames):")
        for row in hot[:top]:
            stack = row.get("stack", "")
            leaf = ";".join(stack.split(";")[-3:])
            lines.append(f"{row.get('samples', 0):>8}  [{row.get('op', '')}] {leaf}")
    for title, key in (("lock waits", "lock_waits"), ("wal waits", "wal_waits")):
        waits = profile.get(key, {})
        if not waits:
            continue
        lines.append("")
        lines.append(f"{title.upper():<28} {'COUNT':>7} {'TOTAL s':>9} {'MAX s':>8}")
        rows = sorted(
            waits.items(), key=lambda kv: -kv[1].get("total_seconds", 0.0)
        )[:top]
        for key_name, row in rows:
            lines.append(
                f"{key_name:<28} {row.get('count', 0):>7} "
                f"{row.get('total_seconds', 0.0):>9.3f} "
                f"{row.get('max_seconds', 0.0):>8.3f}"
            )
    return "\n".join(lines)
