"""Observability substrate: structured logs, metrics, trace propagation.

GridBank's value is an auditable record of who used what and who paid
whom (GASA sec 3.2, 5.1); this package gives the reproduction the same
property for its own behaviour. Three pieces:

* :mod:`repro.obs.metrics` — thread-safe in-process counters, gauges and
  fixed-bucket histograms, read out via ``snapshot()`` (the benchmark
  sidecars and the ``gridbank metrics`` CLI).
* :mod:`repro.obs.logging` — structured key=value / JSON-line logging on
  stdlib :mod:`logging`, with a capturing handler for tests.
* :mod:`repro.obs.trace` — trace/span IDs minted at the RPC client,
  carried in the envelope ``trace`` field, restored around server-side
  dispatch, and stamped onto ledger TRANSACTION/TRANSFER rows.
"""

from repro.obs import logging, metrics, trace

__all__ = ["logging", "metrics", "trace"]
