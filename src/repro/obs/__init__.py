"""Observability substrate: logs, metrics, traces — now durable.

GridBank's value is an auditable record of who used what and who paid
whom (GASA sec 3.2, 5.1); this package gives the reproduction the same
property for its own behaviour. Eight pieces:

* :mod:`repro.obs.metrics` — thread-safe in-process counters, gauges and
  fixed-bucket histograms (exponential bounds by default), read out via
  ``snapshot()`` (the benchmark sidecars and the ``gridbank metrics``
  CLI).
* :mod:`repro.obs.logging` — structured key=value / JSON-line logging on
  stdlib :mod:`logging`, with a capturing handler for tests.
* :mod:`repro.obs.trace` — trace/span IDs minted at the RPC client,
  carried in the envelope ``trace`` field, restored around server-side
  dispatch, and stamped onto ledger TRANSACTION/TRANSFER rows; spans are
  *recorded* (timing, events, status) and flushed to sinks on close.
* :mod:`repro.obs.store` — the sinks that make spans durable: SPAN rows
  through the WAL'd database (queryable by ``gridbank trace``) and a
  JSONL file for out-of-process collection.
* :mod:`repro.obs.export` — Prometheus-text rendering of the metrics
  snapshot, with file/HTTP polling sidecars (plus ``/healthz``).
* :mod:`repro.obs.slo` — declarative per-op objectives evaluated as
  multi-window burn rates, with an ok/warning/page alert state machine.
* :mod:`repro.obs.sampling` — adaptive head sampling with tail retention
  for error and slow spans, in front of the durable span store.
* :mod:`repro.obs.usage` — per-principal usage metering rolled up into
  WAL'd rows carrying standard RUR blobs.
"""

from repro.obs import export, logging, metrics, sampling, slo, store, trace, usage

__all__ = ["export", "logging", "metrics", "sampling", "slo", "store", "trace", "usage"]
