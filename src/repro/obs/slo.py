"""SLO burn-rate engine — declarative per-op objectives over rolling windows.

An :class:`Objective` states what "good" means for one operation (or
``"*"`` for everything): the call succeeded AND finished under the
latency threshold, with a target fraction of good events (e.g. 0.999).
The engine folds every dispatch into two rolling windows — a fast window
(default 5 minutes) that reacts quickly and clears quickly, and a slow
window (default 1 hour) that filters blips — and evaluates the classic
multi-window *burn rate*::

    burn = bad_fraction / error_budget        error_budget = 1 - target

A burn rate of 1.0 spends the budget exactly at the sustainable pace;
paging at ``burn >= 10`` on BOTH windows means the budget would be gone
in a tenth of the period and the problem is still happening right now.
The alert state machine is ``ok -> warning -> page`` (and back): warning
when both windows burn above ``warn_burn``, page above ``page_burn``,
ok again once either window falls back below ``warn_burn`` — the fast
window rolling over is what clears an alert after the fault stops.

State is exported three ways so nothing has to poll the engine itself:
gauges (``slo.burn_rate{op=,window=}``, ``slo.alert_state{op=}`` with
0/1/2), a ``slo.alert_transitions`` counter, and an ``slo.transition``
span event attached to whatever span was active when the state flipped
(the bank's op span — so the trace that tripped the alert records it).
Time comes from the injected :class:`~repro.util.gbtime.Clock`, so the
whole machinery runs under a :class:`~repro.util.gbtime.VirtualClock`
in tests and fault drills.

:meth:`SLOEngine.overload` is the admission-control hook the roadmap's
front-end work consumes: "is any objective currently paging?".
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.util.gbtime import Clock, SystemClock

__all__ = [
    "Objective",
    "SLOEngine",
    "default_bank_objectives",
    "STATE_OK",
    "STATE_WARNING",
    "STATE_PAGE",
    "STATE_VALUES",
]

_log = get_logger("obs.slo")

STATE_OK = "ok"
STATE_WARNING = "warning"
STATE_PAGE = "page"

#: Numeric encoding used by the ``slo.alert_state`` gauge.
STATE_VALUES = {STATE_OK: 0, STATE_WARNING: 1, STATE_PAGE: 2}

_SEVERITY = {STATE_OK: 0, STATE_WARNING: 1, STATE_PAGE: 2}


@dataclass(frozen=True)
class Objective:
    """One service-level objective: availability + latency, per op.

    ``op`` is the bank operation name (``direct_transfer``) or ``"*"``
    to cover any op without its own objective. An event is *good* when
    it succeeded and took no longer than ``latency_threshold`` seconds.
    """

    op: str
    target: float = 0.999
    latency_threshold: float = 0.5
    fast_window: float = 300.0
    slow_window: float = 3600.0
    warn_burn: float = 2.0
    page_burn: float = 10.0

    def __post_init__(self) -> None:
        if not self.op:
            raise ValueError("objective op must be non-empty")
        if not 0.0 < self.target < 1.0:
            raise ValueError("objective target must be in (0, 1)")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError("windows must satisfy 0 < fast_window <= slow_window")
        if not 0 < self.warn_burn <= self.page_burn:
            raise ValueError("burn thresholds must satisfy 0 < warn_burn <= page_burn")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "target": self.target,
            "latency_threshold": self.latency_threshold,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "warn_burn": self.warn_burn,
            "page_burn": self.page_burn,
        }


class _Window:
    """Rolling good/total counts over a fixed span, bucketed for O(1) adds.

    Events land in ``span / buckets``-wide slots keyed by absolute slot
    index; expiry subtracts whole slots once they age out, so adds and
    reads are constant-time regardless of traffic (no per-event storage).
    """

    __slots__ = ("span", "width", "_slots", "_good", "_total")

    def __init__(self, span: float, buckets: int = 30) -> None:
        self.span = span
        self.width = span / buckets
        self._slots: deque[list] = deque()  # [slot_index, good, total]
        self._good = 0
        self._total = 0

    def _expire(self, now: float) -> None:
        horizon = int((now - self.span) // self.width)
        while self._slots and self._slots[0][0] <= horizon:
            _, good, total = self._slots.popleft()
            self._good -= good
            self._total -= total

    def add(self, now: float, good: bool) -> None:
        self._expire(now)
        index = int(now // self.width)
        if self._slots and self._slots[-1][0] == index:
            slot = self._slots[-1]
        else:
            slot = [index, 0, 0]
            self._slots.append(slot)
        slot[2] += 1
        self._total += 1
        if good:
            slot[1] += 1
            self._good += 1

    def counts(self, now: float) -> tuple[int, int]:
        self._expire(now)
        return self._good, self._total

    def bad_fraction(self, now: float) -> float:
        good, total = self.counts(now)
        if total == 0:
            return 0.0
        return (total - good) / total


class _Tracker:
    __slots__ = ("objective", "fast", "slow", "state",
                 "fast_gauge", "slow_gauge", "state_gauge", "transitions")

    def __init__(self, objective: Objective) -> None:
        self.objective = objective
        self.fast = _Window(objective.fast_window)
        self.slow = _Window(objective.slow_window)
        self.state = STATE_OK
        self.fast_gauge = obs_metrics.gauge("slo.burn_rate", op=objective.op, window="fast")
        self.slow_gauge = obs_metrics.gauge("slo.burn_rate", op=objective.op, window="slow")
        self.state_gauge = obs_metrics.gauge("slo.alert_state", op=objective.op)
        self.transitions = obs_metrics.counter("slo.alert_transitions", op=objective.op)
        self.state_gauge.set(STATE_VALUES[STATE_OK])


class SLOEngine:
    """Burn-rate evaluation and alerting over a set of objectives."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        objectives: Iterable[Objective] = (),
    ) -> None:
        self.clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._trackers: dict[str, _Tracker] = {}
        # transitions observed while holding _lock, delivered to the
        # diagnosis plane only after release — a flight-recorder dump on a
        # page must never run (or deadlock) under the engine lock
        self._pending_transitions: list[dict] = []
        for objective in objectives:
            self.add_objective(objective)

    def add_objective(self, objective: Objective) -> None:
        with self._lock:
            if objective.op in self._trackers:
                raise ValueError(f"objective already declared for op {objective.op!r}")
            self._trackers[objective.op] = _Tracker(objective)

    def objectives(self) -> list[Objective]:
        with self._lock:
            return [tracker.objective for tracker in self._trackers.values()]

    def _tracker_for(self, op: str) -> Optional[_Tracker]:
        tracker = self._trackers.get(op)
        if tracker is None:
            tracker = self._trackers.get("*")
        return tracker

    # -- recording ---------------------------------------------------------

    def record(self, op: str, ok: bool, latency: float, now: Optional[float] = None) -> str:
        """Fold one dispatch outcome in and return the op's alert state.

        Ops with no matching objective (and no ``"*"`` fallback) are not
        tracked and report ``ok``.
        """
        with self._lock:
            tracker = self._tracker_for(op)
            if tracker is None:
                return STATE_OK
            if now is None:
                now = self.clock.epoch()
            good = ok and latency <= tracker.objective.latency_threshold
            tracker.fast.add(now, good)
            tracker.slow.add(now, good)
            state = self._evaluate_locked(tracker, now)
        self._flush_transitions()
        return state

    def _evaluate_locked(self, tracker: _Tracker, now: float) -> str:
        objective = tracker.objective
        budget = objective.error_budget
        fast_burn = tracker.fast.bad_fraction(now) / budget
        slow_burn = tracker.slow.bad_fraction(now) / budget
        tracker.fast_gauge.set(fast_burn)
        tracker.slow_gauge.set(slow_burn)
        if fast_burn >= objective.page_burn and slow_burn >= objective.page_burn:
            state = STATE_PAGE
        elif fast_burn >= objective.warn_burn and slow_burn >= objective.warn_burn:
            state = STATE_WARNING
        else:
            state = STATE_OK
        if state != tracker.state:
            previous, tracker.state = tracker.state, state
            tracker.state_gauge.set(STATE_VALUES[state])
            tracker.transitions.inc()
            obs_trace.add_event(
                "slo.transition",
                op=objective.op,
                previous=previous,
                state=state,
                burn_fast=round(fast_burn, 3),
                burn_slow=round(slow_burn, 3),
            )
            log = _log.warning if _SEVERITY[state] > _SEVERITY[previous] else _log.info
            log(
                "slo.transition",
                op=objective.op,
                previous=previous,
                state=state,
                burn_fast=fast_burn,
                burn_slow=slow_burn,
            )
            self._pending_transitions.append(
                {
                    "op": objective.op,
                    "previous": previous,
                    "state": state,
                    "burn_fast": round(fast_burn, 3),
                    "burn_slow": round(slow_burn, 3),
                }
            )
        return tracker.state

    def _flush_transitions(self) -> None:
        """Deliver queued transitions to the diagnosis plane (lock NOT
        held): entering page snapshots the flight recorder."""
        if not self._pending_transitions:
            return
        with self._lock:
            pending, self._pending_transitions = self._pending_transitions, []
        for transition in pending:
            try:
                from repro.obs import diag as obs_diag

                obs_diag.notify_slo_transition(**transition)
            except Exception:  # noqa: BLE001 - diagnostics never break SLO
                pass

    # -- evaluation / export ----------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> dict[str, str]:
        """Re-evaluate every objective against the current clock.

        Windows only roll forward when consulted, so a scrape (or the
        telemetry endpoint) calls this to let alerts clear during quiet
        periods with no traffic to trigger :meth:`record`.
        """
        with self._lock:
            if now is None:
                now = self.clock.epoch()
            states = {
                op: self._evaluate_locked(tracker, now)
                for op, tracker in self._trackers.items()
            }
        self._flush_transitions()
        return states

    def states(self) -> dict[str, str]:
        """Current alert state per objective op (freshly evaluated)."""
        return self.evaluate()

    def worst_state(self) -> str:
        states = self.evaluate().values()
        if STATE_PAGE in states:
            return STATE_PAGE
        if STATE_WARNING in states:
            return STATE_WARNING
        return STATE_OK

    def overload(self) -> bool:
        """True while any objective is paging — the admission-control
        signal the roadmap's front-end work sheds load on."""
        return STATE_PAGE in self.evaluate().values()

    def snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-able view: per-objective config, burns, counts and state."""
        self.evaluate(now)
        out: dict = {}
        with self._lock:
            if now is None:
                now = self.clock.epoch()
            for op, tracker in self._trackers.items():
                objective = tracker.objective
                fast_good, fast_total = tracker.fast.counts(now)
                slow_good, slow_total = tracker.slow.counts(now)
                out[op] = {
                    "state": tracker.state,
                    "target": objective.target,
                    "latency_threshold": objective.latency_threshold,
                    "burn_fast": tracker.fast_gauge.value,
                    "burn_slow": tracker.slow_gauge.value,
                    "fast_good": fast_good,
                    "fast_total": fast_total,
                    "slow_good": slow_good,
                    "slow_total": slow_total,
                }
        return out


def default_bank_objectives() -> tuple[Objective, ...]:
    """The bank's out-of-the-box objective: 99.9% of any op good within
    half a second. Callers with op-specific needs declare their own."""
    return (Objective(op="*", target=0.999, latency_threshold=0.5),)
