"""Per-principal usage metering — the GASA accounting loop, turned inward.

The paper's whole point (sec 2.1, 5.1) is metering who consumed what and
keeping a provable record. The bank itself is a consumed resource: every
authenticated principal spends bank CPU (op dispatch), wire bytes and
GridCurrency. :class:`UsageMeter` folds those into in-memory per-principal
accumulators on the dispatch path and, once per rollup period, persists
one ``usage_rollups`` row per active principal through the same WAL'd
database as the ledger — each row carrying a standard
:class:`~repro.rur.record.ResourceUsageRecord` blob (via
:func:`repro.rur.formats.to_blob`), so the bank's own consumption records
interoperate with every other RUR consumer in the codebase.

Rollup is opportunistic (checked on the record path against the injected
clock — no timer thread, so it works under a VirtualClock) and persists
only while the node believes it is the primary: a standby writing local
rows would desynchronize the replicated WAL, exactly like span rows.
Collisions on ``(Principal, PeriodStart)`` — a promoted standby rolling
the same period the dead primary already shipped — merge into the
existing row instead of erroring.

Memory is bounded twice over: live accumulators cap at
``max_live_principals`` (overflow folds into the ``(other)`` principal,
counted by ``usage.principals_capped``), and persisted rows evict
oldest-period-first past ``max_rows`` (counted by
``usage.rollups_evicted``).
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Optional

from repro.db.database import Database
from repro.db.query import eq
from repro.db.schema import Column, TableSchema
from repro.db.types import BigIntUnsigned, Blob, Float, VarChar
from repro.errors import IntegrityError
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.rur.formats import to_blob
from repro.rur.record import ResourceUsageRecord, UsageVector
from repro.util.gbtime import Clock
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = [
    "USAGE_TABLE",
    "usage_schema",
    "UsageMeter",
    "hot_operations",
    "UNTRACKED_OPS",
]

_log = get_logger("obs.usage")

USAGE_TABLE = "usage_rollups"

_W_PRINCIPAL = 128
_OVERFLOW_PRINCIPAL = "(other)"

#: Cluster-plumbing ops excluded from SLOs, usage metering and the hot-op
#: view: replication polls, telemetry scrapes and diagnosis-plane
#: collection are continuous background traffic between nodes (or
#: operators), not principal workload.
UNTRACKED_OPS = frozenset(
    {
        "replication_status",
        "replication_snapshot",
        "replication_fetch",
        "cluster_promote",
        "cluster_demote",
        "telemetry_snapshot",
        "diag_profile",
        "diag_flight_record",
        "shard_map",
        "shard_status",
        "shard_install",
        "shard_export",
        "shard_import",
        "shard_evict",
        "shard_apply",
        "shard_resolve",
    }
)


def usage_schema() -> TableSchema:
    """USAGE_ROLLUPS — one row per (principal, rollup period).

    Sums are first-class columns so ``top_principals`` can fold rows
    without decoding blobs; ``OpCounts`` (canonical JSON) and ``RUR``
    (tagged blob, sec 5.1 binary format) carry the detail.
    """
    return TableSchema(
        USAGE_TABLE,
        [
            Column.make("Principal", VarChar(_W_PRINCIPAL)),
            Column.make("PeriodStart", Float()),
            Column.make("PeriodEnd", Float()),
            Column.make("Ops", BigIntUnsigned()),
            Column.make("Errors", BigIntUnsigned()),
            Column.make("BytesIn", BigIntUnsigned()),
            Column.make("BytesOut", BigIntUnsigned()),
            Column.make("LatencySum", Float()),
            Column.make("CurrencyMoved", Float()),
            Column.make("OpCounts", Blob(), default=b""),
            Column.make("RUR", Blob(), default=b""),
        ],
        primary_key=["Principal", "PeriodStart"],
        indexes=["PeriodStart"],
    )


class _Accum:
    __slots__ = ("ops", "errors", "bytes_in", "bytes_out", "latency_sum",
                 "currency_moved", "op_counts")

    def __init__(self) -> None:
        self.ops = 0
        self.errors = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.latency_sum = 0.0
        self.currency_moved = 0.0
        self.op_counts: dict[str, int] = {}


class UsageMeter:
    """Dispatch-path accumulation + periodic WAL'd per-principal rollups."""

    def __init__(
        self,
        db: Database,
        clock: Clock,
        bank_subject: str = "gridbank",
        host: str = "",
        period: float = 3600.0,
        max_rows: int = 50_000,
        max_live_principals: int = 10_000,
        should_persist: Optional[Callable[[], bool]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("rollup period must be positive")
        self.db = db
        self.clock = clock
        self.bank_subject = bank_subject
        self.host = host
        self.period = period
        self.max_rows = max_rows
        self.max_live_principals = max_live_principals
        self.should_persist = should_persist
        self._lock = threading.Lock()
        self._live: dict[str, _Accum] = {}
        self._period_start = self._quantize(clock.epoch())
        if USAGE_TABLE not in db.table_names():
            db.create_table(usage_schema())

    def _quantize(self, epoch: float) -> float:
        return math.floor(epoch / self.period) * self.period

    def _accum(self, principal: str) -> _Accum:
        # caller holds self._lock
        accum = self._live.get(principal)
        if accum is None:
            if len(self._live) >= self.max_live_principals:
                obs_metrics.counter("usage.principals_capped").inc()
                return self._live.setdefault(_OVERFLOW_PRINCIPAL, _Accum())
            accum = self._live[principal] = _Accum()
        return accum

    # -- record path -------------------------------------------------------

    def record_op(
        self,
        principal: str,
        op: str,
        ok: bool,
        latency_seconds: float,
        currency_moved: float = 0.0,
    ) -> None:
        # roll a completed period BEFORE folding this event in: an op
        # past the boundary belongs to the new period, not the one it
        # just closed
        self.maybe_rollup()
        with self._lock:
            accum = self._accum(principal)
            accum.ops += 1
            if not ok:
                accum.errors += 1
            accum.latency_sum += max(0.0, latency_seconds)
            accum.currency_moved += currency_moved
            accum.op_counts[op] = accum.op_counts.get(op, 0) + 1

    def record_bytes(self, principal: str, bytes_in: int, bytes_out: int) -> None:
        """Wire accounting hook (the RPC endpoint calls this per request)."""
        with self._lock:
            accum = self._accum(principal)
            accum.bytes_in += int(bytes_in)
            accum.bytes_out += int(bytes_out)

    # -- rollup ------------------------------------------------------------

    def maybe_rollup(self, force: bool = False) -> int:
        """Persist the completed period's accumulators, if any are due.

        A no-op while a database transaction is open (the next record
        outside one retries) and while ``should_persist`` says this node
        must not write (a standby); in the latter case due accumulators
        are *discarded*, counted by ``usage.rollups_skipped`` — their
        rows arrive through replication from the primary instead.
        """
        now = self.clock.epoch()
        if not force and now < self._period_start + self.period:
            return 0
        if self.db.in_transaction:
            return 0
        with self._lock:
            if not force and now < self._period_start + self.period:
                return 0
            live, self._live = self._live, {}
            period_start, self._period_start = self._period_start, self._quantize(now)
            period_end = max(now, period_start)
        if not live:
            return 0
        if self.should_persist is not None and not self.should_persist():
            obs_metrics.counter("usage.rollups_skipped").inc(len(live))
            return 0
        written = 0
        for principal, accum in live.items():
            self._persist(principal, period_start, period_end, accum)
            written += 1
        self._evict_persisted()
        self._export_top_gauges()
        _log.info("usage.rollup", principals=written,
                  period_start=period_start, period_end=period_end)
        return written

    def _rur_blob(self, principal: str, period_start: float, period_end: float,
                  ops: int, errors: int, bytes_in: int, bytes_out: int,
                  latency_sum: float, currency_moved: float) -> bytes:
        record = ResourceUsageRecord(
            user_certificate_name=principal,
            user_host="",
            job_id=f"usage:{principal}:{int(period_start)}",
            application_name="gridbank.usage_rollup",
            job_start_epoch=period_start,
            job_end_epoch=period_end,
            resource_certificate_name=self.bank_subject or "gridbank",
            resource_host=self.host,
            usage=UsageVector(
                cpu_time_s=max(0.0, latency_sum),
                network_mb=max(0, bytes_in + bytes_out) / 1e6,
                wall_clock_s=max(0.0, period_end - period_start),
            ),
        )
        return to_blob(record)

    def _persist(self, principal: str, period_start: float, period_end: float,
                 accum: _Accum) -> None:
        principal = principal[:_W_PRINCIPAL]
        row = {
            "Principal": principal,
            "PeriodStart": period_start,
            "PeriodEnd": period_end,
            "Ops": accum.ops,
            "Errors": accum.errors,
            "BytesIn": accum.bytes_in,
            "BytesOut": accum.bytes_out,
            "LatencySum": accum.latency_sum,
            "CurrencyMoved": accum.currency_moved,
            "OpCounts": canonical_dumps(accum.op_counts),
            "RUR": self._rur_blob(
                principal, period_start, period_end, accum.ops, accum.errors,
                accum.bytes_in, accum.bytes_out, accum.latency_sum,
                accum.currency_moved,
            ),
        }
        try:
            self.db.insert(USAGE_TABLE, row)
        except IntegrityError:
            self._merge_existing(principal, period_start, period_end, accum)

    def _merge_existing(self, principal: str, period_start: float,
                        period_end: float, accum: _Accum) -> None:
        rows = self.db.select(
            USAGE_TABLE, [eq("Principal", principal), eq("PeriodStart", period_start)]
        )
        if not rows:  # pragma: no cover - insert raced a delete
            return
        existing = rows[0]
        op_counts = canonical_loads(existing["OpCounts"]) if existing["OpCounts"] else {}
        for op, count in accum.op_counts.items():
            op_counts[op] = op_counts.get(op, 0) + count
        merged = {
            "PeriodEnd": max(float(existing["PeriodEnd"]), period_end),
            "Ops": existing["Ops"] + accum.ops,
            "Errors": existing["Errors"] + accum.errors,
            "BytesIn": existing["BytesIn"] + accum.bytes_in,
            "BytesOut": existing["BytesOut"] + accum.bytes_out,
            "LatencySum": existing["LatencySum"] + accum.latency_sum,
            "CurrencyMoved": existing["CurrencyMoved"] + accum.currency_moved,
            "OpCounts": canonical_dumps(op_counts),
        }
        merged["RUR"] = self._rur_blob(
            principal, period_start, merged["PeriodEnd"], merged["Ops"],
            merged["Errors"], merged["BytesIn"], merged["BytesOut"],
            merged["LatencySum"], merged["CurrencyMoved"],
        )
        self.db.update(USAGE_TABLE, (principal, period_start), merged)

    def _evict_persisted(self) -> None:
        count = self.db.count(USAGE_TABLE)
        if count <= self.max_rows:
            return
        victims = self.db.select(
            USAGE_TABLE, order_by="PeriodStart", limit=count - self.max_rows
        )
        for row in victims:
            self.db.delete(USAGE_TABLE, (row["Principal"], row["PeriodStart"]))
        if victims:
            obs_metrics.counter("usage.rollups_evicted").inc(len(victims))

    def _export_top_gauges(self, k: int = 5) -> None:
        # bounded cardinality: only the current top-K principals become
        # label values (full DNs — the exporter escapes them)
        for entry in self.top_principals(k, include_live=False):
            principal = entry["principal"]
            obs_metrics.gauge("usage.principal.ops", principal=principal).set(entry["ops"])
            obs_metrics.gauge(
                "usage.principal.currency_moved", principal=principal
            ).set(entry["currency_moved"])

    # -- query side --------------------------------------------------------

    def top_principals(self, k: int = 5, include_live: bool = True) -> list[dict]:
        """Top-*k* principals by op count, persisted rows + live period."""
        totals: dict[str, dict] = {}

        def fold(principal: str, ops: int, errors: int, bytes_in: int,
                 bytes_out: int, latency_sum: float, currency_moved: float) -> None:
            entry = totals.setdefault(
                principal,
                {"principal": principal, "ops": 0, "errors": 0, "bytes_in": 0,
                 "bytes_out": 0, "latency_seconds": 0.0, "currency_moved": 0.0},
            )
            entry["ops"] += ops
            entry["errors"] += errors
            entry["bytes_in"] += bytes_in
            entry["bytes_out"] += bytes_out
            entry["latency_seconds"] += latency_sum
            entry["currency_moved"] += currency_moved

        for row in self.db.table(USAGE_TABLE).all_rows():
            fold(row["Principal"], row["Ops"], row["Errors"], row["BytesIn"],
                 row["BytesOut"], row["LatencySum"], row["CurrencyMoved"])
        if include_live:
            with self._lock:
                for principal, accum in self._live.items():
                    fold(principal, accum.ops, accum.errors, accum.bytes_in,
                         accum.bytes_out, accum.latency_sum, accum.currency_moved)
        ranked = sorted(totals.values(), key=lambda e: (-e["ops"], e["principal"]))
        return ranked[: max(0, k)]

    def snapshot(self, k: int = 5) -> dict:
        """JSON-able view for the telemetry endpoint / healthz."""
        with self._lock:
            live = len(self._live)
            period_start = self._period_start
        return {
            "period_seconds": self.period,
            "period_start": period_start,
            "live_principals": live,
            "persisted_rows": self.db.count(USAGE_TABLE),
            "top": self.top_principals(k),
        }

    def rescan(self) -> None:
        """Re-anchor after recovery/promotion: replicated rows replaced
        the table contents underneath us; live accumulators restart."""
        with self._lock:
            self._live = {}
            self._period_start = self._quantize(self.clock.epoch())


def hot_operations(snapshot: dict, limit: int = 5) -> list[dict]:
    """Rank bank ops by request count from a metrics snapshot.

    Reads the ``bank.op.<op>.requests`` / ``.errors`` counters and the
    ``.latency_seconds`` histogram summaries the dispatch wrapper
    maintains; cluster-plumbing ops (:data:`UNTRACKED_OPS`) are skipped.
    """
    ops: dict[str, dict] = {}

    def entry(op: str) -> dict:
        return ops.setdefault(
            op, {"op": op, "requests": 0, "errors": 0, "p95_seconds": 0.0}
        )

    for key, value in snapshot.get("counters", {}).items():
        if not key.startswith("bank.op."):
            continue
        if key.endswith(".requests"):
            op = key[len("bank.op."):-len(".requests")]
            if op not in UNTRACKED_OPS:
                entry(op)["requests"] = int(value)
        elif key.endswith(".errors"):
            op = key[len("bank.op."):-len(".errors")]
            if op not in UNTRACKED_OPS:
                entry(op)["errors"] = int(value)
    for key, summary in snapshot.get("histograms", {}).items():
        if key.startswith("bank.op.") and key.endswith(".latency_seconds"):
            op = key[len("bank.op."):-len(".latency_seconds")]
            if op not in UNTRACKED_OPS:
                entry(op)["p95_seconds"] = float(summary.get("p95", 0.0))
    ranked = sorted(ops.values(), key=lambda e: (-e["requests"], e["op"]))
    return [e for e in ranked if e["requests"] > 0][: max(0, limit)]
