"""Structured logging on top of stdlib :mod:`logging`.

Every component gets a child of the ``gridbank`` root logger
(``gridbank.bank.server``, ``gridbank.net.rpc``, ...) wrapped in an
:class:`ObsLogger` whose methods take an *event* name plus key=value
fields::

    log = get_logger("bank.server")
    log.info("op.dispatch", op="direct_transfer", duration=0.0021)

The active trace/span IDs (:mod:`repro.obs.trace`) are attached to every
record automatically, so one ``grep trace_id=...`` reconstructs a request
across client, server and ledger. Output is either aligned ``key=value``
text (default) or JSON lines (:func:`configure` with ``json_lines=True``,
or ``GRIDBANK_LOG_FORMAT=json`` in the environment).

The library itself never configures a handler — importing repro stays
silent (a ``NullHandler`` swallows records until :func:`configure` runs).
Tests assert on log output through :class:`CapturingHandler` /
:func:`capture`.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import sys
from collections import deque
from typing import Iterator, Optional, TextIO

from repro.obs import trace

__all__ = [
    "ROOT_LOGGER_NAME",
    "ObsLogger",
    "get_logger",
    "configure",
    "configure_from_env",
    "KeyValueFormatter",
    "JsonLineFormatter",
    "CapturingHandler",
    "capture",
    "RingHandler",
    "attach_ring",
    "detach_ring",
]

ROOT_LOGGER_NAME = "gridbank"

_root = logging.getLogger(ROOT_LOGGER_NAME)
_root.addHandler(logging.NullHandler())


def _render_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bytes):
        return value.hex()
    text = str(value)
    if any(ch.isspace() for ch in text) or "=" in text or not text:
        return json.dumps(text)
    return text


class ObsLogger:
    """Thin structured facade over one stdlib logger."""

    __slots__ = ("_logger", "component")

    def __init__(self, component: str) -> None:
        self.component = component
        self._logger = logging.getLogger(f"{ROOT_LOGGER_NAME}.{component}")

    def _log(self, level: int, event: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        span = trace.current()
        if span is not None:
            fields.setdefault("trace_id", span.trace_id)
            fields.setdefault("span_id", span.span_id)
        self._logger.log(level, event, extra={"obs_event": event, "obs_fields": fields})

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)


def get_logger(component: str) -> ObsLogger:
    """Structured logger for *component* (e.g. ``"bank.server"``)."""
    return ObsLogger(component)


# -- formatters --------------------------------------------------------------


def _record_fields(record: logging.LogRecord) -> dict:
    fields = getattr(record, "obs_fields", None)
    return dict(fields) if isinstance(fields, dict) else {}


class KeyValueFormatter(logging.Formatter):
    """``2026-08-06T10:00:00 INFO gridbank.bank.server op.dispatch op=... trace_id=...``"""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        event = getattr(record, "obs_event", record.getMessage())
        parts = [
            self.formatTime(record, self.default_time_format),
            record.levelname,
            record.name,
            event,
        ]
        for key, value in _record_fields(record).items():
            parts.append(f"{key}={_render_value(value)}")
        return " ".join(parts)


class JsonLineFormatter(logging.Formatter):
    """One JSON object per line; field values stringified when needed."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "event": getattr(record, "obs_event", record.getMessage()),
        }
        for key, value in _record_fields(record).items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                payload[key] = value
            elif isinstance(value, bytes):
                payload[key] = value.hex()
            else:
                payload[key] = str(value)
        return json.dumps(payload, sort_keys=False)


# -- process-level configuration ---------------------------------------------

_configured_handler: Optional[logging.Handler] = None


def configure(
    level: int = logging.INFO,
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Install (or replace) the process-wide gridbank log handler."""
    global _configured_handler
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter() if json_lines else KeyValueFormatter())
    if _configured_handler is not None:
        _root.removeHandler(_configured_handler)
    _root.addHandler(handler)
    _root.setLevel(level)
    _configured_handler = handler
    return handler


def configure_from_env() -> Optional[logging.Handler]:
    """Configure from ``GRIDBANK_LOG_LEVEL`` / ``GRIDBANK_LOG_FORMAT``.

    Unset environment means no handler is installed (library stays
    silent). ``GRIDBANK_LOG_LEVEL=debug GRIDBANK_LOG_FORMAT=json`` gives
    JSON lines on stderr.
    """
    level_name = os.environ.get("GRIDBANK_LOG_LEVEL", "")
    format_name = os.environ.get("GRIDBANK_LOG_FORMAT", "")
    if not level_name and not format_name:
        return None
    level = getattr(logging, level_name.upper(), logging.INFO) if level_name else logging.INFO
    return configure(level=level, json_lines=format_name.lower() == "json")


# -- flight-recorder support --------------------------------------------------


class RingHandler(logging.Handler):
    """Bounded in-memory ring of recent log records (flight recorder).

    Records are reduced to JSON-ready dicts at emit time — a LogRecord
    holds references (args, exc_info) that would pin memory for the life
    of the ring. Appending to a ``deque(maxlen=N)`` is O(1) and
    thread-safe, so ``emit`` adds microseconds to a log call.
    """

    def __init__(self, capacity: int = 512, level: int = logging.INFO) -> None:
        super().__init__(level)
        self._ring: deque[dict] = deque(maxlen=capacity)

    def emit(self, record: logging.LogRecord) -> None:
        try:
            entry = {
                "epoch": record.created,
                "level": record.levelname,
                "logger": record.name,
                "event": getattr(record, "obs_event", record.getMessage()),
            }
            for key, value in _record_fields(record).items():
                if isinstance(value, (str, int, float, bool)) or value is None:
                    entry[key] = value
                elif isinstance(value, bytes):
                    entry[key] = value.hex()
                else:
                    entry[key] = str(value)
            self._ring.append(entry)
        except Exception:  # noqa: BLE001 - the recorder never breaks logging
            pass

    def tail(self, limit: int = 0) -> list[dict]:
        """Most recent entries, oldest first (all of them when limit<=0)."""
        entries = list(self._ring)
        return entries[-limit:] if limit > 0 else entries

    def clear(self) -> None:
        self._ring.clear()


def attach_ring(handler: RingHandler) -> int:
    """Attach *handler* to the gridbank root; returns the previous root
    level so :func:`detach_ring` can restore it. The root level is lowered
    to the handler's own level so INFO-grade incident breadcrumbs reach
    the ring even when no console handler was ever configured."""
    previous_level = _root.level
    _root.addHandler(handler)
    if _root.level == logging.NOTSET or _root.level > handler.level:
        _root.setLevel(handler.level)
    return previous_level


def detach_ring(handler: RingHandler, previous_level: int) -> None:
    _root.removeHandler(handler)
    _root.setLevel(previous_level)


# -- test support ------------------------------------------------------------


class CapturingHandler(logging.Handler):
    """Collects records (with their structured fields) for assertions."""

    def __init__(self, level: int = logging.DEBUG) -> None:
        super().__init__(level)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)

    def events(self) -> list[str]:
        return [getattr(r, "obs_event", r.getMessage()) for r in self.records]

    def find(self, event: str) -> list[dict]:
        """Field dicts of every captured record whose event matches."""
        return [
            _record_fields(r)
            for r in self.records
            if getattr(r, "obs_event", r.getMessage()) == event
        ]


@contextlib.contextmanager
def capture(level: int = logging.DEBUG) -> Iterator[CapturingHandler]:
    """Attach a :class:`CapturingHandler` to the gridbank root for a block."""
    handler = CapturingHandler(level)
    previous_level = _root.level
    _root.addHandler(handler)
    if _root.level == logging.NOTSET or _root.level > level:
        _root.setLevel(level)
    try:
        yield handler
    finally:
        _root.removeHandler(handler)
        _root.setLevel(previous_level)
