"""Prometheus-text exporter over the metrics registry.

:func:`render_prometheus` turns a :func:`repro.obs.metrics.snapshot` dict
into the Prometheus text exposition format (version 0.0.4): counters and
gauges as their own types, histograms as native ``_bucket{le=...}``
series (the registry's snapshot carries cumulative bucket pairs). A
snapshot whose histogram summaries lack bucket data — hand-built fixtures
from before the buckets were exposed — falls back to a *summary* with
``{quantile="..."}`` series estimated from p50/p95/p99.

Registry names like ``rpc.breaker.state{breaker=bank}`` are split back
into a metric name and labels: dots become underscores (Prometheus names
cannot contain ``.``), label values are quoted and escaped.

Two sidecars poll the registry so external collectors need no hook into
the serving loop:

* :class:`FileExporter` — atomically rewrites a textfile every interval
  (the node-exporter "textfile collector" pattern).
* :class:`HTTPExporter` — a tiny stdlib HTTP server answering ``GET
  /metrics``; scrape it like any Prometheus target.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs import metrics as obs_metrics

__all__ = [
    "render_prometheus",
    "FileExporter",
    "HTTPExporter",
    "CONTENT_TYPE",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """``name{k=v,...}`` (the registry's instrument key) -> (name, labels).

    Label *values* may themselves contain key syntax — principal DNs are
    ``CN=...,O=...`` — which the registry backslash-escapes when it builds
    the key; this parser honors those escapes (``\\X`` means literal
    ``X``), so DN-valued labels round-trip intact.
    """
    if "{" not in key or not key.endswith("}"):
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    label: list[str] = []
    value: list[str] = []
    target = label
    chars = iter(rest[:-1])
    for ch in chars:
        if ch == "\\":
            target.append(next(chars, ""))
        elif ch == "=" and target is label:
            target = value
        elif ch == ",":
            if label:
                labels["".join(label)] = "".join(value)
            label, value = [], []
            target = label
        else:
            target.append(ch)
    if label:
        labels["".join(label)] = "".join(value)
    return name, labels


def _prom_name(name: str) -> str:
    cleaned = _NAME_OK.sub("_", name.replace(".", "_"))
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_prom_name(k)}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(data: Optional[dict] = None, exemplars: bool = False) -> str:
    """Render *data* (default: a fresh registry snapshot) as Prometheus
    text. Series sharing a base name are grouped under one TYPE line.

    With ``exemplars=True``, ``_bucket`` lines whose histogram summary
    carries trace-ID exemplars get an OpenMetrics-style annotation
    (``... # {trace_id="..."} 1``). Off by default — the plain 0.0.4
    output stays byte-identical for strict parsers.
    """
    if data is None:
        data = obs_metrics.snapshot()
    lines: list[str] = []

    def section(entries: dict, prom_type: str) -> None:
        grouped: dict[str, list[tuple[dict, object]]] = {}
        for key in sorted(entries):
            name, labels = _split_key(key)
            grouped.setdefault(_prom_name(name), []).append((labels, entries[key]))
        for name in sorted(grouped):
            lines.append(f"# TYPE {name} {prom_type}")
            for labels, value in grouped[name]:
                lines.append(f"{name}{_labels_text(labels)} {_format_value(value)}")

    section(data.get("counters", {}), "counter")
    section(data.get("gauges", {}), "gauge")

    histograms = data.get("histograms", {})
    grouped: dict[str, list[tuple[dict, dict]]] = {}
    for key in sorted(histograms):
        name, labels = _split_key(key)
        grouped.setdefault(_prom_name(name), []).append((labels, histograms[key]))
    for name in sorted(grouped):
        entries = grouped[name]
        if all("buckets" in summary for _, summary in entries):
            # registry snapshots carry cumulative bucket pairs — render a
            # native Prometheus histogram (``_bucket{le=...}`` series)
            lines.append(f"# TYPE {name} histogram")
            for labels, summary in entries:
                exemplar_by_bound = (
                    {bound if isinstance(bound, str) else float(bound): trace_id
                     for bound, trace_id in summary.get("exemplars", [])}
                    if exemplars else {}
                )
                for bound, cumulative in summary["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = (
                        bound if isinstance(bound, str) else _format_value(float(bound))
                    )
                    line = (
                        f"{name}_bucket{_labels_text(bucket_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                    trace_id = exemplar_by_bound.get(
                        bound if isinstance(bound, str) else float(bound)
                    )
                    if trace_id:
                        line += f' # {{trace_id="{_escape_label(trace_id)}"}} 1'
                    lines.append(line)
                suffix = _labels_text(labels)
                lines.append(f"{name}_sum{suffix} {_format_value(summary.get('sum', 0.0))}")
                lines.append(f"{name}_count{suffix} {_format_value(summary.get('count', 0))}")
            continue
        # hand-built snapshots without bucket data: quantile summary
        lines.append(f"# TYPE {name} summary")
        for labels, summary in entries:
            for quantile, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                quantile_labels = dict(labels)
                quantile_labels["quantile"] = quantile
                lines.append(
                    f"{name}{_labels_text(quantile_labels)} "
                    f"{_format_value(summary.get(field, 0.0))}"
                )
            suffix = _labels_text(labels)
            lines.append(f"{name}_sum{suffix} {_format_value(summary.get('sum', 0.0))}")
            lines.append(f"{name}_count{suffix} {_format_value(summary.get('count', 0))}")

    return "\n".join(lines) + "\n"


class FileExporter:
    """Polling sidecar rewriting a Prometheus textfile every interval.

    The write is atomic (temp file + replace), so a collector reading the
    path never sees a torn exposition. ``write_once()`` is exposed for
    one-shot use (the CLI's ``metrics export --out``).
    """

    def __init__(
        self,
        path: Union[str, Path],
        interval: float = 5.0,
        snapshot_fn: Callable[[], dict] = obs_metrics.snapshot,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.path = Path(path)
        self.interval = interval
        self._snapshot_fn = snapshot_fn
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def write_once(self) -> Path:
        text = render_prometheus(self._snapshot_fn())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(self.path)
        return self.path

    def start(self) -> "FileExporter":
        if self._thread is not None:
            raise RuntimeError("exporter already started")
        self.write_once()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.write_once()

        self._thread = threading.Thread(target=loop, name="gridbank-metrics-file", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # final write so the file reflects the last state at shutdown
        self.write_once()


class HTTPExporter:
    """Scrape endpoint: ``GET /metrics`` renders a fresh snapshot.

    Binds ``127.0.0.1`` by default (operational telemetry is not part of
    the authenticated GSI surface — do not expose it beyond the host).
    Pass ``port=0`` to let the OS choose; the bound port is ``self.port``
    after :meth:`start`.

    When *health_fn* is provided, ``GET /healthz`` serves its dict as
    JSON for load-balancer readiness checks — status 200 while the
    payload's ``ok`` field (default True) holds, 503 otherwise, so an LB
    can drop a paging or badly-lagged node without parsing the body.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        snapshot_fn: Callable[[], dict] = obs_metrics.snapshot,
        health_fn: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._snapshot_fn = snapshot_fn
        self._health_fn = health_fn
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HTTPExporter":
        if self._server is not None:
            raise RuntimeError("exporter already started")
        snapshot_fn = self._snapshot_fn
        health_fn = self._health_fn

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/healthz":
                    if health_fn is None:
                        self.send_response(404)
                        self.end_headers()
                        return
                    try:
                        payload = health_fn()
                        status = 200 if payload.get("ok", True) else 503
                        body = json.dumps(payload, sort_keys=True).encode("utf-8")
                    except Exception as exc:  # health must never crash the listener
                        status = 503
                        body = json.dumps(
                            {"ok": False, "error": type(exc).__name__}
                        ).encode("utf-8")
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if path not in ("", "/metrics"):
                    self.send_response(404)
                    self.end_headers()
                    return
                body = render_prometheus(snapshot_fn()).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes are not worth a log line each

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="gridbank-metrics-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
