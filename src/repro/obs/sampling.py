"""Adaptive trace sampling — keep the spans you'd grep for, drop the rest.

PR 3 made every span a durable SPAN row; under a transfer storm that
means the span store's eviction quietly destroys audit history at line
rate. This module sits between :func:`repro.obs.trace.add_sink` and a
durable sink and decides, per finished span, whether it is worth a row:

* **Head sampling** — a per-op keep rate (``op_rates`` with a
  ``default_rate`` fallback). The decision hashes the *trace id*, so it
  is deterministic (replayable tests, no RNG) and all spans of one trace
  share their fate per op — a kept trace is kept whole for every op at
  or above its rate.
* **Tail retention** — overrides the head decision to always keep error
  spans, and spans slower than a configurable percentile of their op's
  own recent latency (estimated from a per-op fixed-bucket histogram;
  until ``min_samples`` spans have been seen the percentile is unknown
  and only the static ``slow_threshold`` floor, if configured, applies).

Dropped spans count into ``obs.spans_sampled_out``; kept spans count
into ``obs.spans_retained{reason=head|error|slow}``, so the effective
drop rate is always observable. :meth:`SamplingSpanSink.config` is what
``gridbank trace`` prints as "the sampling config in effect".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.hashes import sha256
from repro.obs import metrics as obs_metrics

__all__ = ["SamplingPolicy", "SamplingSpanSink"]

_BANK_PREFIX = "bank.op."


def _op_of(name: str) -> str:
    """Span name to the op key rates are declared under."""
    if name.startswith(_BANK_PREFIX):
        return name[len(_BANK_PREFIX):]
    return name


@dataclass(frozen=True)
class SamplingPolicy:
    """Declarative sampling knobs (everything the sink needs to decide)."""

    default_rate: float = 1.0
    op_rates: dict = field(default_factory=dict)
    keep_errors: bool = True
    slow_percentile: float = 0.95
    slow_threshold: Optional[float] = None  # static floor in seconds
    min_samples: int = 50

    def __post_init__(self) -> None:
        for op, rate in dict(self.op_rates).items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"sampling rate for {op!r} must be in [0, 1]")
        if not 0.0 <= self.default_rate <= 1.0:
            raise ValueError("default_rate must be in [0, 1]")
        if not 0.0 < self.slow_percentile < 1.0:
            raise ValueError("slow_percentile must be in (0, 1)")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    def rate_for(self, op: str) -> float:
        return float(self.op_rates.get(op, self.default_rate))

    def config(self) -> dict:
        return {
            "default_rate": self.default_rate,
            "op_rates": {op: float(rate) for op, rate in sorted(self.op_rates.items())},
            "keep_errors": self.keep_errors,
            "slow_percentile": self.slow_percentile,
            "slow_threshold": self.slow_threshold,
            "min_samples": self.min_samples,
        }


class SamplingSpanSink:
    """Span sink decorator applying a :class:`SamplingPolicy` to *inner*.

    Plugs into :func:`repro.obs.trace.add_sink` like any sink. The slow
    estimators are private :class:`~repro.obs.metrics.Histogram`
    instances (not registry instruments): the threshold must follow THIS
    sink's traffic, and a benchmark's registry reset must not blind it.
    """

    def __init__(self, inner: Callable[[dict], None], policy: Optional[SamplingPolicy] = None) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else SamplingPolicy()
        self._lock = threading.Lock()
        self._estimators: dict[str, obs_metrics.Histogram] = {}
        self._sampled_out = obs_metrics.counter("obs.spans_sampled_out")

    # -- decision ----------------------------------------------------------

    def _estimator(self, op: str) -> obs_metrics.Histogram:
        estimator = self._estimators.get(op)
        if estimator is None:
            with self._lock:
                estimator = self._estimators.get(op)
                if estimator is None:
                    estimator = self._estimators[op] = obs_metrics.Histogram(
                        f"sampling.latency.{op}"
                    )
        return estimator

    def slow_threshold_for(self, op: str) -> Optional[float]:
        """The duration above which a span of *op* is tail-retained now.

        The static ``slow_threshold`` wins when configured; otherwise the
        learned percentile once the estimator has warmed up, else None.
        """
        policy = self.policy
        if policy.slow_threshold is not None:
            return policy.slow_threshold
        estimator = self._estimators.get(op)
        if estimator is None or estimator.count < policy.min_samples:
            return None
        threshold = estimator.percentile(policy.slow_percentile)
        # an all-fast op estimates a ~0 percentile; "slower than 0" would
        # tail-retain every span and defeat the head rate entirely
        if threshold <= 0.0:
            return None
        return threshold

    @staticmethod
    def _head_keep(trace_id: str, rate: float) -> bool:
        if rate >= 1.0:
            return True
        if rate <= 0.0 or not trace_id:
            return False
        digest = sha256(trace_id)
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        return fraction < rate

    def decide(self, record: dict) -> tuple[bool, str]:
        """(keep, reason) for one span record; advances the estimator."""
        op = _op_of(str(record.get("name", "")))
        duration = float(record.get("duration_seconds", 0.0))
        # read the threshold BEFORE folding this span in: the decision
        # depends only on prior state, so replaying the same record
        # stream through a fresh sink reproduces the same decisions
        threshold = self.slow_threshold_for(op)
        self._estimator(op).observe(duration)
        if self.policy.keep_errors and str(record.get("status", "ok")) != "ok":
            return True, "error"
        if threshold is not None and duration >= threshold:
            return True, "slow"
        if self._head_keep(str(record.get("trace_id", "")), self.policy.rate_for(op)):
            return True, "head"
        return False, ""

    # -- sink protocol -----------------------------------------------------

    def __call__(self, record: dict) -> None:
        keep, reason = self.decide(record)
        if not keep:
            self._sampled_out.inc()
            return
        obs_metrics.counter("obs.spans_retained", reason=reason).inc()
        self.inner(record)

    def config(self) -> dict:
        """The policy plus the live per-op slow thresholds (for display)."""
        out = self.policy.config()
        with self._lock:
            ops = list(self._estimators)
        out["slow_thresholds"] = {
            op: self.slow_threshold_for(op) for op in sorted(ops)
        }
        return out
