"""Trace propagation — one trace ID per request path, spans per hop.

A :class:`SpanContext` names one unit of work: the ``trace_id`` is shared
by every hop of a request (client call, RPC dispatch, bank operation,
ledger write), each hop gets its own ``span_id``, and ``parent_id`` links
a server span back to the client span that caused it. The active span
lives in a :mod:`contextvars` context variable, so it follows the work
within a thread (each TCP connection is served by one thread) without any
explicit plumbing; the obs logger and the bank's TRANSACTION/TRANSFER
writers read it implicitly.

IDs come from explicitly-seeded :class:`random.Random` generators (the
library-wide determinism rule — see :mod:`repro.util.ids`); callers that
do not care pass ``rng=None`` and get a process-local generator.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.util.ids import random_token

__all__ = [
    "SpanContext",
    "new_trace_id",
    "new_span_id",
    "current",
    "current_trace_id",
    "activate",
    "child_span",
    "to_wire",
    "from_wire",
]

_TRACE_BYTES = 8  # 16 hex chars
_SPAN_BYTES = 4  # 8 hex chars

_fallback_rng = random.Random()


@dataclass(frozen=True)
class SpanContext:
    """Identity of one unit of work within a trace."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    def child(self, rng: Optional[random.Random] = None) -> "SpanContext":
        """A new span in the same trace, parented to this one."""
        return SpanContext(trace_id=self.trace_id, span_id=new_span_id(rng), parent_id=self.span_id)


_current: contextvars.ContextVar[Optional[SpanContext]] = contextvars.ContextVar(
    "gridbank_active_span", default=None
)


def new_trace_id(rng: Optional[random.Random] = None) -> str:
    return random_token(rng if rng is not None else _fallback_rng, nbytes=_TRACE_BYTES)


def new_span_id(rng: Optional[random.Random] = None) -> str:
    return random_token(rng if rng is not None else _fallback_rng, nbytes=_SPAN_BYTES)


def current() -> Optional[SpanContext]:
    """The span active in this execution context, if any."""
    return _current.get()


def current_trace_id() -> str:
    """Trace ID of the active span, or ``""`` outside any trace."""
    span = _current.get()
    return span.trace_id if span is not None else ""


@contextlib.contextmanager
def activate(span: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Make *span* the active span for the duration of the block."""
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


def child_span(rng: Optional[random.Random] = None) -> SpanContext:
    """A span continuing the active trace, or rooting a fresh one."""
    parent = _current.get()
    if parent is not None:
        return parent.child(rng)
    return SpanContext(trace_id=new_trace_id(rng), span_id=new_span_id(rng))


# -- wire form (the RPC envelope's ``trace`` field) --------------------------


def to_wire(span: SpanContext) -> dict:
    wire = {"trace_id": span.trace_id, "span_id": span.span_id}
    if span.parent_id:
        wire["parent_id"] = span.parent_id
    return wire


def from_wire(wire: object) -> Optional[SpanContext]:
    """Parse an envelope ``trace`` field; tolerant of absence/malformation
    (tracing must never break the protocol)."""
    if not isinstance(wire, dict):
        return None
    trace_id = wire.get("trace_id")
    span_id = wire.get("span_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if not isinstance(span_id, str) or not span_id:
        return None
    parent_id = wire.get("parent_id", "")
    if not isinstance(parent_id, str):
        parent_id = ""
    return SpanContext(trace_id=trace_id, span_id=span_id, parent_id=parent_id)
