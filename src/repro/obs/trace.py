"""Trace propagation — one trace ID per request path, spans per hop.

A :class:`SpanContext` names one unit of work: the ``trace_id`` is shared
by every hop of a request (client call, RPC dispatch, bank operation,
ledger write), each hop gets its own ``span_id``, and ``parent_id`` links
a server span back to the client span that caused it. The active span
lives in a :mod:`contextvars` context variable, so it follows the work
within a thread (each TCP connection is served by one thread) without any
explicit plumbing; the obs logger and the bank's TRANSACTION/TRANSFER
writers read it implicitly.

On top of pure context propagation sits *span recording*: the
:func:`span` context manager times a unit of work, collects point-in-time
events (:func:`add_event` — retry attempts, breaker transitions), and on
close flushes a plain-dict record to every registered sink
(:func:`add_sink`). Sinks are how spans become durable — the bank's
:class:`~repro.obs.store.SpanStore` persists them as SPAN rows in the
WAL'd database, and :class:`~repro.obs.store.JsonlSpanSink` appends them
to a JSON-lines file for out-of-process collection. A sink that raises
never breaks the traced request: failures are swallowed into the
``obs.span_sink_errors`` counter.

IDs come from explicitly-seeded :class:`random.Random` generators (the
library-wide determinism rule — see :mod:`repro.util.ids`); callers that
do not care pass ``rng=None`` and get a process-local generator.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.util.ids import random_token

__all__ = [
    "SpanContext",
    "SpanRecorder",
    "new_trace_id",
    "new_span_id",
    "current",
    "current_trace_id",
    "current_recorder",
    "activate",
    "child_span",
    "span",
    "add_event",
    "add_sink",
    "remove_sink",
    "sink_installed",
    "thread_spans",
    "to_wire",
    "from_wire",
]

_TRACE_BYTES = 8  # 16 hex chars
_SPAN_BYTES = 4  # 8 hex chars

_fallback_rng = random.Random()


@dataclass(frozen=True)
class SpanContext:
    """Identity of one unit of work within a trace."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    def child(self, rng: Optional[random.Random] = None) -> "SpanContext":
        """A new span in the same trace, parented to this one."""
        return SpanContext(trace_id=self.trace_id, span_id=new_span_id(rng), parent_id=self.span_id)


_current: contextvars.ContextVar[Optional[SpanContext]] = contextvars.ContextVar(
    "gridbank_active_span", default=None
)

# Thread-ident -> (span name, trace id) of the innermost *recorded* span
# running on that thread. Context variables cannot be read from another
# thread, but the sampling profiler (:mod:`repro.obs.diag`) must join
# ``sys._current_frames()`` — keyed by thread ident — against the active
# span to attribute CPU samples per operation. Individual dict get/set/del
# on a plain dict are atomic under the GIL, so the (single) profiler
# thread can read this without taking a lock; torn views across *multiple*
# entries are acceptable for sampling.
_active_by_thread: dict[int, tuple[str, str]] = {}


def thread_spans() -> dict[int, tuple[str, str]]:
    """Live mapping of thread ident -> (span name, trace id).

    The returned dict is the live registry — callers must treat it as
    read-only and tolerate concurrent mutation (iterate via ``.get`` with
    idents from ``sys._current_frames()``, not ``.items()``).
    """
    return _active_by_thread


def new_trace_id(rng: Optional[random.Random] = None) -> str:
    return random_token(rng if rng is not None else _fallback_rng, nbytes=_TRACE_BYTES)


def new_span_id(rng: Optional[random.Random] = None) -> str:
    return random_token(rng if rng is not None else _fallback_rng, nbytes=_SPAN_BYTES)


def current() -> Optional[SpanContext]:
    """The span active in this execution context, if any."""
    return _current.get()


def current_trace_id() -> str:
    """Trace ID of the active span, or ``""`` outside any trace."""
    span = _current.get()
    return span.trace_id if span is not None else ""


@contextlib.contextmanager
def activate(span: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Make *span* the active span for the duration of the block."""
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


def child_span(rng: Optional[random.Random] = None) -> SpanContext:
    """A span continuing the active trace, or rooting a fresh one."""
    parent = _current.get()
    if parent is not None:
        return parent.child(rng)
    return SpanContext(trace_id=new_trace_id(rng), span_id=new_span_id(rng))


# -- span recording ----------------------------------------------------------

_sinks: list[Callable[[dict], None]] = []
_sinks_lock = threading.Lock()


def add_sink(sink: Callable[[dict], None]) -> Callable[[dict], None]:
    """Register *sink* to receive every finished span record.

    A record is a JSON-serializable dict (see :meth:`SpanRecorder.finish`
    for the shape). Returns *sink* so callers can keep the handle for
    :func:`remove_sink`.
    """
    with _sinks_lock:
        if sink not in _sinks:
            _sinks.append(sink)
    return sink


def remove_sink(sink: Callable[[dict], None]) -> None:
    with _sinks_lock:
        if sink in _sinks:
            _sinks.remove(sink)


@contextlib.contextmanager
def sink_installed(sink: Callable[[dict], None]) -> Iterator[Callable[[dict], None]]:
    """Register *sink* for the duration of the block (tests, CLI serve)."""
    add_sink(sink)
    try:
        yield sink
    finally:
        remove_sink(sink)


def _emit(record: dict) -> None:
    with _sinks_lock:
        sinks = list(_sinks)
    for sink in sinks:
        try:
            sink(record)
        except Exception:  # noqa: BLE001 - a broken sink must never break
            # the traced request; the failure is still visible as a counter
            from repro.obs import metrics as obs_metrics

            obs_metrics.counter("obs.span_sink_errors").inc()


class SpanRecorder:
    """One in-flight recorded span: timing, attributes, events, status.

    Created by :func:`span`; user code usually only touches it through
    :func:`add_event` / :meth:`set_attr` / :meth:`set_error`. On close the
    recorder flushes a plain-dict record to every registered sink.
    """

    __slots__ = (
        "context", "name", "kind", "attrs", "events",
        "status", "error_type", "_start_epoch", "_start_perf", "duration",
    )

    def __init__(self, context: SpanContext, name: str, kind: str, attrs: dict) -> None:
        self.context = context
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.events: list[dict] = []
        self.status = "ok"
        self.error_type = ""
        self._start_epoch = time.time()
        self._start_perf = time.perf_counter()
        self.duration = 0.0

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def set_error(self, error_type: str, reason: str = "") -> None:
        """Mark the span failed (server dispatch converts exceptions to
        error *responses*, so the ``with`` block never sees them raise)."""
        self.status = "error"
        self.error_type = error_type
        if reason:
            self.attrs.setdefault("error_reason", reason)

    def add_event(self, name: str, **fields: object) -> None:
        """Attach a timestamped point event (retry, breaker transition)."""
        self.events.append(
            {
                "offset_seconds": time.perf_counter() - self._start_perf,
                "name": name,
                "fields": fields,
            }
        )

    def finish(self) -> dict:
        self.duration = time.perf_counter() - self._start_perf
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_epoch": self._start_epoch,
            "duration_seconds": self.duration,
            "status": self.status,
            "error_type": self.error_type,
            "attrs": dict(self.attrs),
            "events": list(self.events),
        }


class _NullRecorder:
    """Recorder stand-in used on the no-sink fast path.

    When nothing is registered to receive span records, the work of a
    real :class:`SpanRecorder` (two clock reads, attr/event accumulation,
    record assembly) is pure overhead on every RPC — this keeps the full
    recorder API and the context propagation while doing nothing. A sink
    installed *while* such a span is open will not receive that span;
    sinks are installed at process setup, so this is a non-case outside
    pathological tests.
    """

    __slots__ = ("context",)

    status = "ok"
    error_type = ""
    duration = 0.0

    def __init__(self, context: SpanContext) -> None:
        self.context = context

    def set_attr(self, key: str, value: object) -> None:
        pass

    def set_error(self, error_type: str, reason: str = "") -> None:
        pass

    def add_event(self, name: str, **fields: object) -> None:
        pass


_recorder: contextvars.ContextVar[Optional[SpanRecorder]] = contextvars.ContextVar(
    "gridbank_active_recorder", default=None
)


def current_recorder() -> Optional[SpanRecorder]:
    """The recorded span active in this execution context, if any."""
    return _recorder.get()


def add_event(name: str, **fields: object) -> bool:
    """Attach an event to the active recorded span, if there is one.

    Returns whether an event was recorded — callers outside any recorded
    span lose nothing but the event (they usually also emit a structured
    log line, which stands on its own).
    """
    recorder = _recorder.get()
    if recorder is None:
        return False
    recorder.add_event(name, **fields)
    return True


@contextlib.contextmanager
def span(
    name: str,
    kind: str = "internal",
    rng: Optional[random.Random] = None,
    context: Optional[SpanContext] = None,
    **attrs: object,
) -> Iterator[SpanRecorder]:
    """Record one unit of work as a span and flush it to the sinks.

    Without *context* a child of the active span is minted (or a fresh
    trace rooted); servers pass the context they reconstructed from the
    wire so the recorded span carries the caller's trace/parent IDs. An
    exception escaping the block marks the span ``status=error`` with the
    exception's type name and re-raises; flushing happens either way.
    """
    ctx = context if context is not None else child_span(rng)
    ident = threading.get_ident()
    outer = _active_by_thread.get(ident)
    _active_by_thread[ident] = (name, ctx.trace_id)
    if not _sinks:
        # fast path: nobody is listening, so skip recorder bookkeeping
        # entirely — context propagation (logging, WAL trace columns)
        # still works because the span context is activated as usual
        null = _NullRecorder(ctx)
        span_token = _current.set(ctx)
        recorder_token = _recorder.set(null)  # type: ignore[arg-type]
        try:
            yield null  # type: ignore[misc]
        finally:
            _recorder.reset(recorder_token)
            _current.reset(span_token)
            if outer is None:
                _active_by_thread.pop(ident, None)
            else:
                _active_by_thread[ident] = outer
        return
    recorder = SpanRecorder(ctx, name, kind, dict(attrs))
    span_token = _current.set(ctx)
    recorder_token = _recorder.set(recorder)
    try:
        yield recorder
    except BaseException as exc:
        recorder.set_error(type(exc).__name__, str(exc))
        raise
    finally:
        _recorder.reset(recorder_token)
        _current.reset(span_token)
        if outer is None:
            _active_by_thread.pop(ident, None)
        else:
            _active_by_thread[ident] = outer
        _emit(recorder.finish())


# -- wire form (the RPC envelope's ``trace`` field) --------------------------


def to_wire(span: SpanContext) -> dict:
    wire = {"trace_id": span.trace_id, "span_id": span.span_id}
    if span.parent_id:
        wire["parent_id"] = span.parent_id
    return wire


def from_wire(wire: object) -> Optional[SpanContext]:
    """Parse an envelope ``trace`` field; tolerant of absence/malformation
    (tracing must never break the protocol)."""
    if not isinstance(wire, dict):
        return None
    trace_id = wire.get("trace_id")
    span_id = wire.get("span_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if not isinstance(span_id, str) or not span_id:
        return None
    parent_id = wire.get("parent_id", "")
    if not isinstance(parent_id, str):
        parent_id = ""
    return SpanContext(trace_id=trace_id, span_id=span_id, parent_id=parent_id)
