"""In-process metrics registry — counters, gauges, fixed-bucket histograms.

The measurement substrate for the "fast as the hardware allows" roadmap:
every hot path (RPC dispatch, payment protocols, ledger transactions)
observes into the process-wide :data:`REGISTRY`, and the benchmark
harness / ``gridbank metrics`` CLI read it back out via :func:`snapshot`.

Design constraints:

* **Thread-safe.** The TCP server dispatches on one thread per
  connection; every instrument guards its state with a lock.
* **Cheap.** An observation is a lock acquire, one or two float adds and
  a bucket ``bisect`` — negligible next to the RSA/MAC work on the
  request path (verified by ``bench_fig3_server_layers``).
* **Self-contained.** Histograms are fixed-bucket, so a snapshot is a
  small dict of bucket counts from which p50/p95/p99 are estimated by
  linear interpolation; there is no unbounded sample storage.

Instruments are named; optional labels are folded into the name as
``name{key=value,...}`` with sorted keys so the same (name, labels) pair
always resolves to the same instrument.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "exponential_buckets",
    "set_default_latency_buckets",
    "default_latency_buckets",
    "counter",
    "gauge",
    "histogram",
    "timed",
    "snapshot",
    "reset",
    "render_snapshot",
    "configure_exemplars",
    "exemplars_enabled",
]


# -- trace-ID exemplars -------------------------------------------------------
# When enabled, each histogram remembers the trace id of the *last*
# observation that landed in each bucket, so a suspicious p99 bucket links
# directly to a `gridbank trace show`-able trace. Off by default: the
# capture is a ContextVar read per observation, and snapshot shape stays
# byte-identical for consumers that predate exemplars.

_exemplars_enabled = False
_current_trace_id: Optional[Callable[[], str]] = None


def configure_exemplars(enabled: bool) -> None:
    """Turn trace-ID exemplar capture on/off process-wide."""
    global _exemplars_enabled, _current_trace_id
    if enabled and _current_trace_id is None:
        # bound lazily: metrics is the bottom of the obs stack and must
        # stay importable without dragging trace in for non-exemplar users
        from repro.obs.trace import current_trace_id

        _current_trace_id = current_trace_id
    _exemplars_enabled = enabled


def exemplars_enabled() -> bool:
    return _exemplars_enabled


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds growing geometrically from ``start``.

    Exponential bounds keep *relative* quantile error constant across the
    whole range — a sub-millisecond crypto op and a multi-second chaos
    run are both resolved to within one ``factor`` of their true value,
    where linear buckets would clamp one end's p99 to a bucket edge.
    """
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


# Powers of two from 1us to ~134s — covers everything from a dict lookup
# to an RSA keygen to a multi-second chaos run. The last bucket is +inf
# (implicit), and percentile estimates are clamped to the observed
# min/max, so the edges never fabricate values.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = exponential_buckets(1e-6, 2.0, 28)

_default_buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS


def default_latency_buckets() -> tuple[float, ...]:
    """The bucket bounds new unconfigured histograms are created with."""
    return _default_buckets


def set_default_latency_buckets(buckets: Sequence[float]) -> None:
    """Replace the process-wide default latency buckets.

    Only affects histograms created afterwards; existing instruments keep
    their bounds (bucket counts cannot be re-binned retroactively).
    """
    global _default_buckets
    bounds = tuple(buckets)
    if not bounds or list(bounds) != sorted(set(bounds)):
        raise ValueError("histogram buckets must be sorted, unique and non-empty")
    _default_buckets = bounds


class Counter:
    """Monotonically increasing count (requests served, coins redeemed)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (open connections, pool occupancy)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with percentile estimation.

    ``buckets`` are the inclusive upper bounds of each bucket (sorted,
    strictly increasing); observations above the last bound land in an
    implicit +inf bucket. Percentiles are estimated by linear
    interpolation inside the bucket containing the target rank, which is
    exact at bucket boundaries and bounded by bucket width elsewhere.
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "_count", "_sum", "_min",
                 "_max", "_exemplars")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else _default_buckets
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be sorted, unique and non-empty")
        self.name = name
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot: > bounds[-1]
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._exemplars: dict[int, str] = {}  # bucket index -> last trace id

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        trace_id = ""
        if _exemplars_enabled and _current_trace_id is not None:
            trace_id = _current_trace_id()
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if trace_id:
                self._exemplars[index] = trace_id

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 < q <= 1) from bucket counts."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        seen = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                if index < len(self.buckets):
                    lower = self.buckets[index]
                continue
            upper = self.buckets[index] if index < len(self.buckets) else self._max
            if seen + bucket_count >= rank:
                fraction = (rank - seen) / bucket_count
                estimate = lower + (upper - lower) * fraction
                # never estimate outside the observed range
                return min(max(estimate, self._min), self._max)
            seen += bucket_count
            lower = upper
        return self._max

    def _cumulative_buckets_locked(self) -> list:
        """Cumulative ``[upper_bound, count]`` pairs, Prometheus-style:
        each count covers every observation <= its bound, and the final
        ``"+Inf"`` entry equals the total count."""
        pairs = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self._counts):
            running += bucket_count
            pairs.append([bound, running])
        pairs.append(["+Inf", self._count])
        return pairs

    def _exemplars_locked(self) -> list:
        """``[upper_bound, trace_id]`` pairs for buckets holding an
        exemplar, aligned with :meth:`_cumulative_buckets_locked` bounds."""
        return [
            [self.buckets[i] if i < len(self.buckets) else "+Inf", trace_id]
            for i, trace_id in sorted(self._exemplars.items())
        ]

    def summary(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0,
                        "buckets": self._cumulative_buckets_locked()}
            out = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
                "buckets": self._cumulative_buckets_locked(),
            }
            # only histograms that actually captured exemplars grow the
            # extra key, so pre-exemplar snapshot consumers see no change
            if self._exemplars:
                out["exemplars"] = self._exemplars_locked()
            return out


class _Timer:
    """``timed()`` handle: context manager and decorator in one."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._started)

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self._histogram.observe(time.perf_counter() - started)

        wrapper.__name__ = getattr(fn, "__name__", "timed")
        wrapper.__doc__ = fn.__doc__
        return wrapper


def _escape_label_value(value: str) -> str:
    """Backslash-escape the key syntax characters in a label value, so
    values carrying commas or equals signs (principal DNs like
    ``CN=alice,O=acme``) survive the ``name{k=v,...}`` round trip. Plain
    values render unchanged, keeping simple keys byte-identical."""
    return value.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")


def _key(name: str, labels: dict) -> str:
    if not labels:
        return name
    rendered = ",".join(
        f"{k}={_escape_label_value(str(labels[k]))}" for k in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # bumped by reset(): hot paths that cache instrument references
        # (the diagnosis plane's wait hooks) revalidate against this
        # instead of paying the label-key lookup per event
        self.generation = 0

    # Lookups use double-checked locking: the lock-free first read is safe
    # because dict reads are atomic under the GIL and instruments are only
    # ever added (reset() swaps in fresh dicts rather than mutating).
    # Every RPC touches several instruments, so the registry-wide lock was
    # a measurable convoy point under concurrent dispatch.

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(key)
                if instrument is None:
                    instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(key)
                if instrument is None:
                    instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(key)
                if instrument is None:
                    instrument = self._histograms[key] = Histogram(key, buckets=buckets)
        return instrument

    def timed(self, name: str, buckets: Optional[Sequence[float]] = None,
              **labels: object) -> _Timer:
        """Time a block (``with timed(...)``) or a callable (decorator)."""
        return _Timer(self.histogram(name, buckets=buckets, **labels))

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (per-scenario isolation in benchmarks)."""
        with self._lock:
            # swap rather than clear: racing lock-free readers keep a
            # consistent (stale) view instead of observing a half-empty dict
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
            self.generation += 1


def render_snapshot(data: dict) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`."""
    lines: list[str] = []
    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    histograms = data.get("histograms", {})
    if counters:
        lines.append("# counters")
        for name, value in counters.items():
            rendered = f"{value:.6f}".rstrip("0").rstrip(".") if value % 1 else f"{int(value)}"
            lines.append(f"{name:<56} {rendered}")
    if gauges:
        lines.append("# gauges")
        for name, value in gauges.items():
            lines.append(f"{name:<56} {value:g}")
    if histograms:
        lines.append("# histograms (seconds unless named otherwise)")
        for name, s in histograms.items():
            lines.append(
                f"{name:<56} count={s['count']} mean={s['mean']:.6g} "
                f"p50={s['p50']:.6g} p95={s['p95']:.6g} p99={s['p99']:.6g} max={s['max']:.6g}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


#: The process-wide registry every instrumented module observes into.
REGISTRY = MetricsRegistry()

counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram
timed = REGISTRY.timed
snapshot = REGISTRY.snapshot
reset = REGISTRY.reset
