"""Durable span store — traces that survive the process.

The paper's accountability story (sec 5.1 records, sec 2.2 RURs) is about
being able to reconstruct *after the fact* who paid whom and why. PR 1's
traces only lived in process memory; this module makes them part of the
audit record. Two sinks for :func:`repro.obs.trace.add_sink`:

* :class:`SpanStore` — persists each finished span as a SPAN row through
  the same WAL'd :class:`~repro.db.database.Database` that holds the
  ledger, so a crash-recovery replay restores traces together with the
  TRANSACTION/TRANSFER rows they explain. ``gridbank trace show`` joins
  the two through the ledger ``TraceID`` columns.
* :class:`JsonlSpanSink` — appends each record as one JSON line to a
  file, for out-of-process collectors that tail a log rather than open
  the database.

Span records arrive on the serving thread *after* the operation's
database transaction commits (the instrumentation wrapper sits outside
the transaction wrapper), so SPAN rows autocommit as their own WAL
lines. Defensively, a record arriving while a transaction *is* open is
buffered and flushed on the next out-of-transaction record (or an
explicit :meth:`SpanStore.flush`) — a span row must never ride inside,
and risk rollback with, an unrelated ledger transaction.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.db.database import Database
from repro.db.query import eq
from repro.db.schema import Column, TableSchema
from repro.db.types import BigIntUnsigned, Blob, Float, VarChar
from repro.errors import IntegrityError
from repro.obs import metrics as obs_metrics
from repro.util.ids import IdGenerator
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = [
    "SPAN_TABLE",
    "span_schema",
    "SpanStore",
    "JsonlSpanSink",
    "render_waterfall",
]

SPAN_TABLE = "spans"

# column widths, shared by the schema and the truncation on insert
_W_TRACE = 32
_W_SPAN = 16
_W_NAME = 64
_W_KIND = 16
_W_STATUS = 10
_W_ERROR = 64

# evict this many rows at once when full (same idiom as the reply cache)
_EVICTION_BATCH = 256


def span_schema() -> TableSchema:
    """SPAN table — one row per finished span.

    Primary key ``(TraceID, SpanID)``: span IDs are only 32 bits, so
    uniqueness is scoped to the trace they belong to. ``Attrs`` and
    ``Events`` are canonical-JSON blobs (small, schemaless, read back
    only for display); timing/identity/status columns are first-class so
    ``trace slowest`` and ``trace grep`` can filter without decoding.
    ``Seq`` orders rows for bounded-size eviction.
    """
    return TableSchema(
        SPAN_TABLE,
        [
            Column.make("TraceID", VarChar(_W_TRACE)),
            Column.make("SpanID", VarChar(_W_SPAN)),
            Column.make("ParentID", VarChar(_W_SPAN), default=""),
            Column.make("Seq", BigIntUnsigned()),
            Column.make("Name", VarChar(_W_NAME)),
            Column.make("Kind", VarChar(_W_KIND), default="internal"),
            Column.make("Status", VarChar(_W_STATUS), default="ok"),
            Column.make("ErrorType", VarChar(_W_ERROR), default=""),
            Column.make("StartEpoch", Float()),
            Column.make("DurationSeconds", Float()),
            Column.make("Attrs", Blob(), default=b""),
            Column.make("Events", Blob(), default=b""),
        ],
        primary_key=["TraceID", "SpanID"],
        indexes=["Seq", "Name"],
    )


def _fit(value: object, width: int) -> str:
    return str(value)[:width]


def _jsonable(value: object) -> object:
    """Coerce an attr/event value to something canonical JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class SpanStore:
    """Span sink persisting records as SPAN rows; also the query side.

    Instances are callable so they plug directly into
    :func:`repro.obs.trace.add_sink`. Construction creates the table if
    missing — on a persistent database this must happen *before*
    :meth:`~repro.db.database.Database.recover` (tables must exist for
    the journal replay to land in), after which :meth:`rescan` re-derives
    the eviction sequence from the recovered rows.
    """

    def __init__(self, db: Database, max_rows: int = 50_000) -> None:
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        self.db = db
        self.max_rows = max_rows
        self._lock = threading.Lock()
        self._deferred: list[dict] = []
        if SPAN_TABLE not in db.table_names():
            db.create_table(span_schema())
        self.rescan()

    def rescan(self) -> None:
        """Re-derive the insertion sequence from persisted rows (call
        after WAL recovery, like the reply cache's rescan)."""
        highest = 0
        for row in self.db.table(SPAN_TABLE).all_rows():
            highest = max(highest, row["Seq"])
        self._seq = IdGenerator(start=highest + 1)

    # -- sink side ---------------------------------------------------------

    def __call__(self, record: dict) -> None:
        """Persist one finished span record (the sink protocol)."""
        if self.db.in_transaction:
            # never let a span row ride inside an unrelated ledger
            # transaction; hold it until the transaction is gone
            with self._lock:
                self._deferred.append(record)
            return
        self.flush()
        self._insert(record)

    def flush(self) -> int:
        """Persist any records deferred while a transaction was open."""
        if self.db.in_transaction:
            return 0
        with self._lock:
            pending, self._deferred = self._deferred, []
        for record in pending:
            self._insert(record)
        return len(pending)

    def _insert(self, record: dict) -> None:
        row = {
            "TraceID": _fit(record.get("trace_id", ""), _W_TRACE),
            "SpanID": _fit(record.get("span_id", ""), _W_SPAN),
            "ParentID": _fit(record.get("parent_id", ""), _W_SPAN),
            "Seq": self._seq.next_int(),
            "Name": _fit(record.get("name", ""), _W_NAME),
            "Kind": _fit(record.get("kind", "internal"), _W_KIND),
            "Status": _fit(record.get("status", "ok"), _W_STATUS),
            "ErrorType": _fit(record.get("error_type", ""), _W_ERROR),
            "StartEpoch": float(record.get("start_epoch", 0.0)),
            "DurationSeconds": float(record.get("duration_seconds", 0.0)),
            "Attrs": canonical_dumps(_jsonable(record.get("attrs", {}))),
            "Events": canonical_dumps(_jsonable(record.get("events", []))),
        }
        count = self.db.count(SPAN_TABLE)
        if count >= self.max_rows:
            self._evict(count - self.max_rows + 1)
        try:
            self.db.insert(SPAN_TABLE, row)
        except IntegrityError:
            # duplicate (trace, span) — keep the first record, drop this one
            pass

    def _evict(self, need: int) -> None:
        victims = self.db.select(
            SPAN_TABLE, order_by="Seq", limit=max(need, _EVICTION_BATCH)
        )
        for row in victims:
            self.db.delete(SPAN_TABLE, (row["TraceID"], row["SpanID"]))
        if victims:
            # audit history destroyed by capacity, not by choice — keep
            # the loss observable (sampling exists to keep this near zero)
            obs_metrics.counter("obs.spans_dropped").inc(len(victims))

    # -- query side --------------------------------------------------------

    @staticmethod
    def _decode(row: dict) -> dict:
        """SPAN row back to the record shape the sinks were handed."""
        return {
            "trace_id": row["TraceID"],
            "span_id": row["SpanID"],
            "parent_id": row["ParentID"],
            "name": row["Name"],
            "kind": row["Kind"],
            "status": row["Status"],
            "error_type": row["ErrorType"],
            "start_epoch": row["StartEpoch"],
            "duration_seconds": row["DurationSeconds"],
            "attrs": canonical_loads(row["Attrs"]) if row["Attrs"] else {},
            "events": canonical_loads(row["Events"]) if row["Events"] else [],
        }

    def spans_for_trace(self, trace_id: str) -> list[dict]:
        """Every span of *trace_id*, as records, ordered by start time."""
        rows = self.db.select(SPAN_TABLE, [eq("TraceID", trace_id)])
        records = [self._decode(row) for row in rows]
        records.sort(key=lambda r: (r["start_epoch"], r["span_id"]))
        return records

    def trace_ids(self) -> list[str]:
        """Distinct trace IDs, most recently started first."""
        latest: dict[str, float] = {}
        for row in self.db.table(SPAN_TABLE).all_rows():
            seen = latest.get(row["TraceID"])
            if seen is None or row["StartEpoch"] > seen:
                latest[row["TraceID"]] = row["StartEpoch"]
        return [tid for tid, _ in sorted(latest.items(), key=lambda kv: -kv[1])]

    def slowest(self, limit: int = 10, name: str = "") -> list[dict]:
        """The *limit* longest spans (optionally only those whose name
        starts with *name*), as records, slowest first."""
        conditions = []
        rows = self.db.select(SPAN_TABLE, conditions)
        if name:
            rows = [row for row in rows if row["Name"].startswith(name)]
        rows.sort(key=lambda r: -r["DurationSeconds"])
        return [self._decode(row) for row in rows[:limit]]

    def grep(self, needle: str, limit: int = 50) -> list[dict]:
        """Spans whose name, attrs, events, or error type contain *needle*
        (case-insensitive substring), newest first."""
        want = needle.lower()
        hits = []
        for row in self.db.table(SPAN_TABLE).all_rows():
            haystack = " ".join(
                (
                    row["Name"],
                    row["ErrorType"],
                    row["Attrs"].decode("utf-8", "replace") if row["Attrs"] else "",
                    row["Events"].decode("utf-8", "replace") if row["Events"] else "",
                )
            ).lower()
            if want in haystack:
                hits.append(row)
        hits.sort(key=lambda r: -r["StartEpoch"])
        return [self._decode(row) for row in hits[:limit]]

    def __len__(self) -> int:
        return self.db.count(SPAN_TABLE)


class JsonlSpanSink:
    """Span sink appending one JSON line per record to *path*.

    The file is opened per write (append mode), so the sink survives log
    rotation and never holds a handle across forks; span close is not a
    hot path. Thread-safe via a lock around the append.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def __call__(self, record: dict) -> None:
        line = json.dumps(_jsonable(record), sort_keys=True, separators=(",", ":"))
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    @staticmethod
    def read(path: Union[str, Path]) -> list[dict]:
        """Parse a JSONL span file back into records (skips torn lines)."""
        records = []
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records


# -- waterfall rendering -----------------------------------------------------


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_waterfall(records: Iterable[dict], ledger_rows: Iterable[dict] = ()) -> str:
    """Text waterfall of one trace: parent/child indentation, per-span
    durations and offsets, inline events, and any ledger rows carrying
    the trace's TraceID appended at the bottom.

    *records* are span records (see :meth:`SpanStore.spans_for_trace`);
    *ledger_rows* are TRANSACTION/TRANSFER dicts with a ``_table`` key
    naming their source table (the CLI adds it when joining).
    """
    records = list(records)
    if not records:
        return "(no spans)"
    by_id = {r["span_id"]: r for r in records}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for record in records:
        parent = record["parent_id"]
        if parent and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    origin = min(r["start_epoch"] for r in records)
    lines = [f"trace {records[0]['trace_id']}  ({len(records)} spans)"]

    def emit(record: dict, depth: int) -> None:
        indent = "  " * depth
        offset = record["start_epoch"] - origin
        status = "" if record["status"] == "ok" else f"  ERROR[{record['error_type']}]"
        attrs = record.get("attrs") or {}
        attr_text = ""
        if attrs:
            rendered = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            attr_text = f"  {{{rendered}}}"
        lines.append(
            f"{indent}+{_format_duration(offset):>9}  {record['name']:<28} "
            f"{_format_duration(record['duration_seconds']):>9}  "
            f"[{record['span_id']}]{status}{attr_text}"
        )
        for event in record.get("events") or []:
            fields = event.get("fields") or {}
            field_text = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
            lines.append(
                f"{indent}  . +{_format_duration(event.get('offset_seconds', 0.0)):>8}"
                f"  {event.get('name', '?')} {field_text}".rstrip()
            )
        for child in sorted(
            children.get(record["span_id"], ()), key=lambda r: r["start_epoch"]
        ):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda r: r["start_epoch"]):
        emit(root, 1)

    ledger_rows = list(ledger_rows)
    if ledger_rows:
        lines.append("ledger rows:")
        for row in ledger_rows:
            table = row.get("_table", "?")
            fields = {k: v for k, v in row.items() if k != "_table" and v not in (b"", "")}
            rendered = ", ".join(f"{k}={fields[k]}" for k in sorted(fields))
            lines.append(f"  {table}: {rendered}")
    return "\n".join(lines)
