"""Aggregation of per-resource RURs into a combined GSP-level record.

"each individual resource (R1-R4) used to provide computational service
presents its usage record to Grid Resource Meter. GRM might choose to
aggregate individual records into the standard RUR to reflect the charge
for the combined GSP's service." (paper sec 2.1)

Aggregation sums usage vectors, spans the earliest start to the latest
end, and records provenance (the local job ids it merged) so disputes can
be settled against the constituent records.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MeteringError
from repro.rur.record import ResourceUsageRecord, UsageVector

__all__ = ["aggregate_records"]


def aggregate_records(
    records: Sequence[ResourceUsageRecord],
    resource_certificate_name: str,
    resource_host: str,
) -> ResourceUsageRecord:
    """Merge per-resource *records* for one (user, job) into one RUR.

    All records must belong to the same user and job; the merged record is
    attributed to the GSP identity given by *resource_certificate_name*.
    """
    if not records:
        raise MeteringError("nothing to aggregate")
    first = records[0]
    for record in records[1:]:
        if record.user_certificate_name != first.user_certificate_name:
            raise MeteringError("cannot aggregate records of different users")
        if record.job_id != first.job_id:
            raise MeteringError("cannot aggregate records of different jobs")
    total = UsageVector()
    for record in records:
        total = total + record.usage
    # Wall clock is the span of the combined service, not the sum of
    # per-resource wall clocks (resources run concurrently).
    start = min(r.job_start_epoch for r in records)
    end = max(r.job_end_epoch for r in records)
    merged = dict(total.as_dict())
    merged["wall_clock_s"] = end - start
    return ResourceUsageRecord(
        user_certificate_name=first.user_certificate_name,
        user_host=first.user_host,
        job_id=first.job_id,
        application_name=first.application_name,
        job_start_epoch=start,
        job_end_epoch=end,
        resource_certificate_name=resource_certificate_name,
        resource_host=resource_host,
        host_type=first.host_type,
        local_job_id="",
        usage=UsageVector.from_dict(merged),
        aggregated_from=tuple(r.local_job_id or r.resource_host for r in records),
    )
