"""The conversion unit: raw OS usage -> standard RUR.

"Once GRM obtains the raw usage statistics, it filters relevant fields in
the record and passes them to the conversion unit, which generates a
standard OS-independent Resource Usage Record" (paper sec 2.1, Figure 2).

Raw records are deliberately OS-flavoured — different field names and
units per flavor, the way ``getrusage``/accounting files differ across the
2003-era platforms the paper mentions (Linux clusters, Crays). The
conversion unit normalizes them all into one :class:`UsageVector`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import MeteringError
from repro.rur.record import ResourceUsageRecord, UsageVector

__all__ = ["OSFlavor", "RawUsageRecord", "ConversionUnit"]


class OSFlavor(enum.Enum):
    LINUX = "linux"
    SOLARIS = "solaris"
    CRAY_UNICOS = "cray-unicos"


@dataclass(frozen=True)
class RawUsageRecord:
    """What the local OS / cluster scheduler reports after a job finishes.

    ``fields`` uses flavor-specific names and units; see the per-flavor
    extraction tables in :class:`ConversionUnit`. ``origin_host`` names
    the individual machine that produced the record (the R1..R4 of
    Figure 1) so the GRM can attribute per-resource records.
    """

    flavor: OSFlavor
    local_job_id: str
    start_epoch: float
    end_epoch: float
    fields: Mapping[str, float] = field(default_factory=dict)
    origin_host: str = ""


def _seconds_from_jiffies(value: float) -> float:
    return value / 100.0  # classic 100 Hz kernel tick


def _seconds_from_microseconds(value: float) -> float:
    return value / 1_000_000.0


def _mb_from_kb(value: float) -> float:
    return value / 1024.0


def _mb_from_words(value: float) -> float:
    return value * 8.0 / (1024.0 * 1024.0)  # 64-bit words


_IDENTITY = float

# flavor -> canonical item -> (raw field name, unit conversion)
_EXTRACTORS: dict[OSFlavor, dict[str, tuple[str, callable]]] = {
    OSFlavor.LINUX: {
        "cpu_time_s": ("utime_jiffies", _seconds_from_jiffies),
        "software_time_s": ("stime_jiffies", _seconds_from_jiffies),
        "memory_mb_h": ("mem_kb_hours", _mb_from_kb),
        "storage_mb_h": ("disk_kb_hours", _mb_from_kb),
        "network_mb": ("net_kb", _mb_from_kb),
    },
    OSFlavor.SOLARIS: {
        "cpu_time_s": ("pr_utime_us", _seconds_from_microseconds),
        "software_time_s": ("pr_stime_us", _seconds_from_microseconds),
        "memory_mb_h": ("pr_mem_mb_hours", _IDENTITY),
        "storage_mb_h": ("pr_disk_mb_hours", _IDENTITY),
        "network_mb": ("pr_net_mb", _IDENTITY),
    },
    OSFlavor.CRAY_UNICOS: {
        "cpu_time_s": ("cpu_seconds", _IDENTITY),
        "software_time_s": ("sys_seconds", _IDENTITY),
        "memory_mb_h": ("mem_word_hours", _mb_from_words),
        "storage_mb_h": ("disk_word_hours", _mb_from_words),
        "network_mb": ("net_words", _mb_from_words),
    },
}


class ConversionUnit:
    """Filters raw fields and produces the OS-independent usage vector."""

    def convert_usage(self, raw: RawUsageRecord) -> UsageVector:
        try:
            table = _EXTRACTORS[raw.flavor]
        except KeyError:
            raise MeteringError(f"no conversion table for flavor {raw.flavor!r}") from None
        values: dict[str, float] = {}
        for item, (raw_name, convert) in table.items():
            if raw_name in raw.fields:
                value = raw.fields[raw_name]
                if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
                    raise MeteringError(f"raw field {raw_name!r} has invalid value {value!r}")
                values[item] = convert(value)
        values["wall_clock_s"] = raw.end_epoch - raw.start_epoch
        if values["wall_clock_s"] < 0:
            raise MeteringError("raw record ends before it starts")
        return UsageVector(**values)

    def convert(
        self,
        raw: RawUsageRecord,
        user_certificate_name: str,
        user_host: str,
        job_id: str,
        application_name: str,
        resource_certificate_name: str,
        resource_host: str,
        host_type: str = "",
    ) -> ResourceUsageRecord:
        """Full Figure-2 step: raw stats + identities -> standard RUR."""
        return ResourceUsageRecord(
            user_certificate_name=user_certificate_name,
            user_host=user_host,
            job_id=job_id,
            application_name=application_name,
            job_start_epoch=raw.start_epoch,
            job_end_epoch=raw.end_epoch,
            resource_certificate_name=resource_certificate_name,
            resource_host=resource_host,
            host_type=host_type,
            local_job_id=raw.local_job_id,
            usage=self.convert_usage(raw),
        )
