"""Resource Usage Records (RUR).

The paper stores an opaque RUR BLOB in every TRANSFER record and notes the
format "needs to be defined", listing the fields the GGF usage-record
effort associated with it (sec 5.1). This package defines a concrete record
with exactly those fields, the conversion unit that turns raw, OS-specific
usage statistics into the standard OS-independent record (Figure 2), the
aggregation step that combines per-resource records into one GSP-level
record (sec 2.1), and JSON/XML encodings plus the binary BLOB form the
bank stores.
"""

from repro.rur.record import ResourceUsageRecord, UsageVector
from repro.rur.conversion import RawUsageRecord, ConversionUnit, OSFlavor
from repro.rur.aggregate import aggregate_records
from repro.rur.formats import (
    encode_json,
    decode_json,
    encode_xml,
    decode_xml,
    to_blob,
    from_blob,
)

__all__ = [
    "ResourceUsageRecord",
    "UsageVector",
    "RawUsageRecord",
    "ConversionUnit",
    "OSFlavor",
    "aggregate_records",
    "encode_json",
    "decode_json",
    "encode_xml",
    "decode_xml",
    "to_blob",
    "from_blob",
]
