"""The standard OS-independent Resource Usage Record.

Fields follow the paper's sec 5.1 listing: user details (certificate name,
host), job details (job id, application, start/end), resource details
(host, certificate name, host type, local job id) and the usage quantities
for each chargeable item class of sec 2.1:

* ``cpu_time_s``       — user CPU seconds (Processors)
* ``memory_mb_h``      — main memory MB*hours
* ``storage_mb_h``     — secondary storage MB*hours
* ``network_mb``       — I/O channel traffic in MB
* ``software_time_s``  — system CPU seconds (Software Libraries)
* ``wall_clock_s``     — wall clock seconds

The usage quantities live in a :class:`UsageVector` so rates, charging and
aggregation can treat them uniformly (item name -> quantity).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields

from repro.errors import ValidationError

__all__ = ["UsageVector", "ResourceUsageRecord", "CHARGEABLE_ITEMS"]

# Canonical chargeable item names, in the paper's sec 2.1 order.
CHARGEABLE_ITEMS = (
    "cpu_time_s",
    "memory_mb_h",
    "storage_mb_h",
    "network_mb",
    "software_time_s",
    "wall_clock_s",
)


@dataclass(frozen=True)
class UsageVector:
    """Quantities consumed per chargeable item."""

    cpu_time_s: float = 0.0
    memory_mb_h: float = 0.0
    storage_mb_h: float = 0.0
    network_mb: float = 0.0
    software_time_s: float = 0.0
    wall_clock_s: float = 0.0

    def __post_init__(self) -> None:
        for item in CHARGEABLE_ITEMS:
            value = getattr(self, item)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValidationError(f"usage item {item!r} must be a number")
            if value != value or value < 0:
                raise ValidationError(f"usage item {item!r} must be >= 0, got {value!r}")

    def as_dict(self) -> dict[str, float]:
        return {item: float(getattr(self, item)) for item in CHARGEABLE_ITEMS}

    @classmethod
    def from_dict(cls, data: dict) -> "UsageVector":
        unknown = set(data) - set(CHARGEABLE_ITEMS)
        if unknown:
            raise ValidationError(f"unknown usage items: {sorted(unknown)}")
        return cls(**{k: float(v) for k, v in data.items()})

    def __add__(self, other: "UsageVector") -> "UsageVector":
        return UsageVector(**{
            item: getattr(self, item) + getattr(other, item) for item in CHARGEABLE_ITEMS
        })

    def nonzero_items(self) -> list[str]:
        return [item for item in CHARGEABLE_ITEMS if getattr(self, item) > 0]


@dataclass(frozen=True)
class ResourceUsageRecord:
    """One job's resource consumption on one provider."""

    # user details
    user_certificate_name: str
    user_host: str
    # job details
    job_id: str
    application_name: str
    job_start_epoch: float
    job_end_epoch: float
    # resource details
    resource_certificate_name: str
    resource_host: str
    usage: UsageVector
    host_type: str = ""
    local_job_id: str = ""
    # provenance: ids of per-resource records merged into this one (sec 2.1)
    aggregated_from: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("user_certificate_name", "job_id", "resource_certificate_name"):
            if not getattr(self, name):
                raise ValidationError(f"RUR field {name!r} must be non-empty")
        if self.job_end_epoch < self.job_start_epoch:
            raise ValidationError("RUR job_end before job_start")

    @property
    def duration_s(self) -> float:
        return self.job_end_epoch - self.job_start_epoch

    def to_dict(self) -> dict:
        out = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if f.name == "usage":
                out[f.name] = value.as_dict()
            elif f.name == "aggregated_from":
                out[f.name] = list(value)
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceUsageRecord":
        try:
            kwargs = dict(data)
            kwargs["usage"] = UsageVector.from_dict(kwargs["usage"])
            kwargs["aggregated_from"] = tuple(kwargs.get("aggregated_from", ()))
            return cls(**kwargs)
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed RUR: {exc}") from exc
