"""RUR encodings.

The bank stores the RUR "in a binary format ... the RUR can be
independently defined by the Grid sites" (paper sec 5.1 note). Two concrete
encodings are provided — canonical JSON (the default blob format) and an
XML rendering in the spirit of the GGF usage-record drafts — plus the
blob helpers used by the TRANSFER record's BLOB column. The blob is
self-describing via a one-byte format tag so sites using either encoding
interoperate.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import ValidationError
from repro.rur.record import ResourceUsageRecord
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = ["encode_json", "decode_json", "encode_xml", "decode_xml", "to_blob", "from_blob"]

_TAG_JSON = b"\x01"
_TAG_XML = b"\x02"

_FLOAT_FIELDS = {"job_start_epoch", "job_end_epoch"}


def encode_json(record: ResourceUsageRecord) -> bytes:
    return canonical_dumps(record.to_dict())


def decode_json(data: bytes) -> ResourceUsageRecord:
    payload = canonical_loads(data)
    if not isinstance(payload, dict):
        raise ValidationError("RUR JSON payload must be an object")
    return ResourceUsageRecord.from_dict(payload)


def encode_xml(record: ResourceUsageRecord) -> str:
    """GGF-usage-record-flavoured XML rendering."""
    root = ET.Element("UsageRecord")
    data = record.to_dict()
    usage = data.pop("usage")
    aggregated = data.pop("aggregated_from")
    for key, value in data.items():
        child = ET.SubElement(root, key)
        child.text = repr(value) if isinstance(value, float) else str(value)
    usage_el = ET.SubElement(root, "Usage")
    for item, quantity in usage.items():
        child = ET.SubElement(usage_el, item)
        child.text = repr(quantity)
    if aggregated:
        agg_el = ET.SubElement(root, "AggregatedFrom")
        for source in aggregated:
            ET.SubElement(agg_el, "Source").text = source
    return ET.tostring(root, encoding="unicode")


def decode_xml(text: str) -> ResourceUsageRecord:
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed RUR XML: {exc}") from exc
    if root.tag != "UsageRecord":
        raise ValidationError(f"unexpected XML root {root.tag!r}")
    data: dict = {}
    for child in root:
        if child.tag == "Usage":
            data["usage"] = {item.tag: float(item.text or "0") for item in child}
        elif child.tag == "AggregatedFrom":
            data["aggregated_from"] = [source.text or "" for source in child]
        else:
            text_value = child.text or ""
            data[child.tag] = float(text_value) if child.tag in _FLOAT_FIELDS else text_value
    try:
        return ResourceUsageRecord.from_dict(data)
    except ValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"malformed RUR XML content: {exc}") from exc


def to_blob(record: ResourceUsageRecord, fmt: str = "json") -> bytes:
    """Binary form stored in the TRANSFER record's BLOB column."""
    if fmt == "json":
        return _TAG_JSON + encode_json(record)
    if fmt == "xml":
        return _TAG_XML + encode_xml(record).encode("utf-8")
    raise ValidationError(f"unknown RUR blob format {fmt!r}")


def from_blob(blob: bytes) -> ResourceUsageRecord:
    if not blob:
        raise ValidationError("empty RUR blob")
    tag, body = blob[:1], blob[1:]
    if tag == _TAG_JSON:
        return decode_json(body)
    if tag == _TAG_XML:
        return decode_xml(body.decode("utf-8"))
    raise ValidationError(f"unknown RUR blob tag {tag!r}")
