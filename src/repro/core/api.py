"""GridBank API — the client-side facade of sec 5.2.

"GridBank API provides an interface to the Protocol layer, which is
responsible for obtaining payment instruments or performing direct
transfers. GridBank Payment Module and GridBank Charging Module interface
to GridBank API module to invoke GridBank operations." (sec 3.3)

Wraps a connected :class:`~repro.net.rpc.RPCClient`, learns the bank's
public key from ``BankInfo`` (used to verify every instrument it
receives), and converts wire dicts into typed instruments.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.crypto.hashes import HashChain
from repro.crypto.keys import public_key_from_dict
from repro.crypto.rsa import RSAPublicKey
from repro.errors import ReproError, TransportError
from repro.net.rpc import RPCClient
from repro.payments.cheque import GridCheque
from repro.payments.direct import TransferConfirmation
from repro.payments.hashchain import GridHashCommitment, HashChainWallet, PaymentTick
from repro.util.gbtime import Timestamp
from repro.util.money import Credits

__all__ = ["GridBankAPI"]


class GridBankAPI:
    def __init__(self, client: RPCClient, rng: Optional[random.Random] = None) -> None:
        self._client = client
        self._rng = rng if rng is not None else random.Random()
        info = client.call("BankInfo")
        self.bank_subject: str = info["subject"]
        self.bank_number: int = info["bank_number"]
        self.branch_number: int = info["branch_number"]
        self.bank_public_key: RSAPublicKey = public_key_from_dict(info["public_key"])

    # -- account operations (sec 5.2) -----------------------------------------

    def create_account(self, organization_name: str = "", currency: str = "GridDollar") -> str:
        return self._client.call(
            "CreateAccount", organization_name=organization_name, currency=currency
        )["account_id"]

    def account_details(self, account_id: str) -> dict:
        return self._client.call("RequestAccountDetails", account_id=account_id)

    def check_balance(self, account_id: str) -> Credits:
        return Credits(self.account_details(account_id)["AvailableBalance"])

    def update_account(self, account_id: str, certificate_name: Optional[str] = None,
                       organization_name: Optional[str] = None) -> dict:
        params: dict = {"account_id": account_id}
        if certificate_name is not None:
            params["certificate_name"] = certificate_name
        if organization_name is not None:
            params["organization_name"] = organization_name
        return self._client.call("UpdateAccountDetails", **params)

    def account_statement(self, account_id: str, start: Timestamp, end: Timestamp) -> dict:
        return self._client.call(
            "RequestAccountStatement",
            account_id=account_id,
            start=start.stamp14,
            end=end.stamp14,
        )

    def funds_availability_check(self, account_id: str, amount: Credits) -> bool:
        return self._client.call(
            "FundsAvailabilityCheck", account_id=account_id, amount=amount
        )["confirmed"]

    def release_funds(self, account_id: str, amount: Credits) -> None:
        self._client.call("ReleaseFunds", account_id=account_id, amount=amount)

    # -- pay before use ------------------------------------------------------------

    def request_direct_transfer(
        self,
        from_account: str,
        to_account: str,
        amount: Credits,
        recipient_address: str = "",
        rur_blob: bytes = b"",
    ) -> TransferConfirmation:
        result = self._client.call(
            "RequestDirectTransfer",
            from_account=from_account,
            to_account=to_account,
            amount=amount,
            recipient_address=recipient_address,
            rur_blob=rur_blob,
        )
        confirmation = TransferConfirmation.from_dict(result["confirmation"])
        confirmation.verify(self.bank_public_key)
        return confirmation

    def fetch_confirmations(self, address: str) -> list[TransferConfirmation]:
        inbox = self._client.call("FetchConfirmations", address=address)
        confirmations = [TransferConfirmation.from_dict(item) for item in inbox]
        for confirmation in confirmations:
            confirmation.verify(self.bank_public_key)
        return confirmations

    # -- pay after use (GridCheque) ---------------------------------------------------

    def request_cheque(self, account_id: str, payee_subject: str, amount: Credits) -> GridCheque:
        result = self._client.call(
            "RequestGridCheque",
            account_id=account_id,
            payee_subject=payee_subject,
            amount=amount,
        )
        cheque = GridCheque.from_dict(result["cheque"])
        cheque.verify(self.bank_public_key)
        return cheque

    def redeem_cheque(
        self, cheque: GridCheque, payee_account: str, charge: Credits, rur_blob: bytes = b""
    ) -> dict:
        return self._client.call(
            "RedeemGridCheque",
            cheque=cheque.to_dict(),
            payee_account=payee_account,
            charge=charge,
            rur_blob=rur_blob,
        )

    def redeem_cheque_batch(
        self, items: Sequence[tuple[GridCheque, str, Credits, bytes]]
    ) -> list[dict]:
        return self._client.call(
            "RedeemGridChequeBatch",
            items=[
                {
                    "cheque": cheque.to_dict(),
                    "payee_account": payee_account,
                    "charge": charge,
                    "rur_blob": rur_blob,
                }
                for cheque, payee_account, charge, rur_blob in items
            ],
        )

    def redeem_cheque_batch_pipelined(
        self, items: Sequence[tuple[GridCheque, str, Credits, bytes]], window: int = 32
    ) -> list[dict]:
        """Redeem many cheques as independent pipelined ``RedeemGridCheque``
        calls on one connection.

        Same per-item result shape as :meth:`redeem_cheque_batch` (``ok``/
        ``position``/settlement fields), but instead of one large request
        executed serially inside the bank, up to *window* redemptions are
        in flight at once and the server overlaps their signature checks
        and settlements on its worker pool. A rejected cheque yields an
        ``ok: False`` entry; a transport failure aborts the whole batch
        (unfinished items were never acknowledged — their idempotency
        keys make a replay through ``call()`` safe).
        """
        results: list[dict] = []
        with self._client.pipeline(window) as pl:
            calls = [
                pl.submit(
                    "RedeemGridCheque",
                    cheque=cheque.to_dict(),
                    payee_account=payee_account,
                    charge=charge,
                    rur_blob=rur_blob,
                )
                for cheque, payee_account, charge, rur_blob in items
            ]
            for position, call in enumerate(calls):
                try:
                    settled = call.result()
                except TransportError:
                    raise
                except ReproError as exc:
                    results.append(
                        {
                            "ok": False,
                            "position": position,
                            "cheque_id": items[position][0].cheque_id,
                            "transaction_id": None,
                            "paid": Credits(0),
                            "released": Credits(0),
                            "error_type": type(exc).__name__,
                            "error": str(exc),
                        }
                    )
                else:
                    results.append({"ok": True, "position": position, **settled})
        return results

    def cancel_cheque(self, cheque: GridCheque) -> Credits:
        return self._client.call("CancelGridCheque", cheque=cheque.to_dict())["released"]

    # -- pay as you go (GridHash) ----------------------------------------------------------

    def request_hashchain(
        self,
        account_id: str,
        payee_subject: str,
        length: int,
        link_value: Credits,
    ) -> HashChainWallet:
        """Generate a chain locally and have the bank commit to it."""
        chain = HashChain(length, rng=self._rng)
        result = self._client.call(
            "RequestGridHash",
            account_id=account_id,
            payee_subject=payee_subject,
            root=chain.root,
            length=length,
            link_value=link_value,
        )
        commitment = GridHashCommitment.from_dict(result["commitment"])
        commitment.verify(self.bank_public_key)
        return HashChainWallet(chain, commitment)

    def redeem_hashchain(
        self,
        commitment: GridHashCommitment,
        payee_account: str,
        tick: Optional[PaymentTick],
        rur_blob: bytes = b"",
    ) -> dict:
        return self._client.call(
            "RedeemGridHash",
            commitment=commitment.to_dict(),
            payee_account=payee_account,
            index=tick.index if tick is not None else 0,
            link=tick.link if tick is not None else b"",
            rur_blob=rur_blob,
        )

    def redeem_hashchain_batch_pipelined(
        self,
        items: Sequence[tuple[GridHashCommitment, str, Optional[PaymentTick], bytes]],
        window: int = 32,
    ) -> list[dict]:
        """Settle many hash-chain commitments as pipelined ``RedeemGridHash``
        calls — the pay-as-you-go mirror of
        :meth:`redeem_cheque_batch_pipelined`, same ``ok``-tagged entries.
        """
        results: list[dict] = []
        with self._client.pipeline(window) as pl:
            calls = [
                pl.submit(
                    "RedeemGridHash",
                    commitment=commitment.to_dict(),
                    payee_account=payee_account,
                    index=tick.index if tick is not None else 0,
                    link=tick.link if tick is not None else b"",
                    rur_blob=rur_blob,
                )
                for commitment, payee_account, tick, rur_blob in items
            ]
            for position, call in enumerate(calls):
                try:
                    settled = call.result()
                except TransportError:
                    raise
                except ReproError as exc:
                    results.append(
                        {
                            "ok": False,
                            "position": position,
                            "commitment_id": items[position][0].commitment_id,
                            "transaction_id": None,
                            "paid": Credits(0),
                            "released": Credits(0),
                            "links_redeemed": 0,
                            "error_type": type(exc).__name__,
                            "error": str(exc),
                        }
                    )
                else:
                    results.append({"ok": True, "position": position, **settled})
        return results

    def pipeline(self, window: int = 32):
        """Raw pipelined-call context on the underlying client (see
        :meth:`repro.net.rpc.RPCClient.pipeline`) for callers composing
        their own batches, e.g. the charging module's bulk settlement."""
        return self._client.pipeline(window)

    # -- misc ------------------------------------------------------------------------------

    def ping(self) -> bool:
        """Cheap liveness probe: a ``BankInfo`` round trip.

        Used as the half-open trial call by circuit-breaker wiring — it is
        read-only, so probing a possibly-broken service has no effects.
        """
        info = self._client.call("BankInfo")
        return info["subject"] == self.bank_subject

    def estimate_price(self, description) -> Credits:
        return self._client.call(
            "EstimatePrice",
            description={
                "cpu_speed_mips": description.cpu_speed_mips,
                "num_processors": description.num_processors,
                "memory_mb": description.memory_mb,
                "storage_gb": description.storage_gb,
                "bandwidth_mbps": description.bandwidth_mbps,
            },
        )["unit_price"]

    # -- admin (sec 5.2.1) ---------------------------------------------------------------------

    def admin_deposit(self, account_id: str, amount: Credits) -> int:
        return self._client.call("Admin.Deposit", account_id=account_id, amount=amount)[
            "transaction_id"
        ]

    def admin_withdraw(self, account_id: str, amount: Credits) -> int:
        return self._client.call("Admin.Withdraw", account_id=account_id, amount=amount)[
            "transaction_id"
        ]

    def admin_change_credit_limit(self, account_id: str, credit_limit: Credits) -> None:
        self._client.call(
            "Admin.ChangeCreditLimit", account_id=account_id, credit_limit=credit_limit
        )

    def admin_cancel_transfer(self, transaction_id: int) -> int:
        return self._client.call("Admin.CancelTransfer", transaction_id=transaction_id)[
            "compensating_transaction_id"
        ]

    def admin_close_account(self, account_id: str, transfer_to: str = "") -> Credits:
        return self._client.call(
            "Admin.CloseAccount", account_id=account_id, transfer_to=transfer_to
        )["outstanding_balance"]

    def close(self) -> None:
        self._client.close()
