"""Operating models — sec 4 of the paper.

:class:`CooperativeCommunity` reproduces Figure 4: participants both
provide and consume services, settle everything through GridBank, and the
accounts show how much each client consumed and provided. The community
pricing authority (sec 4.1: "A community based resource valuation and
pricing authority is needed to control prices") values each resource in
proportion to its speed, so a job costs the same G$ wherever it runs —
"although computations on some resources are faster because of better
hardware, the slower resources have to compensate by running longer".

:class:`CompetitiveMarket` implements sec 4.2: providers solicit open
prices (commodity-market adjustment on utilization), consumers chase the
cheapest adequate listing through the GMD, and GridBank's
:class:`~repro.bank.pricing.PriceEstimator` learns market value from the
settled transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bank.pricing import PriceEstimator
from repro.core.economy import adjust_price, equilibrium_drift, gini_coefficient
from repro.core.rates import ServiceRatesRecord
from repro.core.session import GridSession, Participant, PaymentStrategy
from repro.errors import ValidationError
from repro.grid.job import Job
from repro.sim.distributions import Distributions
from repro.util.money import Credits, ZERO

__all__ = ["CooperativeCommunity", "CommunityLedger", "CompetitiveMarket", "MarketRoundReport"]


@dataclass
class CommunityLedger:
    """Per-participant consumed/provided totals — Figure 4's account view."""

    consumed: dict[str, Credits]
    provided: dict[str, Credits]
    balances: dict[str, Credits]
    initial_allocation: Credits

    def net_positions(self) -> dict[str, Credits]:
        return {
            name: self.provided[name] - self.consumed[name] for name in self.consumed
        }

    def drift(self) -> float:
        return equilibrium_drift(self.net_positions(), self.initial_allocation)

    def gini(self) -> float:
        return gini_coefficient([b.to_float() for b in self.balances.values()])


class CooperativeCommunity:
    """N participants bartering compute through GridBank (sec 4.1)."""

    def __init__(
        self,
        session: GridSession,
        participant_specs: list[dict],
        initial_credits: float = 1000.0,
        base_rate_per_cpu_hour: float = 6.0,
        reference_mips: float = 500.0,
        seed: int = 0,
    ) -> None:
        if len(participant_specs) < 2:
            raise ValidationError("a community needs at least two participants")
        self.session = session
        self.initial_credits = Credits(initial_credits)
        self.dist = Distributions(seed)
        self.members: list[Participant] = []
        for spec in participant_specs:
            mips = spec.get("mips_per_pe", reference_mips)
            # community valuation: G$/CPU-hour proportional to speed, so
            # cost per MI is uniform across heterogeneous hardware
            rate = base_rate_per_cpu_hour * (mips / reference_mips)
            member = session.add_provider(
                spec["name"],
                ServiceRatesRecord.flat(cpu_per_hour=rate),
                num_pes=spec.get("num_pes", 4),
                mips_per_pe=mips,
                funds=initial_credits,
                org=spec.get("org", "Co-op"),
            )
            self.members.append(member)
        self.consumed: dict[str, Credits] = {m.name: ZERO for m in self.members}
        self.provided: dict[str, Credits] = {m.name: ZERO for m in self.members}
        self._job_counter = 0

    def _next_job(self, consumer: Participant, length_mi: float) -> Job:
        self._job_counter += 1
        return Job(
            job_id=f"coop-{self._job_counter:05d}",
            user_subject=consumer.subject,
            application_name="community-workload",
            length_mi=length_mi,
            memory_mb=32.0,
        )

    def run_round(self, job_length_mi: float = 90_000.0) -> None:
        """Every member submits one job to the next member (ring order)."""
        n = len(self.members)
        for i, consumer in enumerate(self.members):
            provider = self.members[(i + 1) % n]
            job = self._next_job(consumer, job_length_mi)
            outcome = self.session.run_job(
                consumer, provider, job, strategy=PaymentStrategy.PAY_AFTER_USE
            )
            self.consumed[consumer.name] = self.consumed[consumer.name] + outcome.paid
            self.provided[provider.name] = self.provided[provider.name] + outcome.paid

    def run(self, rounds: int, job_length_mi: float = 90_000.0) -> CommunityLedger:
        for _ in range(rounds):
            self.run_round(job_length_mi=job_length_mi)
        return self.ledger()

    def ledger(self) -> CommunityLedger:
        return CommunityLedger(
            consumed=dict(self.consumed),
            provided=dict(self.provided),
            balances={m.name: m.balance() for m in self.members},
            initial_allocation=self.initial_credits,
        )


@dataclass
class MarketRoundReport:
    round_number: int
    prices: dict[str, float]          # provider -> G$/CPU-hour
    jobs_won: dict[str, int]
    utilization: dict[str, float]
    estimator_error: Optional[float]  # |estimate - realized| / realized


class CompetitiveMarket:
    """Open-market providers vs price-chasing consumers (sec 4.2)."""

    def __init__(
        self,
        session: GridSession,
        provider_specs: list[dict],
        consumer_names: list[str],
        consumer_funds: float = 5000.0,
        target_utilization: float = 0.5,
        sensitivity: float = 0.4,
        seed: int = 0,
    ) -> None:
        if not provider_specs or not consumer_names:
            raise ValidationError("market needs providers and consumers")
        self.session = session
        self.dist = Distributions(seed)
        self.target_utilization = target_utilization
        self.sensitivity = sensitivity
        self.providers: list[Participant] = []
        self.prices: dict[str, Credits] = {}
        for spec in provider_specs:
            price = Credits(spec.get("cpu_rate", 5.0))
            provider = session.add_provider(
                spec["name"],
                ServiceRatesRecord.flat(cpu_per_hour=price.to_float()),
                num_pes=spec.get("num_pes", 4),
                mips_per_pe=spec.get("mips_per_pe", 500.0),
                org=spec.get("org", "Market"),
            )
            self.providers.append(provider)
            self.prices[provider.name] = price
        self.consumers = [session.add_consumer(n, funds=consumer_funds) for n in consumer_names]
        self.estimator = PriceEstimator(k=3)
        self.rounds: list[MarketRoundReport] = []
        self._job_counter = 0

    def _cheapest_provider(self) -> Participant:
        listings = self.session.gmd.query(sort_by_price=True)
        by_name = {p.provider.resource.name: p for p in self.providers}
        for listing in listings:
            provider = by_name.get(listing.resource_name)
            if provider is not None:
                return provider
        raise ValidationError("no providers advertised")

    def run_round(self, job_length_mi: float = 60_000.0) -> MarketRoundReport:
        jobs_won = {p.name: 0 for p in self.providers}
        estimator_error = None
        for consumer in self.consumers:
            provider = self._cheapest_provider()
            self._job_counter += 1
            job = Job(
                job_id=f"mkt-{self._job_counter:05d}",
                user_subject=consumer.subject,
                application_name="market-workload",
                length_mi=job_length_mi,
                memory_mb=32.0,
            )
            outcome = self.session.run_job(
                consumer, provider, job, strategy=PaymentStrategy.PAY_AFTER_USE
            )
            jobs_won[provider.name] += 1
            # feed the bank's confidential estimator with the realized
            # unit price (G$ per CPU-hour)
            cpu_hours = outcome.service.rur.usage.cpu_time_s / 3600.0
            if cpu_hours > 0 and outcome.paid > ZERO:
                realized = Credits(outcome.paid.to_float() / cpu_hours)
                description = provider.provider.resource.description()
                if self.estimator.history_size >= 3:
                    estimate = self.estimator.estimate(description)
                    estimator_error = abs(estimate.to_float() - realized.to_float()) / max(
                        realized.to_float(), 1e-9
                    )
                self.estimator.observe(description, realized)

        utilization: dict[str, float] = {}
        for provider in self.providers:
            gsp = provider.provider
            capacity = gsp.resource.num_pes
            utilization[provider.name] = min(1.0, jobs_won[provider.name] / capacity)
            new_price = adjust_price(
                self.prices[provider.name],
                utilization[provider.name],
                target_utilization=self.target_utilization,
                sensitivity=self.sensitivity,
            )
            self.prices[provider.name] = new_price
            gsp.trade_server.posted_rates = ServiceRatesRecord.flat(
                cpu_per_hour=new_price.to_float()
            )
            gsp.refresh_advertisement(self.session.gmd)

        report = MarketRoundReport(
            round_number=len(self.rounds) + 1,
            prices={name: price.to_float() for name, price in self.prices.items()},
            jobs_won=jobs_won,
            utilization=utilization,
            estimator_error=estimator_error,
        )
        self.rounds.append(report)
        return report

    def run(self, rounds: int, job_length_mi: float = 60_000.0) -> list[MarketRoundReport]:
        for _ in range(rounds):
            self.run_round(job_length_mi=job_length_mi)
        return self.rounds
