"""GridSession — the Figure-1 world and its end-to-end use case.

Builds a complete GASA deployment on one discrete-event simulator: a CA
and trust store, a GridBank server reachable over the in-process secure
transport, an administrator, a Grid Market Directory, and any number of
consumers (GSCs) and providers (GSPs). :meth:`run_job` then executes the
paper's sec 2 use case for one job under any of the three payment
strategies, returning what each side saw plus the transport's message
counts — the quantities the strategy benchmarks compare.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.bank.server import GridBankServer
from repro.core.api import GridBankAPI
from repro.core.charging import ChargeCalculation
from repro.core.rates import ServiceRatesRecord
from repro.errors import PaymentError, ValidationError
from repro.grid.gsp import GridServiceProvider, ServiceSession
from repro.grid.job import Job, JobStatus
from repro.grid.market import GridMarketDirectory
from repro.grid.resource import GridResource
from repro.grid.scheduler import SchedulingPolicy
from repro.grid.trade import PricingModel
from repro.net.retry import RetryPolicy
from repro.net.rpc import RPCClient
from repro.net.transport import FaultPlan, InProcessNetwork
from repro.pki.ca import CertificateAuthority, Identity
from repro.pki.certificate import DistinguishedName
from repro.pki.validation import CertificateStore
from repro.sim.engine import Simulator
from repro.util.gbtime import VirtualClock
from repro.util.money import Credits, ZERO

__all__ = ["PaymentStrategy", "Participant", "SessionOutcome", "GridSession"]


class PaymentStrategy(enum.Enum):
    """The three charging policies of sec 3.1."""

    PAY_BEFORE_USE = "pay-before-use"
    PAY_AS_YOU_GO = "pay-as-you-go"
    PAY_AFTER_USE = "pay-after-use"


@dataclass
class Participant:
    """A principal with a bank account; may also own a provider side."""

    name: str
    identity: Identity
    api: GridBankAPI
    account_id: str
    host: str
    provider: Optional[GridServiceProvider] = None

    @property
    def subject(self) -> str:
        return self.identity.subject

    def balance(self) -> Credits:
        return self.api.check_balance(self.account_id)


@dataclass
class SessionOutcome:
    """What one run_job produced, for both sides of the trade."""

    job: Job
    strategy: PaymentStrategy
    charge: Credits          # GSP-calculated rates x usage
    paid: Credits            # what actually moved to the GSP
    refunded: Credits        # reservation released back to the consumer
    bank_messages: int       # transport messages exchanged with the bank
    negotiation_rounds: int
    wall_clock_s: float
    calculation: Optional[ChargeCalculation]
    service: Optional[ServiceSession]


class GridSession:
    def __init__(
        self,
        seed: int = 0,
        bank_funds_per_user: float = 0.0,
        faults: Optional[FaultPlan] = None,
        retry_attempts: int = 0,
    ) -> None:
        """*faults* injects network failures between every participant and
        the bank; *retry_attempts* > 0 gives each bank client a seeded
        :class:`~repro.net.retry.RetryPolicy` (exactly-once re-sends), which
        is what lets a session complete under an aggressive fault plan."""
        self.rng = random.Random(seed)
        self.clock = VirtualClock()
        self.sim = Simulator(clock=self.clock)
        self.ca = CertificateAuthority(
            DistinguishedName("GridBank", "Root CA"),
            clock=self.clock,
            rng=random.Random(self.rng.getrandbits(32)),
            key_bits=512,
        )
        self.store = CertificateStore([self.ca.root_certificate])
        bank_ident = self.ca.issue_identity(
            DistinguishedName("GridBank", "server"), key_bits=512
        )
        self.bank = GridBankServer(
            bank_ident,
            self.store,
            clock=self.clock,
            rng=random.Random(self.rng.getrandbits(32)),
        )
        if faults is not None and faults.clock is None:
            faults.clock = self.clock
        self._retry_attempts = retry_attempts
        self.network = InProcessNetwork(faults=faults)
        self.network.listen("gridbank", self.bank.connection_handler)
        self.gmd = GridMarketDirectory()
        admin_ident = self.ca.issue_identity(DistinguishedName("GridBank", "admin"), key_bits=512)
        self.bank.admin.add_administrator(admin_ident.subject)
        self.admin_api = self._bank_api(admin_ident)
        self.participants: dict[str, Participant] = {}
        self._default_funds = bank_funds_per_user

    # -- construction -----------------------------------------------------------

    def _bank_api(self, identity: Identity) -> GridBankAPI:
        policy = None
        if self._retry_attempts > 0:
            policy = RetryPolicy(
                max_attempts=self._retry_attempts,
                rng=random.Random(self.rng.getrandbits(32)),
            )
        client = RPCClient(
            self.network.connect("gridbank"),
            identity,
            self.store,
            clock=self.clock,
            rng=random.Random(self.rng.getrandbits(32)),
            retry_policy=policy,
            reconnect=lambda: self.network.connect("gridbank"),
        )
        client.connect()
        return GridBankAPI(client, rng=random.Random(self.rng.getrandbits(32)))

    def add_consumer(self, name: str, funds: Optional[float] = None, org: str = "VO-A") -> Participant:
        """A GSC: identity + funded bank account."""
        if name in self.participants:
            raise ValidationError(f"participant {name!r} already exists")
        identity = self.ca.issue_identity(DistinguishedName(org, name), key_bits=512)
        api = self._bank_api(identity)
        account_id = api.create_account(organization_name=org)
        amount = funds if funds is not None else self._default_funds
        if amount > 0:
            self.admin_api.admin_deposit(account_id, Credits(amount))
        participant = Participant(
            name=name, identity=identity, api=api, account_id=account_id,
            host=f"{name}.{org.lower()}.example.org",
        )
        self.participants[name] = participant
        return participant

    def add_provider(
        self,
        name: str,
        rates: ServiceRatesRecord,
        num_pes: int = 8,
        mips_per_pe: float = 500.0,
        funds: float = 0.0,
        org: str = "VO-B",
        scheduling_policy: SchedulingPolicy = SchedulingPolicy.SPACE_SHARED,
        pricing_model: PricingModel = PricingModel.POSTED_PRICE,
        pool_size: int = 16,
        advertise: bool = True,
        failure_rate: float = 0.0,
        **resource_kwargs,
    ) -> Participant:
        """A GSP: identity, account, resource, scheduler, GTS, GBCM."""
        participant = self.add_consumer(name, funds=funds, org=org)
        resource = GridResource.cluster(
            f"{name}.{org.lower()}.example.org",
            participant.subject,
            num_pes=num_pes,
            mips_per_pe=mips_per_pe,
            **resource_kwargs,
        )
        provider = GridServiceProvider(
            self.sim,
            participant.identity,
            resource,
            participant.api,
            participant.account_id,
            rates,
            scheduling_policy=scheduling_policy,
            pricing_model=pricing_model,
            pool_size=pool_size,
            failure_rate=failure_rate,
            rng=random.Random(self.rng.getrandbits(32)),
        )
        participant.provider = provider
        if advertise:
            provider.advertise(self.gmd)
        return participant

    # -- the Figure-1 use case ----------------------------------------------------------

    def estimate_cost(self, gsp: GridServiceProvider, job: Job, rates: ServiceRatesRecord) -> Credits:
        cpu_hours = job.runtime_on(gsp.resource.mips_per_pe) / 3600.0
        wall_hours = cpu_hours  # dedicated-PE estimate
        return rates.estimate_job_cost(
            cpu_hours=cpu_hours,
            io_mb=job.total_io_mb,
            memory_mb_hours=job.memory_mb * wall_hours,
        )

    def run_job(
        self,
        consumer: Participant,
        provider: Participant,
        job: Job,
        strategy: PaymentStrategy = PaymentStrategy.PAY_AFTER_USE,
        budget: Optional[Credits] = None,
        bid_fraction: Optional[float] = None,
        payg_tick_seconds: float = 60.0,
    ) -> SessionOutcome:
        """One complete consumer->broker->GSP->bank interaction."""
        gsp = provider.provider
        if gsp is None:
            raise ValidationError(f"participant {provider.name!r} is not a provider")
        messages_before = self.network.stats.messages_sent
        start_time = self.sim.now

        # 1. establish the cost of services (GTS negotiation)
        negotiation = gsp.negotiate(bid_fraction=bid_fraction)
        rates = negotiation.rates
        estimate = self.estimate_cost(gsp, job, rates)
        reserve = budget if budget is not None else estimate * 2 + Credits(0.01)

        # 2. obtain a payment instrument and get admitted
        paid = ZERO
        refunded = ZERO
        if strategy is PaymentStrategy.PAY_AFTER_USE:
            cheque = consumer.api.request_cheque(consumer.account_id, gsp.subject, reserve)
            gsp.admit(consumer.subject, cheque)
        elif strategy is PaymentStrategy.PAY_AS_YOU_GO:
            link_value = rates.total_charge(
                _unit_usage(payg_tick_seconds, gsp.resource.mips_per_pe, job)
            )
            if link_value <= ZERO:
                link_value = Credits(0.000001)
            length = max(1, int(math.ceil(reserve.micro / link_value.micro)))
            wallet = consumer.api.request_hashchain(
                consumer.account_id, gsp.subject, length, link_value
            )
            gsp.admit(consumer.subject, wallet.commitment)
            self.sim.spawn(
                _payg_payer(self.sim, gsp, wallet, job, payg_tick_seconds),
                name=f"payer-{job.job_id}",
            )
        else:  # PAY_BEFORE_USE: fixed price, funds transferred up front
            price = estimate
            if price <= ZERO:
                price = Credits(0.000001)
            consumer.api.request_direct_transfer(
                consumer.account_id,
                provider.account_id,
                price,
                recipient_address=gsp.address,
            )
            confirmations = provider.api.fetch_confirmations(gsp.address)
            if not confirmations or confirmations[-1].amount < price:
                raise PaymentError("pay-before-use confirmation missing or short")
            paid = price
            gsp.admit(consumer.subject, None)

        # 3-5. execute, meter, charge, settle
        process = self.sim.spawn(
            gsp.serve_job(job, rates, user_host=consumer.host), name=f"serve-{job.job_id}"
        )
        self.sim.run()
        service: ServiceSession = process.result
        settlement = service.settlement
        if strategy is not PaymentStrategy.PAY_BEFORE_USE:
            paid = settlement.get("paid", ZERO)
            refunded = settlement.get("released", ZERO)

        return SessionOutcome(
            job=job,
            strategy=strategy,
            charge=service.calculation.total,
            paid=paid,
            refunded=refunded,
            bank_messages=self.network.stats.messages_sent - messages_before,
            negotiation_rounds=negotiation.rounds,
            wall_clock_s=self.sim.now - start_time,
            calculation=service.calculation,
            service=service,
        )


def _unit_usage(tick_seconds: float, mips: float, job: Job):
    """Usage consumed per PAYG tick: CPU at full rate for tick_seconds."""
    from repro.rur.record import UsageVector

    hours = tick_seconds / 3600.0
    return UsageVector(
        cpu_time_s=tick_seconds,
        wall_clock_s=tick_seconds,
        memory_mb_h=job.memory_mb * hours,
    )


def _payg_payer(sim, gsp: GridServiceProvider, wallet, job: Job, tick_seconds: float):
    """Reveal one hash link per tick while the job runs (sec 3.1:
    "dynamically pay service providers for CPU time")."""
    terminal = (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)
    while job.status not in terminal and wallet.remaining > 0:
        # pay for the upcoming tick in advance, then let it elapse
        tick = wallet.pay()
        gsp.gbcm.accept_tick(job.user_subject, tick)
        yield tick_seconds
    return wallet.spent
