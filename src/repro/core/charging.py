"""GridBank Charging Module (GBCM) — the GSP-side accountant.

Per the paper's conclusion, GBCM "is responsible for determining
legitimacy of payment instruments passed to it by the GridBank Payment
Module, setting up and removing (after execution of user application)
temporary local accounts, calculating total charge using the Resource
Usage Record and the service rates passed by the Grid Trade Service, and
redeeming the payment with the GridBank server."

The charge calculation, rates and RUR are signed by the GSP "to provide
non-repudiation of the transaction" (sec 2.1) and submitted with the
payment instrument for processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.api import GridBankAPI
from repro.core.rates import ServiceRatesRecord
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signature import Signed
from repro.errors import InstrumentError, SignatureError, ValidationError
from repro.grid.accounts_pool import TemplateAccountPool
from repro.obs import metrics as obs_metrics
from repro.payments.cheque import GridCheque
from repro.payments.hashchain import GridHashCommitment, HashChainVerifier, PaymentTick
from repro.pki.ca import Identity
from repro.rur.formats import to_blob
from repro.rur.record import ResourceUsageRecord
from repro.util.money import Credits, ZERO

__all__ = ["ChargeCalculation", "GridBankChargingModule"]


@dataclass(frozen=True)
class ChargeCalculation:
    """The signed (calculation + rates + RUR) bundle of sec 2.1."""

    signed: Signed

    @property
    def payload(self) -> dict:
        return self.signed.payload

    @property
    def total(self) -> Credits:
        return self.payload["total"]

    @property
    def item_charges(self) -> dict:
        return self.payload["item_charges"]

    @property
    def rur(self) -> ResourceUsageRecord:
        return ResourceUsageRecord.from_dict(self.payload["rur"])

    def verify(self, gsp_key: RSAPublicKey) -> dict:
        if not self.signed.check(gsp_key):
            raise SignatureError("charge calculation: GSP signature invalid")
        return self.payload

    def recompute_check(self) -> None:
        """Anyone (bank, auditor, consumer) can re-derive the total from
        the embedded rates and RUR and compare."""
        rates = ServiceRatesRecord.from_dict(self.payload["rates"])
        rur = self.rur
        expected = rates.total_charge(rur.usage)
        if expected != self.total:
            raise ValidationError(
                f"charge calculation does not match rates x usage: "
                f"claimed {self.total}, recomputed {expected}"
            )


@dataclass
class AdmissionTicket:
    """A consumer admitted to the GSP: instrument + temporary local account.

    ``ref`` distinguishes concurrent engagements of the same consumer (a
    campaign running several jobs at once shares one template account —
    the local account is per *user*, the instrument per *engagement*).
    """

    subject: str
    local_account: str
    instrument: Union[GridCheque, GridHashCommitment, None]
    verifier: Optional[HashChainVerifier] = None  # pay-as-you-go only
    ref: str = ""


class GridBankChargingModule:
    def __init__(
        self,
        gsp_identity: Identity,
        bank_api: GridBankAPI,
        pool: TemplateAccountPool,
        gsp_account_id: str,
    ) -> None:
        self.identity = gsp_identity
        self.bank = bank_api
        self.pool = pool
        self.gsp_account_id = gsp_account_id
        self.admitted: dict[str, AdmissionTicket] = {}  # keyed by engagement ref
        self._subject_engagements: dict[str, int] = {}
        self.charges_settled = 0
        self.revenue = ZERO

    # -- instrument legitimacy + admission (sec 2.3) ---------------------------

    def _validate_instrument(self, subject: str, instrument) -> None:
        if isinstance(instrument, GridCheque):
            payload = instrument.verify(self.bank.bank_public_key)
        elif isinstance(instrument, GridHashCommitment):
            payload = instrument.verify(self.bank.bank_public_key)
        elif instrument is None:
            return  # pay-before-use: confirmation checked separately
        else:
            raise InstrumentError(f"unsupported payment instrument {type(instrument).__name__}")
        if payload["payee_subject"] != self.identity.subject:
            raise InstrumentError("instrument is not made out to this GSP")
        if payload.get("drawer_subject") not in (None, subject):
            raise InstrumentError("instrument drawer does not match the presenting consumer")

    def admit(self, subject: str, instrument=None, ref: str = "") -> AdmissionTicket:
        """Validate the payment instrument and map the consumer to a
        template account ("provided GSC presents a well-formed payment
        instrument, GSP dynamically assigns one of the template accounts").

        *ref* names the engagement (defaults to the subject); concurrent
        engagements of one subject share its template account.
        """
        ref = ref or subject
        if ref in self.admitted:
            raise InstrumentError(f"engagement {ref!r} already admitted")
        self._validate_instrument(subject, instrument)
        local_account = self.pool.assign(subject)  # idempotent per subject
        self._subject_engagements[subject] = self._subject_engagements.get(subject, 0) + 1
        verifier = None
        if isinstance(instrument, GridHashCommitment):
            verifier = HashChainVerifier(instrument, self.bank.bank_public_key)
        ticket = AdmissionTicket(
            subject=subject, local_account=local_account, instrument=instrument,
            verifier=verifier, ref=ref,
        )
        self.admitted[ref] = ticket
        return ticket

    def accept_tick(self, ref: str, tick: PaymentTick) -> Credits:
        """Pay-as-you-go: verify one micropayment offline."""
        ticket = self._ticket(ref)
        if ticket.verifier is None:
            raise InstrumentError("consumer is not paying by hash chain")
        return ticket.verifier.accept(tick)

    def _ticket(self, ref: str) -> AdmissionTicket:
        ticket = self.admitted.get(ref)
        if ticket is None:
            raise InstrumentError(f"engagement {ref!r} was not admitted")
        return ticket

    # -- charge calculation (sec 2.1) -----------------------------------------------

    def calculate_charge(self, rur: ResourceUsageRecord, rates: ServiceRatesRecord) -> ChargeCalculation:
        item_charges = rates.item_charges(rur.usage)
        total = sum(item_charges.values(), ZERO)
        payload = {
            "calculation": "GridCharge",
            "gsp_subject": self.identity.subject,
            "rur": rur.to_dict(),
            "rates": rates.to_dict(),
            "item_charges": item_charges,
            "total": total,
        }
        return ChargeCalculation(
            signed=Signed.make(self.identity.private_key, payload, signer=self.identity.subject)
        )

    # -- settlement -------------------------------------------------------------------

    def settle(
        self,
        ref: str,
        rur: ResourceUsageRecord,
        rates: ServiceRatesRecord,
    ) -> tuple[ChargeCalculation, dict]:
        """Full post-execution flow: calculate, redeem, free the account.

        Returns the signed charge calculation and the bank's redemption
        result. For hash-chain consumers the redeemed amount is what the
        verifier actually received, capped by the calculated charge only
        in the consumer's favour (the GSP cannot take more than was paid).
        """
        ticket = self._ticket(ref)
        calculation = self.calculate_charge(rur, rates)
        rur_blob = to_blob(rur)
        instrument = ticket.instrument
        if isinstance(instrument, GridCheque):
            charge = calculation.total
            if charge > instrument.amount_limit:
                charge = instrument.amount_limit  # guarantee bound (sec 3.4)
            result = self.bank.redeem_cheque(instrument, self.gsp_account_id, charge, rur_blob)
            earned = result["paid"]
        elif isinstance(instrument, GridHashCommitment):
            assert ticket.verifier is not None
            result = self.bank.redeem_hashchain(
                instrument, self.gsp_account_id, ticket.verifier.best_tick, rur_blob
            )
            earned = result["paid"]
        elif instrument is None:
            # pay-before-use: funds already arrived; nothing to redeem
            result = {"paid": ZERO, "prepaid": True}
            earned = ZERO
        else:  # pragma: no cover - admit() already rejects these
            raise InstrumentError("unsupported instrument at settlement")
        self.release(ref)
        self.charges_settled += 1
        self.revenue = self.revenue + earned
        obs_metrics.counter("core.charging.settlements").inc()
        obs_metrics.counter("core.charging.amount_charged").inc(calculation.total.to_float())
        obs_metrics.counter("core.charging.revenue").inc(earned.to_float())
        return calculation, result

    def settle_many(
        self,
        jobs: Sequence[tuple[str, ResourceUsageRecord, ServiceRatesRecord]],
    ) -> list[tuple[ChargeCalculation, dict]]:
        """Settle several engagements in one pipelined bank interaction.

        The charge calculations happen locally as in :meth:`settle`; the
        cheque and hash-chain redemptions then go out as pipelined RPCs on
        one connection, so the bank overlaps their signature checks and
        ledger transactions instead of serializing full round trips.
        Results are in *jobs* order. Unlike per-call :meth:`settle` there
        is no transparent retry inside the pipeline — a transport failure
        raises before any bookkeeping is applied for the affected jobs.
        """
        prepared = []
        for ref, rur, rates in jobs:
            ticket = self._ticket(ref)
            prepared.append((ref, ticket, self.calculate_charge(rur, rates), to_blob(rur)))
        results: list[Optional[dict]] = [None] * len(prepared)
        with self.bank.pipeline() as pl:
            calls = []
            for idx, (_ref, ticket, calculation, rur_blob) in enumerate(prepared):
                instrument = ticket.instrument
                if isinstance(instrument, GridCheque):
                    charge = calculation.total
                    if charge > instrument.amount_limit:
                        charge = instrument.amount_limit
                    calls.append((idx, pl.submit(
                        "RedeemGridCheque",
                        cheque=instrument.to_dict(),
                        payee_account=self.gsp_account_id,
                        charge=charge,
                        rur_blob=rur_blob,
                    )))
                elif isinstance(instrument, GridHashCommitment):
                    assert ticket.verifier is not None
                    tick = ticket.verifier.best_tick
                    calls.append((idx, pl.submit(
                        "RedeemGridHash",
                        commitment=instrument.to_dict(),
                        payee_account=self.gsp_account_id,
                        index=tick.index if tick is not None else 0,
                        link=tick.link if tick is not None else b"",
                        rur_blob=rur_blob,
                    )))
                else:
                    results[idx] = {"paid": ZERO, "prepaid": True}
            for idx, call in calls:
                results[idx] = call.result()
        settled: list[tuple[ChargeCalculation, dict]] = []
        for (ref, _ticket, calculation, _blob), result in zip(prepared, results):
            assert result is not None
            earned = Credits(result.get("paid", ZERO))
            self.release(ref)
            self.charges_settled += 1
            self.revenue = self.revenue + earned
            obs_metrics.counter("core.charging.settlements").inc()
            obs_metrics.counter("core.charging.amount_charged").inc(calculation.total.to_float())
            obs_metrics.counter("core.charging.revenue").inc(earned.to_float())
            settled.append((calculation, result))
        return settled

    def release(self, ref: str) -> None:
        """End an engagement; when the consumer's last engagement ends,
        remove the grid-mapfile association and return the template
        account to the pool."""
        ticket = self.admitted.pop(ref, None)
        if ticket is None:
            return
        subject = ticket.subject
        remaining = self._subject_engagements.get(subject, 1) - 1
        if remaining <= 0:
            self._subject_engagements.pop(subject, None)
            self.pool.release(subject)
        else:
            self._subject_engagements[subject] = remaining
