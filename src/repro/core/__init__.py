"""The paper's primary contribution: the Grid Accounting Services
Architecture glue.

* :mod:`repro.core.rates` — service-rates records with the sec 2.1
  chargeable items and units;
* :mod:`repro.core.charging` — the GridBank Charging Module (GBCM):
  conformance checking, rate x usage cost calculation, GSP-signed charge
  records, redemption;
* :mod:`repro.core.api` — the client-side GridBank API of sec 5.2;
* :mod:`repro.core.session` — the Figure-1 end-to-end use case;
* :mod:`repro.core.models` — co-operative and competitive operating models
  (sec 4);
* :mod:`repro.core.economy` — supply/demand price adjustment and
  equilibrium metrics.
"""

from repro.core.rates import ServiceRatesRecord, BILLING_UNITS
from repro.core.charging import ChargeCalculation, GridBankChargingModule
from repro.core.api import GridBankAPI
from repro.core.session import GridSession, SessionOutcome, PaymentStrategy
from repro.core.models import CooperativeCommunity, CompetitiveMarket
from repro.core.economy import adjust_price, equilibrium_drift, gini_coefficient

__all__ = [
    "ServiceRatesRecord",
    "BILLING_UNITS",
    "ChargeCalculation",
    "GridBankChargingModule",
    "GridBankAPI",
    "GridSession",
    "SessionOutcome",
    "PaymentStrategy",
    "CooperativeCommunity",
    "CompetitiveMarket",
    "adjust_price",
    "equilibrium_drift",
    "gini_coefficient",
]
