"""Computational-economy mechanics (paper sec 1, 4.1).

"when there is less demand for resources, the price is lowered; when
there is high demand, the price is raised. This helps in regulating the
supply-and-demand for access to Grid resources" — implemented as a
multiplicative utilization-tracking price update.

Section 4.1's equilibrium concern — "Otherwise the whole environment will
end up in a state where some participants, who do not require any
services, have all the money while others ... have none" — is quantified
by :func:`equilibrium_drift` and :func:`gini_coefficient` over
participants' net positions.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ValidationError
from repro.util.money import Credits, ZERO

__all__ = ["adjust_price", "equilibrium_drift", "gini_coefficient", "PriceController"]


def adjust_price(
    current: Credits,
    utilization: float,
    target_utilization: float = 0.7,
    sensitivity: float = 0.3,
    floor: Credits = Credits(0.01),
    ceiling: Credits = Credits(1000),
) -> Credits:
    """One supply/demand price step.

    Price moves proportionally to the utilization gap: oversubscribed
    resources (> target) raise prices, undersubscribed ones lower them.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValidationError("utilization must be in [0, 1]")
    if not 0.0 < target_utilization < 1.0:
        raise ValidationError("target utilization must be in (0, 1)")
    if sensitivity <= 0:
        raise ValidationError("sensitivity must be positive")
    factor = 1.0 + sensitivity * (utilization - target_utilization)
    updated = current * factor
    if updated < floor:
        return floor
    if updated > ceiling:
        return ceiling
    return updated


class PriceController:
    """Stateful wrapper a provider uses between rounds."""

    def __init__(self, initial: Credits, **kwargs) -> None:
        self.price = Credits(initial)
        self.kwargs = kwargs
        self.history: list[float] = [self.price.to_float()]

    def update(self, utilization: float) -> Credits:
        self.price = adjust_price(self.price, utilization, **self.kwargs)
        self.history.append(self.price.to_float())
        return self.price


def equilibrium_drift(net_positions: Mapping[str, Credits], initial_allocation: Credits) -> float:
    """Largest |earned - spent| relative to the initial allocation.

    0 means perfect bartering balance (everyone provided exactly as much
    value as they consumed); 1 means someone drifted by their entire
    starting allocation.
    """
    if initial_allocation <= ZERO:
        raise ValidationError("initial allocation must be positive")
    if not net_positions:
        return 0.0
    worst = max(abs(position).micro for position in net_positions.values())
    return worst / initial_allocation.micro


def gini_coefficient(values: Sequence[float]) -> float:
    """Inequality of a wealth distribution: 0 = equal, -> 1 = concentrated."""
    if not values:
        raise ValidationError("gini of empty sequence")
    if any(v < 0 for v in values):
        raise ValidationError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    cumulative = 0.0
    weighted = 0.0
    for i, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += i * value
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
