"""Generator-based discrete-event simulator.

Processes are Python generators. A process may ``yield``:

* a number — hold (advance simulated time) for that many seconds;
* a :class:`Signal` — suspend until the signal fires; the fired value is
  the result of the ``yield``;
* another :class:`Process` — join it; the joined process's return value is
  the result of the ``yield``;
* an acquire request from :class:`SimResource` — suspend until capacity is
  granted.

The simulator drives the shared :class:`~repro.util.gbtime.VirtualClock`,
so bank timestamps, certificate validity and metering windows all advance
consistently with simulated activity.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.errors import ValidationError
from repro.sim.events import EventQueue
from repro.util.gbtime import VirtualClock

__all__ = ["Interrupt", "Signal", "Process", "SimResource", "Simulator"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, reason: Any = None) -> None:
        super().__init__(reason)
        self.reason = reason


class Signal:
    """A one-shot event processes can wait on; carries a value."""

    def __init__(self, simulator: "Simulator", name: str = "") -> None:
        self._sim = simulator
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def wait(self) -> "Signal":
        """Yieldable handle (the signal itself)."""
        return self

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise ValidationError(f"signal {self.name!r} already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim._resume(process, value)

    def _subscribe(self, process: "Process") -> None:
        if self.fired:
            self._sim._resume(process, self.value)
        else:
            self._waiters.append(process)


class _Acquire:
    """Pending capacity request on a SimResource."""

    __slots__ = ("resource", "process", "granted")

    def __init__(self, resource: "SimResource") -> None:
        self.resource = resource
        self.process: Optional[Process] = None
        self.granted = False


class SimResource:
    """Capacity-limited resource with a FIFO wait queue (e.g. cluster PEs)."""

    def __init__(self, simulator: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValidationError("resource capacity must be >= 1")
        self._sim = simulator
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[_Acquire] = deque()

    def acquire(self) -> _Acquire:
        """Yieldable request; resumes the process once capacity is granted."""
        return _Acquire(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise ValidationError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        self._grant_next()

    def _submit(self, request: _Acquire, process: "Process") -> None:
        request.process = process
        self._queue.append(request)
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue and self.in_use < self.capacity:
            request = self._queue.popleft()
            request.granted = True
            self.in_use += 1
            assert request.process is not None
            self._sim._resume(request.process, request)

    @property
    def queued(self) -> int:
        return len(self._queue)


class Process:
    """A running generator inside the simulator."""

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = "") -> None:
        self._sim = simulator
        self._gen = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self._completion = Signal(simulator, name=f"{name}.done")
        self._pending_throw: Optional[BaseException] = None

    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.finished:
            return
        self._pending_throw = Interrupt(reason)
        self._sim._resume(self, None)

    def _step(self, send_value: Any) -> None:
        try:
            if self._pending_throw is not None:
                exc, self._pending_throw = self._pending_throw, None
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupt as exc:
            self._finish(failure=exc)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            if yielded < 0:
                self._finish(failure=ValidationError("negative hold time"))
                return
            self._sim.schedule(yielded, lambda: self._sim._resume(self, None))
        elif isinstance(yielded, Signal):
            yielded._subscribe(self)
        elif isinstance(yielded, Process):
            yielded._completion._subscribe(self)
        elif isinstance(yielded, _Acquire):
            yielded.resource._submit(yielded, self)
        else:
            self._finish(failure=ValidationError(f"process yielded unsupported {yielded!r}"))

    def _finish(self, result: Any = None, failure: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.failure = failure
        self._completion.fire(result)
        if failure is not None and not isinstance(failure, Interrupt):
            self._sim._failures.append((self, failure))


class Simulator:
    """The event loop."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._start_epoch = self.clock.now().epoch
        self._queue = EventQueue()
        self._failures: list[tuple[Process, BaseException]] = []
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Seconds since simulation start."""
        return self.clock.now().epoch - self._start_epoch

    def schedule(self, delay: float, callback, priority: int = 0):
        if delay < 0:
            raise ValidationError("cannot schedule into the past")
        return self._queue.push(self.now + delay, callback, priority)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a process; its first step runs at the current time."""
        process = Process(self, generator, name=name)
        self.schedule(0.0, lambda: process._step(None))
        return process

    def signal(self, name: str = "") -> Signal:
        return Signal(self, name=name)

    def resource(self, capacity: int, name: str = "") -> SimResource:
        return SimResource(self, capacity, name=name)

    def _resume(self, process: Process, value: Any) -> None:
        if process.finished:
            return
        self.schedule(0.0, lambda: process._step(value))

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or simulated *until* is reached.

        Re-raises the first non-interrupt process failure. Returns the final
        simulated time.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.set_epoch(self._start_epoch + until)
                break
            event = self._queue.pop()
            assert event is not None
            if event.time > self.now:
                self.clock.set_epoch(self._start_epoch + event.time)
            self.processed_events += 1
            event.callback()
            if self._failures:
                _proc, failure = self._failures[0]
                raise failure
        if until is not None and self.now < until and self._queue.peek_time() is None:
            self.clock.set_epoch(self._start_epoch + until)
        return self.now
