"""Discrete-event simulation core.

The paper's evaluation environment is a computational Grid; the authors
point to their "GridSim" toolkit for simulating one. This package is the
reproduction's equivalent: a compact generator-based discrete-event engine
(events, processes, signals, capacity-limited resources) driving the
shared :class:`~repro.util.gbtime.VirtualClock`, so the bank, meters and
brokers all see one consistent simulated time line.
"""

from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.engine import Simulator, Process, Signal, SimResource, Interrupt
from repro.sim.distributions import Distributions

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "Simulator",
    "Process",
    "Signal",
    "SimResource",
    "Interrupt",
    "Distributions",
]
