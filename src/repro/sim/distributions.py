"""Seeded random distributions for workload generation.

A thin façade over ``random.Random`` with the distributions the grid
workload generators need, plus a few helpers (bounded draws, weighted
choice). Keeping them on one object means a single seed reproduces an
entire experiment.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.errors import ValidationError

__all__ = ["Distributions"]

T = TypeVar("T")


class Distributions:
    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        if high < low:
            raise ValidationError("uniform: high < low")
        return self.rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        if high < low:
            raise ValidationError("randint: high < low")
        return self.rng.randint(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival times (Poisson arrivals)."""
        if mean <= 0:
            raise ValidationError("exponential mean must be positive")
        return self.rng.expovariate(1.0 / mean)

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Heavy-tailed job sizes (classic for compute workloads)."""
        if alpha <= 0 or minimum <= 0:
            raise ValidationError("pareto parameters must be positive")
        return minimum * self.rng.paretovariate(alpha)

    def normal_clamped(self, mean: float, stddev: float, minimum: float, maximum: float) -> float:
        if maximum < minimum:
            raise ValidationError("normal_clamped: max < min")
        value = self.rng.normalvariate(mean, stddev)
        return min(max(value, minimum), maximum)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValidationError("choice from empty sequence")
        return self.rng.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights) or not items:
            raise ValidationError("weighted_choice: mismatched or empty inputs")
        return self.rng.choices(items, weights=weights, k=1)[0]

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValidationError("probability must be in [0, 1]")
        return self.rng.random() < probability

    def shuffle(self, items: list) -> list:
        """Shuffled copy."""
        out = list(items)
        self.rng.shuffle(out)
        return out
