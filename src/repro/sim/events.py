"""The event queue: a binary heap of timestamped callbacks.

Ties break deterministically by (priority, insertion sequence) so runs with
the same seed replay identically — a requirement for every benchmark that
reports simulated outcomes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ValidationError

__all__ = ["ScheduledEvent", "EventQueue"]


@dataclass(order=True)
class ScheduledEvent:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None], priority: int = 0) -> ScheduledEvent:
        if time != time:
            raise ValidationError("event time must not be NaN")
        event = ScheduledEvent(time=time, priority=priority, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Next non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
