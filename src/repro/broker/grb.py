"""Grid Resource Broker (GRB).

"users submit their applications to Grid Resource Broker, which discovers
resources, negotiates for service costs, performs resource selection,
schedules tasks to resources and monitors task executions" (paper sec 1).

:meth:`run_campaign` is the full consumer-side loop: GMD discovery ->
per-provider GTS negotiation -> deadline/budget allocation planning ->
GBPM payment + submission per job -> simulated execution -> settlement
accounting. Jobs on one provider run concurrently (one template account,
one engagement per job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.broker.gbpm import GridBankPaymentModule
from repro.broker.scheduling import Algorithm, AllocationPlan, ResourceOffer, plan_allocation
from repro.core.session import GridSession, Participant
from repro.errors import ValidationError
from repro.grid.job import Job, JobStatus
from repro.util.money import Credits, ZERO

__all__ = ["CampaignResult", "GridResourceBroker"]


@dataclass
class CampaignResult:
    plan: AllocationPlan
    jobs_done: int
    jobs_total: int
    total_charged: Credits      # sum of GSP charge calculations
    total_paid: Credits         # funds that actually moved
    makespan_s: float
    deadline_s: float
    budget: Credits
    per_resource_jobs: dict[str, int]
    per_resource_paid: dict[str, Credits]
    retries: int = 0            # re-submissions after job failures

    @property
    def within_deadline(self) -> bool:
        return self.makespan_s <= self.deadline_s + 1e-9

    @property
    def within_budget(self) -> bool:
        return self.total_paid <= self.budget


class GridResourceBroker:
    def __init__(self, session: GridSession, consumer: Participant) -> None:
        self.session = session
        self.consumer = consumer
        self.gbpm = GridBankPaymentModule(consumer.api, consumer.account_id)

    # -- discovery + negotiation ---------------------------------------------------

    def discover(self, min_mips: float = 0.0, max_cpu_rate: Optional[Credits] = None) -> list[Participant]:
        """Providers advertised in the GMD, as session participants."""
        listings = self.session.gmd.query(min_mips=min_mips, max_cpu_rate=max_cpu_rate)
        by_resource = {
            p.provider.resource.name: p
            for p in self.session.participants.values()
            if p.provider is not None
        }
        return [by_resource[l.resource_name] for l in listings if l.resource_name in by_resource]

    def collect_offers(
        self, providers: Sequence[Participant], bid_fraction: Optional[float] = None
    ) -> list[tuple[Participant, ResourceOffer]]:
        offers = []
        for provider in providers:
            gsp = provider.provider
            outcome = gsp.negotiate(bid_fraction=bid_fraction)
            offers.append(
                (
                    provider,
                    ResourceOffer(
                        resource_name=gsp.resource.name,
                        mips_per_pe=gsp.resource.mips_per_pe,
                        num_pes=gsp.resource.num_pes,
                        rates=outcome.rates,
                    ),
                )
            )
        return offers

    # -- campaign ---------------------------------------------------------------------

    def run_campaign(
        self,
        jobs: Sequence[Job],
        deadline_s: float,
        budget: Credits,
        algorithm: Algorithm = Algorithm.COST_OPTIMIZATION,
        min_mips: float = 0.0,
        bid_fraction: Optional[float] = None,
        max_retries: int = 0,
    ) -> CampaignResult:
        """Plan, pay and execute *jobs*; failed jobs are re-submitted (and
        re-paid — the GSP already charged for the consumed fraction) up to
        *max_retries* extra rounds."""
        budget = Credits(budget)
        providers = self.discover(min_mips=min_mips)
        if not providers:
            raise ValidationError("no providers discovered")
        provider_offers = self.collect_offers(providers, bid_fraction=bid_fraction)
        offers = [offer for _, offer in provider_offers]
        plan = plan_allocation(jobs, offers, deadline_s, budget, algorithm=algorithm)

        self.gbpm.set_budget(budget)
        provider_by_resource = {offer.resource_name: p for p, offer in provider_offers}
        rates_by_resource = {offer.resource_name: offer.rates for offer in offers}

        start = self.session.sim.now
        processes = []
        retries = 0

        def submit(resource_name: str, job: Job, attempt: int) -> None:
            provider = provider_by_resource[resource_name]
            gsp = provider.provider
            job.status = JobStatus.CREATED
            process = self.gbpm.grid_bank_job_submit(
                gsp,
                self.session.sim,
                job,
                rates_by_resource[resource_name],
                user_host=self.consumer.host,
                ref=f"{job.job_id}#{attempt}",
            )
            processes.append((resource_name, job, process))

        for resource_name, assigned in plan.assignments.items():
            for job in assigned:
                submit(resource_name, job, attempt=0)
        self.session.sim.run()

        for attempt in range(1, max_retries + 1):
            failed: dict[str, str] = {}  # job_id -> resource (dedup: a job
            # appears once per prior attempt in `processes`)
            for resource_name, job, _process in processes:
                if job.status is JobStatus.FAILED:
                    failed[job.job_id] = resource_name
            if not failed:
                break
            jobs_by_id = {job.job_id: job for _r, job, _p in processes}
            for job_id, resource_name in failed.items():
                retries += 1
                submit(resource_name, jobs_by_id[job_id], attempt=attempt)
            self.session.sim.run()

        total_charged = ZERO
        total_paid = ZERO
        done_job_ids: set[str] = set()
        per_resource_jobs: dict[str, int] = {}
        per_resource_paid: dict[str, Credits] = {}
        for resource_name, job, process in processes:
            # every attempt (including failed ones) settled and paid for
            # the resources it consumed
            service = process.result
            if service is None:
                continue
            paid = service.settlement.get("paid", ZERO)
            released = service.settlement.get("released", ZERO)
            self.gbpm.record_refund(released)
            total_charged = total_charged + service.calculation.total
            total_paid = total_paid + paid
            per_resource_paid[resource_name] = per_resource_paid.get(resource_name, ZERO) + paid
            if job.status is JobStatus.DONE and job.job_id not in done_job_ids:
                done_job_ids.add(job.job_id)
                per_resource_jobs[resource_name] = per_resource_jobs.get(resource_name, 0) + 1
        return CampaignResult(
            plan=plan,
            jobs_done=len(done_job_ids),
            jobs_total=len(jobs),
            total_charged=total_charged,
            total_paid=total_paid,
            makespan_s=self.session.sim.now - start,
            deadline_s=deadline_s,
            budget=budget,
            per_resource_jobs=per_resource_jobs,
            per_resource_paid=per_resource_paid,
            retries=retries,
        )
