"""Grid Resource Broker — the consumer side of Figure 1.

A Nimrod-G-like broker: parameterized (sweep) applications, resource
discovery through the GMD, deadline-and-budget constrained scheduling
algorithms (cost-, time- and cost-time-optimization from the GRACE line
of work the paper builds on), and the GridBank Payment Module (GBPM) that
"receives requests for job execution from the Grid Resource Broker,
obtains a payment instrument from the GridBank, forwards the payment to
GBCM and submits the job when GBCM notifies GBPM that a local account has
been set up" (paper conclusion).
"""

from repro.broker.application import Parameter, ParameterizedApplication
from repro.broker.scheduling import (
    Algorithm,
    ResourceOffer,
    AllocationPlan,
    plan_allocation,
)
from repro.broker.gbpm import GridBankPaymentModule
from repro.broker.grb import GridResourceBroker, CampaignResult

__all__ = [
    "Parameter",
    "ParameterizedApplication",
    "Algorithm",
    "ResourceOffer",
    "AllocationPlan",
    "plan_allocation",
    "GridBankPaymentModule",
    "GridResourceBroker",
    "CampaignResult",
]
