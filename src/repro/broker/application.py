"""Parameterized applications — Nimrod-G's workload model.

"Nimrod-G (Grid Resource Broker designed for parameterized applications)"
(paper sec 1): one application template swept over a cartesian product of
parameter values, producing one independent job per combination — the
classic parameter-sweep campaign the broker schedules under deadline and
budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import ValidationError
from repro.grid.job import Job
from repro.sim.distributions import Distributions

__all__ = ["Parameter", "ParameterizedApplication"]


@dataclass(frozen=True)
class Parameter:
    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("parameter needs a name")
        if not self.values:
            raise ValidationError(f"parameter {self.name!r} needs at least one value")


@dataclass
class ParameterizedApplication:
    """An application template plus its sweep parameters."""

    name: str
    base_length_mi: float
    parameters: tuple[Parameter, ...] = ()
    input_mb: float = 0.0
    output_mb: float = 0.0
    memory_mb: float = 64.0
    # multiplicative jitter on job length (heterogeneous task sizes)
    length_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_length_mi <= 0:
            raise ValidationError("application length must be positive")
        if not 0.0 <= self.length_jitter < 1.0:
            raise ValidationError("length jitter must be in [0, 1)")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate parameter names")

    @property
    def job_count(self) -> int:
        count = 1
        for parameter in self.parameters:
            count *= len(parameter.values)
        return count

    def combinations(self) -> list[dict]:
        if not self.parameters:
            return [{}]
        names = [p.name for p in self.parameters]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(p.values for p in self.parameters))
        ]

    def jobs(
        self,
        user_subject: str,
        dist: Optional[Distributions] = None,
        id_prefix: str = "sweep",
    ) -> list[Job]:
        """One job per parameter combination."""
        out = []
        for index, combo in enumerate(self.combinations(), start=1):
            length = self.base_length_mi
            if self.length_jitter > 0:
                rng = dist if dist is not None else Distributions(0)
                length *= rng.uniform(1.0 - self.length_jitter, 1.0 + self.length_jitter)
            out.append(
                Job(
                    job_id=f"{id_prefix}-{index:05d}",
                    user_subject=user_subject,
                    application_name=self.name,
                    length_mi=length,
                    input_mb=self.input_mb,
                    output_mb=self.output_mb,
                    memory_mb=self.memory_mb,
                    parameters=combo,
                )
            )
        return out
