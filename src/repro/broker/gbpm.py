"""GridBank Payment Module (GBPM) — sec 5.3.

The consumer-side payment agent: "GRB interacts with GridBank Payment
Module to manage funds on user's behalf. The user can then set the budget
to prevent overspending." Provides the sec 5.3 API — ``grid-bank-job-
submit`` plus the account operations delegated to the GridBank API — and
enforces the user budget across everything the broker commits to.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.api import GridBankAPI
from repro.core.session import PaymentStrategy
from repro.errors import BudgetExceededError, ValidationError
from repro.net.retry import CircuitBreaker
from repro.payments.cheque import GridCheque
from repro.payments.hashchain import HashChainWallet
from repro.util.money import Credits, ZERO

__all__ = ["GridBankPaymentModule"]


class GridBankPaymentModule:
    def __init__(
        self,
        api: GridBankAPI,
        account_id: str,
        budget: Optional[Credits] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.api = api
        self.account_id = account_id
        self._budget = Credits(budget) if budget is not None else None
        self.breaker = breaker
        self.committed = ZERO   # reserved via instruments / prepayments
        self.refunded = ZERO    # reservations released at settlement

    def _bank(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Invoke a bank call, through the circuit breaker when one is set.

        An open breaker raises :class:`~repro.errors.CircuitOpenError`
        immediately — the broker fails fast instead of stacking retries on
        a bank that is already known to be down.
        """
        if self.breaker is None:
            return fn(*args, **kwargs)
        return self.breaker.call(fn, *args, **kwargs)

    # -- budget management -----------------------------------------------------

    def set_budget(self, budget: Optional[Credits]) -> None:
        """Set (or clear) the user's spending cap."""
        if budget is not None and Credits(budget) < ZERO:
            raise ValidationError("budget must be >= 0")
        self._budget = Credits(budget) if budget is not None else None

    @property
    def budget(self) -> Optional[Credits]:
        return self._budget

    @property
    def spent_or_committed(self) -> Credits:
        return self.committed - self.refunded

    def remaining_budget(self) -> Optional[Credits]:
        if self._budget is None:
            return None
        return self._budget - self.spent_or_committed

    def _reserve(self, amount: Credits) -> None:
        remaining = self.remaining_budget()
        if remaining is not None and amount > remaining:
            raise BudgetExceededError(
                f"reserving {amount} would exceed the remaining budget {remaining}"
            )
        self.committed = self.committed + amount

    def record_refund(self, amount: Credits) -> None:
        """Settlement released part of a reservation back to the user."""
        self.refunded = self.refunded + Credits(amount)

    # -- payment acquisition -----------------------------------------------------

    def obtain_cheque(self, payee_subject: str, amount: Credits) -> GridCheque:
        amount = Credits(amount)
        self._reserve(amount)
        try:
            return self._bank(self.api.request_cheque, self.account_id, payee_subject, amount)
        except Exception:
            self.committed = self.committed - amount
            raise

    def obtain_hashchain(self, payee_subject: str, length: int, link_value: Credits) -> HashChainWallet:
        total = Credits(link_value) * length
        self._reserve(total)
        try:
            return self._bank(
                self.api.request_hashchain, self.account_id, payee_subject, length, link_value
            )
        except Exception:
            self.committed = self.committed - total
            raise

    def pay_before(self, payee_account: str, amount: Credits, recipient_address: str = ""):
        amount = Credits(amount)
        self._reserve(amount)
        try:
            return self._bank(
                self.api.request_direct_transfer,
                self.account_id,
                payee_account,
                amount,
                recipient_address=recipient_address,
            )
        except Exception:
            self.committed = self.committed - amount
            raise

    # -- sec 5.3 convenience mirrors of the GB API ---------------------------------

    def create_new_account(self, organization_name: str = "") -> str:
        return self.api.create_account(organization_name=organization_name)

    def check_balance(self) -> Credits:
        return self.api.check_balance(self.account_id)

    def request_account_details(self) -> dict:
        return self.api.account_details(self.account_id)

    def update_account_details(self, **kwargs) -> dict:
        return self.api.update_account(self.account_id, **kwargs)

    def request_account_statement(self, start, end) -> dict:
        return self.api.account_statement(self.account_id, start, end)

    # -- grid-bank-job-submit ------------------------------------------------------

    def grid_bank_job_submit(
        self,
        gsp,
        sim,
        job,
        rates,
        strategy: PaymentStrategy = PaymentStrategy.PAY_AFTER_USE,
        reserve: Optional[Credits] = None,
        user_host: str = "",
        ref: str = "",
    ):
        """Like globus-job-submit, "but for GridBank-enabled Grid services"
        (sec 5.3): forward the payment to GBCM first, then submit the job
        once the local account is set up. Returns the simulation process
        whose result is the :class:`~repro.grid.gsp.ServiceSession`.

        *ref* names the engagement (default: the job id) — retries of the
        same job use distinct refs so each attempt is paid separately.
        """
        if strategy is not PaymentStrategy.PAY_AFTER_USE:
            raise ValidationError("grid_bank_job_submit currently pays by GridCheque")
        ref = ref or job.job_id
        cpu_hours = job.runtime_on(gsp.resource.mips_per_pe) / 3600.0
        estimate = rates.estimate_job_cost(
            cpu_hours=cpu_hours,
            io_mb=job.total_io_mb,
            memory_mb_hours=job.memory_mb * cpu_hours,
        )
        amount = reserve if reserve is not None else estimate * 2 + Credits(0.01)
        cheque = self.obtain_cheque(gsp.subject, amount)
        # GBCM validates the instrument and sets up the local account...
        gsp.admit(job.user_subject, cheque, ref=ref)
        # ...and GBPM submits the job on notification.
        return sim.spawn(
            gsp.serve_job(job, rates, user_host=user_host, ref=ref),
            name=f"gbjs-{ref}",
        )
