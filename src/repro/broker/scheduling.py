"""Deadline-and-budget constrained scheduling.

The broker's planning step: given N independent jobs, a set of priced
resource offers, a deadline and a budget, decide how many jobs each
resource gets. The three algorithms follow the Nimrod-G/GRACE designs the
paper's economy is built for:

* **cost-optimization** — fill the cheapest resources first, using faster
  (pricier) ones only as the deadline forces it;
* **time-optimization** — finish as early as possible within budget,
  spreading work across everything affordable;
* **cost-time-optimization** — like cost, but among equally-cheap
  resources distribute for speed;
* **round-robin** — the economy-blind baseline the benchmarks compare
  against.

Planning uses per-resource job estimates (runtime from MIPS, cost from
negotiated rates); execution later measures reality.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.rates import ServiceRatesRecord
from repro.errors import BudgetExceededError, DeadlineExceededError, ValidationError
from repro.grid.job import Job
from repro.util.money import Credits, ZERO

__all__ = ["Algorithm", "ResourceOffer", "AllocationPlan", "plan_allocation"]


class Algorithm(enum.Enum):
    COST_OPTIMIZATION = "cost"
    TIME_OPTIMIZATION = "time"
    COST_TIME_OPTIMIZATION = "cost-time"
    ROUND_ROBIN = "round-robin"


@dataclass(frozen=True)
class ResourceOffer:
    """One provider's negotiated offer as the broker sees it."""

    resource_name: str
    mips_per_pe: float
    num_pes: int
    rates: ServiceRatesRecord

    def job_runtime(self, job: Job) -> float:
        return job.runtime_on(self.mips_per_pe)

    def job_cost(self, job: Job) -> Credits:
        cpu_hours = self.job_runtime(job) / 3600.0
        return self.rates.estimate_job_cost(
            cpu_hours=cpu_hours,
            io_mb=job.total_io_mb,
            memory_mb_hours=job.memory_mb * cpu_hours,
        )

    def capacity_within(self, deadline_s: float, job: Job) -> int:
        """How many such jobs fit before the deadline."""
        runtime = self.job_runtime(job)
        if runtime <= 0 or runtime > deadline_s:
            return 0
        return int(deadline_s // runtime) * self.num_pes


@dataclass
class AllocationPlan:
    algorithm: Algorithm
    assignments: dict[str, list[Job]]
    estimated_cost: Credits
    estimated_makespan_s: float

    @property
    def jobs_placed(self) -> int:
        return sum(len(jobs) for jobs in self.assignments.values())


def _makespan(offer_by_name: dict[str, ResourceOffer], assignments: dict[str, list[Job]]) -> float:
    worst = 0.0
    for name, jobs in assignments.items():
        if not jobs:
            continue
        offer = offer_by_name[name]
        total_runtime = sum(offer.job_runtime(job) for job in jobs)
        worst = max(worst, total_runtime / offer.num_pes)
    return worst


def plan_allocation(
    jobs: Sequence[Job],
    offers: Sequence[ResourceOffer],
    deadline_s: float,
    budget: Credits,
    algorithm: Algorithm = Algorithm.COST_OPTIMIZATION,
) -> AllocationPlan:
    """Assign every job to an offer within deadline and budget.

    Raises :class:`DeadlineExceededError` if the pooled capacity cannot
    finish in time, or :class:`BudgetExceededError` if no affordable
    assignment exists.
    """
    if not jobs:
        raise ValidationError("nothing to schedule")
    if not offers:
        raise ValidationError("no resource offers")
    if deadline_s <= 0:
        raise ValidationError("deadline must be positive")

    reference = jobs[0]
    offer_by_name = {offer.resource_name: offer for offer in offers}
    capacities = {o.resource_name: o.capacity_within(deadline_s, reference) for o in offers}
    if sum(capacities.values()) < len(jobs):
        raise DeadlineExceededError(
            f"{len(jobs)} jobs exceed pooled deadline capacity {sum(capacities.values())}"
        )

    if algorithm is Algorithm.ROUND_ROBIN:
        order = [o for o in offers for _ in range(1)]
        assignments: dict[str, list[Job]] = {o.resource_name: [] for o in offers}
        counts = {o.resource_name: 0 for o in offers}
        index = 0
        for job in jobs:
            placed = False
            for _ in range(len(offers)):
                offer = offers[index % len(offers)]
                index += 1
                if counts[offer.resource_name] < capacities[offer.resource_name]:
                    assignments[offer.resource_name].append(job)
                    counts[offer.resource_name] += 1
                    placed = True
                    break
            if not placed:  # pragma: no cover - capacity checked above
                raise DeadlineExceededError("round-robin could not place a job")
    elif algorithm is Algorithm.TIME_OPTIMIZATION:
        assignments = _plan_time_optimized(jobs, offers, offer_by_name)
    else:
        assignments = _plan_cost_ordered(jobs, offers, capacities, algorithm, reference)

    cost = sum(
        (offer_by_name[name].job_cost(job) for name, js in assignments.items() for job in js),
        ZERO,
    )
    if cost > budget:
        raise BudgetExceededError(f"plan costs {cost}, budget is {budget}")
    makespan = _makespan(offer_by_name, assignments)
    if makespan > deadline_s + 1e-9:
        raise DeadlineExceededError(f"plan makespan {makespan:.0f}s exceeds deadline {deadline_s:.0f}s")
    return AllocationPlan(
        algorithm=algorithm,
        assignments=assignments,
        estimated_cost=cost,
        estimated_makespan_s=makespan,
    )


def _plan_cost_ordered(
    jobs: Sequence[Job],
    offers: Sequence[ResourceOffer],
    capacities: dict[str, int],
    algorithm: Algorithm,
    reference: Job,
) -> dict[str, list[Job]]:
    """Cheapest-first fill (cost and cost-time optimization)."""
    if algorithm is Algorithm.COST_TIME_OPTIMIZATION:
        # same cost -> prefer speed, so equally-priced resources share work
        key = lambda o: (o.job_cost(reference).micro, -o.mips_per_pe, o.resource_name)
    else:
        key = lambda o: (o.job_cost(reference).micro, o.resource_name)
    ordered = sorted(offers, key=key)
    assignments: dict[str, list[Job]] = {o.resource_name: [] for o in offers}
    remaining = list(jobs)
    if algorithm is Algorithm.COST_TIME_OPTIMIZATION:
        # group by identical cost; round-robin inside the group
        groups: list[list[ResourceOffer]] = []
        for offer in ordered:
            if groups and groups[-1][0].job_cost(reference) == offer.job_cost(reference):
                groups[-1].append(offer)
            else:
                groups.append([offer])
        for group in groups:
            counts = {o.resource_name: 0 for o in group}
            index = 0
            while remaining:
                progressed = False
                for _ in range(len(group)):
                    offer = group[index % len(group)]
                    index += 1
                    if counts[offer.resource_name] < capacities[offer.resource_name]:
                        assignments[offer.resource_name].append(remaining.pop(0))
                        counts[offer.resource_name] += 1
                        progressed = True
                        break
                if not progressed:
                    break
            if not remaining:
                break
    else:
        for offer in ordered:
            take = min(len(remaining), capacities[offer.resource_name])
            if take:
                assignments[offer.resource_name].extend(remaining[:take])
                remaining = remaining[take:]
            if not remaining:
                break
    if remaining:  # pragma: no cover - pooled capacity checked by caller
        raise DeadlineExceededError("could not place all jobs")
    return assignments


def _plan_time_optimized(
    jobs: Sequence[Job],
    offers: Sequence[ResourceOffer],
    offer_by_name: dict[str, ResourceOffer],
) -> dict[str, list[Job]]:
    """Greedy earliest-finish: each job to the resource that completes it
    soonest given work already assigned there."""
    loads = {o.resource_name: 0.0 for o in offers}  # per-PE busy time
    assignments: dict[str, list[Job]] = {o.resource_name: [] for o in offers}
    for job in jobs:
        best_name = None
        best_finish = math.inf
        for offer in offers:
            runtime = offer.job_runtime(job)
            finish = loads[offer.resource_name] + runtime / offer.num_pes
            if finish < best_finish:
                best_finish = finish
                best_name = offer.resource_name
        assert best_name is not None
        assignments[best_name].append(job)
        loads[best_name] = best_finish
    return assignments
