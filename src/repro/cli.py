"""Command-line interface to a persistent GridBank.

A "bank home" directory holds the bank's CA, identity (certificate +
private key) and the WAL-backed database, so the books survive between
invocations::

    python -m repro.cli init --home ./mybank
    python -m repro.cli create-account --home ./mybank --subject "/O=VO-A/CN=alice"
    python -m repro.cli deposit --home ./mybank --account 01-0001-00000001 --amount 100
    python -m repro.cli transfer --home ./mybank --from-account ... --to-account ... --amount 25
    python -m repro.cli balance --home ./mybank --account 01-0001-00000001
    python -m repro.cli statement --home ./mybank --account 01-0001-00000001
    python -m repro.cli serve --home ./mybank --port 7776   # real TCP service
    python -m repro.cli serve --home ./standby --port 7777 --standby-of 127.0.0.1:7776
    python -m repro.cli promote --credential admin.gbk --address 127.0.0.1:7777
    python -m repro.cli cluster-status --credential admin.gbk --address 127.0.0.1:7777
    python -m repro.cli metrics --home ./mybank [--json]    # observability dump
    python -m repro.cli metrics export --home ./mybank      # Prometheus text
    python -m repro.cli trace show <trace-id> --home ./mybank
    python -m repro.cli trace slowest --home ./mybank -n 10
    python -m repro.cli trace grep redeem --home ./mybank
    python -m repro.cli top --credential admin.gbk \\
        --address 127.0.0.1:7776 --address 127.0.0.1:7777   # cluster telemetry
    python -m repro.cli profile --credential admin.gbk --address 127.0.0.1:7776
    python -m repro.cli debug-bundle --credential admin.gbk \\
        --address 127.0.0.1:7776 --address 127.0.0.1:7777 --out ./bundle

Administrative commands (deposit/withdraw/credit-limit/close) act as the
bank operator — the sec 5.2.1 role of "GridBank's administrators who are
responsible for transferring real money to and from clients".
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path
from typing import Optional

from repro.bank.server import GridBankServer
from repro.crypto.keys import private_key_from_dict, private_key_to_dict
from repro.db.database import Database
from repro.errors import CorruptionError, ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import FileExporter, HTTPExporter, render_prometheus
from repro.obs.logging import configure_from_env
from repro.obs.sampling import SamplingPolicy, SamplingSpanSink
from repro.obs.slo import Objective, SLOEngine
from repro.obs.store import JsonlSpanSink, render_waterfall
from repro.pki.ca import CertificateAuthority, Identity
from repro.pki.certificate import Certificate, DistinguishedName
from repro.pki.validation import CertificateStore
from repro.util.gbtime import SystemClock, Timestamp
from repro.util.money import Credits
from repro.util.serialize import canonical_dumps, canonical_loads

__all__ = ["main"]

_IDENTITY_FILE = "bank-identity.gbk"
_ROOT_FILE = "ca-root.gbk"
_DB_DIR = "db"
_METRICS_FILE = "metrics.json"
_TELEMETRY_FILE = "telemetry.json"


def _save_identity(home: Path, identity: Identity, root: Certificate) -> None:
    (home / _IDENTITY_FILE).write_bytes(
        canonical_dumps(
            {
                "certificate": identity.certificate.to_dict(),
                "private_key": private_key_to_dict(identity.private_key),
            }
        )
    )
    (home / _ROOT_FILE).write_bytes(canonical_dumps(root.to_dict()))


def _load_bank(home: Path, bank_number: int = 1, branch_number: int = 1) -> GridBankServer:
    identity_blob = canonical_loads((home / _IDENTITY_FILE).read_bytes())
    identity = Identity(
        certificate=Certificate.from_dict(identity_blob["certificate"]),
        private_key=private_key_from_dict(identity_blob["private_key"]),
    )
    root = Certificate.from_dict(canonical_loads((home / _ROOT_FILE).read_bytes()))
    store = CertificateStore([root])
    db = Database(path=home / _DB_DIR)
    server = GridBankServer(
        identity, store, db=db, clock=SystemClock(),
        bank_number=bank_number, branch_number=branch_number,
    )
    server.recover()
    return server


def cmd_init(args) -> int:
    home = Path(args.home)
    if (home / _IDENTITY_FILE).exists():
        print(f"error: {home} already holds a bank", file=sys.stderr)
        return 1
    home.mkdir(parents=True, exist_ok=True)
    clock = SystemClock()
    ca = CertificateAuthority(
        DistinguishedName("GridBank", f"CA-{args.bank_number:02d}-{args.branch_number:04d}"),
        clock=clock,
        rng=random.Random(args.seed) if args.seed is not None else None,
        key_bits=args.key_bits,
    )
    identity = ca.issue_identity(
        DistinguishedName("GridBank", f"server-{args.bank_number:02d}-{args.branch_number:04d}"),
        key_bits=args.key_bits,
    )
    _save_identity(home, identity, ca.root_certificate)
    # keep the CA signing key so this home can enroll users (issue-identity)
    (home / "ca-key.gbk").write_bytes(
        canonical_dumps({"private_key": private_key_to_dict(ca._private)})
    )
    db = Database(path=home / _DB_DIR)
    server = GridBankServer(
        identity, CertificateStore([ca.root_certificate]), db=db, clock=clock,
        bank_number=args.bank_number, branch_number=args.branch_number,
    )
    server.recover()
    db.checkpoint()
    db.close()
    print(f"initialized GridBank {args.bank_number:02d}-{args.branch_number:04d} at {home}")
    print(f"bank subject: {identity.subject}")
    return 0


def cmd_init_standby(args) -> int:
    """Create a standby home for an existing bank.

    The standby is the same logical bank running as a second process, so
    it shares the primary home's identity and trust root — a cheque or
    confirmation the primary signed must still verify after a failover.
    Holding the bank's credential is also what authorizes the standby to
    pull the replication stream.
    """
    home = Path(args.home)
    primary_home = Path(args.primary_home)
    if (home / _IDENTITY_FILE).exists():
        print(f"error: {home} already holds a bank", file=sys.stderr)
        return 1
    if not (primary_home / _IDENTITY_FILE).exists():
        print(f"error: {primary_home} holds no bank identity", file=sys.stderr)
        return 1
    home.mkdir(parents=True, exist_ok=True)
    (home / _IDENTITY_FILE).write_bytes((primary_home / _IDENTITY_FILE).read_bytes())
    (home / _ROOT_FILE).write_bytes((primary_home / _ROOT_FILE).read_bytes())
    # no database: the standby's first `serve --standby-of` creates one
    # and bootstraps its contents from the primary's snapshot
    print(f"initialized standby home at {home} (shares {primary_home}'s bank identity)")
    print("start it with: serve --standby-of <primary host:port>")
    return 0


def cmd_create_account(args) -> int:
    bank = _load_bank(Path(args.home))
    account_id = bank.accounts.create_account(
        args.subject, organization_name=args.organization, currency=args.currency
    )
    bank.db.close()
    print(account_id)
    return 0


def cmd_deposit(args) -> int:
    bank = _load_bank(Path(args.home))
    txn = bank.admin.deposit(args.account, Credits(args.amount))
    bank.db.close()
    print(f"deposited G${args.amount} into {args.account} (transaction {txn})")
    return 0


def cmd_withdraw(args) -> int:
    bank = _load_bank(Path(args.home))
    txn = bank.admin.withdraw(args.account, Credits(args.amount))
    bank.db.close()
    print(f"withdrew G${args.amount} from {args.account} (transaction {txn})")
    return 0


def cmd_transfer(args) -> int:
    bank = _load_bank(Path(args.home))
    txn = bank.accounts.transfer(args.from_account, args.to_account, Credits(args.amount))
    bank.db.close()
    print(f"transferred G${args.amount}: {args.from_account} -> {args.to_account} "
          f"(transaction {txn})")
    return 0


def cmd_balance(args) -> int:
    bank = _load_bank(Path(args.home))
    row = bank.accounts.get_account(args.account)
    bank.db.close()
    print(f"account:   {row['AccountID']} ({row['Status']})")
    print(f"subject:   {row['CertificateName']}")
    print(f"available: {Credits(row['AvailableBalance'])}")
    print(f"locked:    {Credits(row['LockedBalance'])}")
    print(f"limit:     {Credits(row['CreditLimit'])}  currency: {row['Currency']}")
    return 0


def cmd_statement(args) -> int:
    bank = _load_bank(Path(args.home))
    start = Timestamp.from_stamp14(args.start) if args.start else Timestamp(0.0)
    end = Timestamp.from_stamp14(args.end) if args.end else bank.clock.now()
    statement = bank.accounts.statement(args.account, start, end)
    bank.db.close()
    print(f"statement for {args.account} [{start.stamp14} .. {end.stamp14}]")
    for entry in statement["transactions"]:
        print(
            f"  {entry['Date']}  txn {entry['TransactionID']:>6}  "
            f"{entry['Type']:<10} {Credits(entry['Amount'])}"
        )
    print(f"{len(statement['transactions'])} transaction(s), "
          f"{len(statement['transfers'])} transfer record(s)")
    return 0


def cmd_accounts(args) -> int:
    bank = _load_bank(Path(args.home))
    rows = bank.accounts.db.select("accounts", order_by="AccountID")
    bank.db.close()
    for row in rows:
        print(f"{row['AccountID']}  {row['Status']:<7} {Credits(row['AvailableBalance'])!s:>14}  "
              f"{row['CertificateName']}")
    print(f"{len(rows)} account(s)")
    return 0


def cmd_add_admin(args) -> int:
    bank = _load_bank(Path(args.home))
    bank.admin.add_administrator(args.subject)
    bank.db.close()
    print(f"administrator added: {args.subject}")
    return 0


def cmd_checkpoint(args) -> int:
    bank = _load_bank(Path(args.home))
    bank.db.checkpoint()
    bank.db.close()
    print("checkpoint written; journal truncated")
    return 0


def _bank_credential(home: Path):
    """The bank home's own identity + trust store — nodes of one logical
    bank share the bank identity, and holding it is what authorizes the
    replication/repair RPCs against a peer."""
    identity_blob = canonical_loads((home / _IDENTITY_FILE).read_bytes())
    identity = Identity(
        certificate=Certificate.from_dict(identity_blob["certificate"]),
        private_key=private_key_from_dict(identity_blob["private_key"]),
    )
    root = Certificate.from_dict(canonical_loads((home / _ROOT_FILE).read_bytes()))
    return identity, CertificateStore([root])


def _fsck_fetch_suffix(client, db_dir: Path, epoch: int, from_seq: int) -> Optional[int]:
    """Re-fetch the quarantined WAL suffix from the peer, verifying every
    record's CRC frame and sequence contiguity before appending the
    peer's bytes verbatim (byte-identity by construction). Returns the
    number of records appended, or ``None`` when the peer cannot serve
    this epoch/position (caller falls back to a full snapshot restore)."""
    from repro.db import integrity
    from repro.db.replication import FETCH_OK

    appended = 0
    wal_file = db_dir / integrity.WAL_NAME
    with open(wal_file, "ab") as handle:
        while True:
            reply = client.call(
                "Replication.Fetch",
                epoch=epoch, from_seq=from_seq, max_records=512, timeout=0.0,
            )
            if reply["status"] != FETCH_OK:
                return None
            records = reply["records"]
            if not records:
                break
            for seq, payload in records:
                seq = int(seq)
                if seq != from_seq + 1:
                    return None  # gap: this position is not servable
                integrity.parse_record(payload.rstrip(b"\n"), seq=seq)
                handle.write(payload)
                from_seq = seq
                appended += 1
            if from_seq >= int(reply["last_seq"]):
                break
        handle.flush()
        os.fsync(handle.fileno())
    return appended


def _fsck_snapshot_restore(client, db_dir: Path) -> int:
    """Full restore: replace snapshot/WAL/epoch with a manifest-verified
    state dump from the peer. Returns the number of restored records."""
    from repro.db import integrity

    reply = client.call("Replication.Snapshot")
    state = reply["state"]
    tables = state["tables"]
    records = sum(len(rows) for rows in tables.values())
    integrity.atomic_write(
        db_dir / integrity.SNAPSHOT_NAME,
        integrity.encode_snapshot(canonical_dumps(tables), records),
    )
    with open(db_dir / integrity.WAL_NAME, "wb") as handle:
        handle.flush()
        os.fsync(handle.fileno())
    integrity.atomic_write(
        db_dir / integrity.EPOCH_NAME,
        b"%d %d" % (int(state["epoch"]), int(state["seq"])),
    )
    return records


def cmd_fsck(args) -> int:
    """Verify a bank home's storage integrity; optionally repair from a peer.

    Without flags: read-only verification (exit 0 clean, 1 corrupt) —
    snapshot manifest, every WAL record's CRC frame, unresolved
    corruption markers. With ``--repair --peer HOST:PORT``: quarantine
    whatever fails verification, re-fetch the damaged WAL suffix from
    the peer (falling back to a full snapshot restore when the suffix is
    no longer servable), clear the refusal marker, re-verify every byte,
    and prove the books still balance by booting the repaired bank and
    summing its funds. The peer must be the cluster's current primary —
    if the *primary* is the corrupt node, promote the standby first.
    """
    from repro.db import integrity
    from repro.net.rpc import RPCClient

    home = Path(args.home)
    db_dir = home / _DB_DIR
    if not db_dir.exists():
        print(f"error: {db_dir} holds no database", file=sys.stderr)
        return 1
    report = integrity.verify_dir(db_dir)
    print(f"fsck {db_dir}: {report.describe()}")
    if report.ok:
        return 0
    if not args.repair:
        print("re-run with --repair --peer HOST:PORT to restore from a healthy peer",
              file=sys.stderr)
        return 1
    if not args.peer:
        print("error: --repair requires --peer HOST:PORT", file=sys.stderr)
        return 1

    identity, store = _bank_credential(home)
    client = RPCClient(_tcp_connect(args.peer), identity, store)
    client.connect()
    try:
        snapshot_ok = True
        snapshot_file = db_dir / integrity.SNAPSHOT_NAME
        if snapshot_file.exists():
            try:
                integrity.decode_snapshot(snapshot_file.read_bytes())
            except ReproError:
                snapshot_ok = False
        if snapshot_ok:
            wal_file = db_dir / integrity.WAL_NAME
            wal_bytes = wal_file.read_bytes() if wal_file.exists() else b""
            scan = integrity.scan_wal(wal_bytes, base_seq=report.base_seq)
            if scan.corruption is not None:
                # recover() quarantines when *it* detects damage; fsck on a
                # never-rebooted home must do the same before re-fetching
                integrity.quarantine_wal_suffix(db_dir, scan.corruption, scan.valid_bytes)
                print(f"quarantined damaged suffix at offset {scan.corruption.offset} "
                      f"(seq {scan.corruption.seq}) -> {integrity.QUARANTINE_NAME}")
            local_seq = report.base_seq + len(scan.records)
            fetched = _fsck_fetch_suffix(client, db_dir, report.epoch, local_seq)
            if fetched is None:
                snapshot_ok = False
            else:
                print(f"re-fetched {fetched} WAL record(s) from {args.peer} "
                      f"(CRC + sequence verified)")
        if not snapshot_ok:
            restored = _fsck_snapshot_restore(client, db_dir)
            print(f"full snapshot restore from {args.peer}: {restored} record(s)")
    finally:
        client.close()

    integrity.clear_marker(db_dir)
    final = integrity.verify_dir(db_dir)
    print(f"re-verify: {final.describe()}")
    if not final.ok:
        print("error: repair did not converge — local medium may be failing",
              file=sys.stderr)
        return 1
    # the books must balance on the repaired bytes, end to end
    bank = _load_bank(home)
    total = bank.accounts.total_bank_funds()
    bank.db.close()
    print(f"repair complete: bank recovers cleanly, total funds {total}")
    return 0


def cmd_issue_identity(args) -> int:
    """Enroll a user: the bank home's CA signs a credential file the user
    can then present to ``remote`` commands (and any GSI service)."""
    home = Path(args.home)
    root = Certificate.from_dict(canonical_loads((home / _ROOT_FILE).read_bytes()))
    ca_file = home / "ca-key.gbk"
    if not ca_file.exists():
        print("error: this bank home has no CA signing key (ca-key.gbk)", file=sys.stderr)
        return 1
    ca_blob = canonical_loads(ca_file.read_bytes())
    from repro.crypto.rsa import generate_keypair
    from repro.pki.certificate import make_body

    ca_private = private_key_from_dict(ca_blob["private_key"])
    keypair = generate_keypair(bits=args.key_bits)
    clock = SystemClock()
    body = make_body(
        subject=str(DistinguishedName(args.organization, args.name)),
        issuer=root.subject,
        serial=int(clock.now().epoch),  # wall-clock serials avoid state here
        public_key=keypair.public,
        not_before=clock.now(),
        lifetime_seconds=args.lifetime_days * 24 * 3600.0,
    )
    certificate = Certificate.issue(body, ca_private)
    out = Path(args.out)
    out.write_bytes(
        canonical_dumps(
            {
                "certificate": certificate.to_dict(),
                "private_key": private_key_to_dict(keypair.private),
                "trust_root": root.to_dict(),
            }
        )
    )
    print(f"credential written to {out}")
    print(f"subject: {certificate.subject}")
    return 0


def _load_credential(path: str):
    blob = canonical_loads(Path(path).read_bytes())
    identity = Identity(
        certificate=Certificate.from_dict(blob["certificate"]),
        private_key=private_key_from_dict(blob["private_key"]),
    )
    store = CertificateStore([Certificate.from_dict(blob["trust_root"])])
    return identity, store


def _remote_api(args):
    from repro.core.api import GridBankAPI
    from repro.net.rpc import RPCClient
    from repro.net.tcp import TCPClientConnection

    identity, store = _load_credential(args.credential)
    host, _, port = args.address.partition(":")
    client = RPCClient(TCPClientConnection((host, int(port))), identity, store)
    client.connect()
    return GridBankAPI(client)


def cmd_remote_create_account(args) -> int:
    api = _remote_api(args)
    account = api.create_account(organization_name=args.organization)
    api.close()
    print(account)
    return 0


def cmd_remote_balance(args) -> int:
    api = _remote_api(args)
    details = api.account_details(args.account)
    api.close()
    print(f"available: {Credits(details['AvailableBalance'])}")
    print(f"locked:    {Credits(details['LockedBalance'])}")
    return 0


def cmd_remote_transfer(args) -> int:
    api = _remote_api(args)
    confirmation = api.request_direct_transfer(
        args.from_account, args.to_account, Credits(args.amount)
    )
    api.close()
    print(f"transferred G${args.amount} (transaction {confirmation.transaction_id})")
    return 0


def _tcp_connect(address: str):
    from repro.net.tcp import TCPClientConnection

    host, _, port = address.partition(":")
    return TCPClientConnection((host, int(port)))


def cmd_serve(args) -> int:
    from repro.bank.cluster import ClusterNode
    from repro.net import frontend_snapshot as _frontend_snapshot
    from repro.net.aio import AsyncTCPServer
    from repro.net.tcp import TCPServer

    home = Path(args.home)
    bank = _load_bank(home)

    # the diagnosis plane is on by default: a sampling profiler at
    # --profile-hz (<5% overhead, asserted by bench_diag) plus a flight
    # recorder whose rings are dumped into --diag-dir when an anomaly
    # trigger fires (SLO page, corruption, deadline storm, unhandled
    # dispatch exception). Exemplar capture rides along so latency
    # buckets link to trace ids.
    diag_plane = None
    if not args.no_diag:
        from repro.obs.diag import DiagPlane

        diag_dir = Path(args.diag_dir) if args.diag_dir else home / "diag"
        diag_plane = DiagPlane(
            profile_hz=args.profile_hz, dump_dir=diag_dir, clock=bank.clock
        ).start()
        obs_metrics.configure_exemplars(True)
        print(f"diagnosis plane: profiler {args.profile_hz:g}hz, "
              f"post-mortems under {diag_dir}")
    # a non-default objective replaces the bank's built-in one; the
    # engine is swapped whole so the dispatch wrapper (which reads
    # bank.slo at call time) picks it up atomically
    if args.slo_target is not None or args.slo_latency is not None:
        bank.slo = SLOEngine(
            clock=bank.clock,
            objectives=(
                Objective(
                    op="*",
                    target=args.slo_target if args.slo_target is not None else 0.999,
                    latency_threshold=(
                        args.slo_latency if args.slo_latency is not None else 0.5
                    ),
                ),
            ),
        )

    # spans served by this process become SPAN rows in the bank's WAL'd
    # database (queryable later with `gridbank trace`), and optionally a
    # JSONL stream for out-of-process collectors. A standby must not
    # write its own rows into the replicated database (every local line
    # desynchronizes the stream), so the db sink only records while this
    # node is the primary — the standby's SPAN rows arrive replicated.
    def _primary_only_spans(record):
        if bank.role != "primary":
            return
        # replication polling is continuous; persisting a span row per
        # poll would grow the WAL at the poll rate forever. Those spans
        # still reach the JSONL sink and the metrics registry.
        name = str(record.get("name", ""))
        method = str(record.get("attrs", {}).get("method", ""))
        if name.startswith("bank.op.replication_") or method.startswith("Replication."):
            return
        # diagnosis-plane collection is operator traffic, not workload —
        # same treatment (the flight recorder still sees these spans)
        if name.startswith("bank.op.diag_") or method.startswith("Diag."):
            return
        # shard plumbing (map fetches, rebalance verbs, resolver sweeps)
        # is inter-node traffic at whatever cadence the topology needs;
        # the cross-shard 2PC span itself (shard.2pc) still persists
        if name.startswith("bank.op.shard_") or method.startswith("Shard."):
            return
        bank.spans(record)

    # adaptive sampling sits in front of the durable store only — the
    # JSONL stream stays complete for out-of-process collectors
    op_rates = {}
    for spec in args.sample_op or ():
        op, sep, rate = spec.partition("=")
        if not sep or not op:
            print(f"error: --sample-op expects OP=RATE, got {spec!r}", file=sys.stderr)
            return 1
        op_rates[op] = float(rate)
    sampler = SamplingSpanSink(
        _primary_only_spans,
        SamplingPolicy(
            default_rate=args.sample_rate,
            op_rates=op_rates,
            slow_percentile=args.slow_percentile,
            slow_threshold=args.slow_threshold,
        ),
    )
    sinks = [sampler]
    if args.span_log:
        sinks.append(JsonlSpanSink(args.span_log))
    for sink in sinks:
        obs_trace.add_sink(sink)

    # /healthz for load balancers: readiness = not paging, and (for a
    # standby under a staleness bound) not lagging past the bound
    state = {"node": None}

    def _health() -> dict:
        node = state["node"]
        lag = node.lag_seconds() if node is not None else 0.0
        alert = bank.slo.worst_state()
        lag_ok = (
            bank.role == "primary"
            or args.staleness_bound is None
            or lag <= args.staleness_bound
        )
        integrity_state = bank.db.integrity_status()
        return {
            "ok": alert != "page" and lag_ok and integrity_state["ok"],
            "role": bank.role,
            "primary_address": bank.primary_address or "",
            "lag_seconds": lag,
            "alert": alert,
            "slo": bank.slo.states(),
            "integrity": integrity_state,
            "net": _frontend_snapshot(),
        }

    exporters = []
    if args.metrics_port is not None:
        http_exporter = HTTPExporter(port=args.metrics_port, health_fn=_health).start()
        exporters.append(http_exporter)
        print(f"metrics scrape endpoint: http://{http_exporter.host}:{http_exporter.port}/metrics")
        print(f"health check endpoint:   http://{http_exporter.host}:{http_exporter.port}/healthz")
    if args.metrics_textfile:
        exporters.append(
            FileExporter(args.metrics_textfile, interval=args.metrics_interval).start()
        )
    node = None
    # both backends serve the same framed/sealed protocol behind the same
    # handler factory; --backend picks the concurrency model, the extra
    # knobs configure the async front end's admission/backpressure plane
    if args.backend == "async":
        server_cm = AsyncTCPServer(
            bank.connection_handler,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_connections=args.max_connections,
            dispatch_queue=args.dispatch_queue,
            rate_limit=args.rate_limit,
            handshake_timeout=args.handshake_timeout,
            idle_timeout=args.idle_timeout,
            overload_signal=bank.overloaded,
        )
    else:
        server_cm = TCPServer(
            bank.connection_handler,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_connections=args.max_connections,
            idle_timeout=args.idle_timeout,
        )
    try:
        with server_cm as server:
            host, port = server.address
            advertise = args.advertise or f"{host}:{port}"
            # every served bank is a cluster node: the replication
            # operations are registered, and `gridbank promote` /
            # `--standby-of` turn single nodes into a replicated pair
            node = ClusterNode(
                bank,
                advertise,
                _tcp_connect,
                peer_subjects=args.peer or (),
                lease_timeout=args.lease_timeout,
                auto_promote=args.auto_promote,
                staleness_bound=args.staleness_bound,
                scrub_interval=args.scrub_interval,
                diag=diag_plane,
            )
            state["node"] = node
            # sharded deployments attach the shard plane: ownership
            # guard, cross-shard 2PC coordinator/participant, rebalance
            # verbs, and the background intent resolver
            if args.shard_id:
                from repro.bank.shard import ShardMap, ShardNode

                boot_map = None
                if args.shard_map:
                    boot_map = ShardMap.from_json(Path(args.shard_map).read_bytes())
                shard = ShardNode(
                    node,
                    args.shard_id,
                    shard_map=boot_map,
                    resolve_interval=args.resolve_interval,
                )
                installed = shard.installed_map()
                print(f"serving shard {args.shard_id} "
                      f"(map v{installed.version if installed else 0}, "
                      f"resolver every {args.resolve_interval:g}s)")
            print(f"GridBank {bank.bank_number:02d}-{bank.branch_number:04d} "
                  f"({bank.subject}) listening on {host}:{port} "
                  f"[{args.backend} backend]")
            if args.standby_of:
                node.follow(args.standby_of, resync=True)
                promote_note = (
                    f"auto-promote after {args.lease_timeout}s silence"
                    if args.auto_promote and args.lease_timeout is not None
                    else "promote with `gridbank promote`"
                )
                print(f"standby of {args.standby_of} (advertised as {advertise}; "
                      f"{promote_note})")
            try:
                import threading

                threading.Event().wait(args.duration if args.duration else None)
            except KeyboardInterrupt:
                pass
    finally:
        if bank.shard is not None:
            bank.shard.close()
        if node is not None:
            node.close()
        if diag_plane is not None:
            diag_plane.stop()
        for exporter in exporters:
            exporter.stop()
        for sink in sinks:
            obs_trace.remove_sink(sink)
    bank.spans.flush()
    bank.usage.maybe_rollup(force=True)
    bank.db.close()
    # persist the run's metrics so `gridbank metrics` can read them later
    (home / _METRICS_FILE).write_text(
        json.dumps(obs_metrics.snapshot(), indent=2, sort_keys=True) + "\n"
    )
    # ... and the telemetry config in effect, so `gridbank trace` can
    # report how the recorded spans were sampled
    (home / _TELEMETRY_FILE).write_text(
        json.dumps(
            {
                "sampling": sampler.config(),
                "slo": [objective.to_dict() for objective in bank.slo.objectives()],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print("server stopped")
    return 0


def _remote_client(args):
    from repro.net.rpc import RPCClient

    identity, store = _load_credential(args.credential)
    client = RPCClient(_tcp_connect(args.address), identity, store)
    client.connect()
    return client


def cmd_promote(args) -> int:
    """Controlled failover: tell a standby to become the primary.

    The standby drains whatever tail of the stream is still reachable,
    fences the old primary behind a bumped cluster epoch, and starts
    accepting writes. Requires an administrator credential.
    """
    client = _remote_client(args)
    try:
        status = client.call("Cluster.Promote", reason=args.reason)
    finally:
        client.close()
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_cluster_status(args) -> int:
    """Show a node's replication position, role, and lag."""
    client = _remote_client(args)
    try:
        status = client.call("Replication.Status")
    finally:
        client.close()
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_shard_status(args) -> int:
    """Show a node's shard id, installed map version, owned ranges and
    in-flight cross-shard intents. Requires the bank credential or an
    administrator (the same authorization as the replication stream)."""
    client = _remote_client(args)
    try:
        status = client.call("Shard.Status")
    finally:
        client.close()
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_trace(args) -> int:
    """Query the durable SPAN store left behind by a served bank.

    ``show <trace_id>`` renders the waterfall of one trace and joins the
    ledger rows stamped with its TraceID; ``slowest`` and ``grep`` locate
    traces worth showing; ``list`` enumerates known trace IDs.
    """
    from repro.db.query import eq

    # a served bank records the sampling config in effect; surface it so
    # "why is this span missing" has an answer
    telemetry_file = Path(args.home) / _TELEMETRY_FILE
    if telemetry_file.exists():
        try:
            sampling = json.loads(telemetry_file.read_text()).get("sampling", {})
        except (json.JSONDecodeError, OSError):
            sampling = {}
        if sampling:
            print(
                "sampling in effect: "
                f"default_rate={sampling.get('default_rate')} "
                f"op_rates={sampling.get('op_rates')} "
                f"keep_errors={sampling.get('keep_errors')} "
                f"slow_percentile={sampling.get('slow_percentile')} "
                f"slow_threshold={sampling.get('slow_threshold')}"
            )

    bank = _load_bank(Path(args.home))
    spans = bank.spans
    try:
        if args.verb == "show":
            if not args.query:
                print("error: trace show requires a trace id", file=sys.stderr)
                return 1
            records = spans.spans_for_trace(args.query)
            if not records:
                print(f"no spans recorded for trace {args.query!r}", file=sys.stderr)
                return 1
            ledger = []
            for table in ("transactions", "transfers"):
                for row in bank.db.select(table, [eq("TraceID", args.query)]):
                    ledger.append({"_table": table, **row})
            print(render_waterfall(records, ledger))
            return 0
        if args.verb == "slowest":
            records = spans.slowest(limit=args.limit, name=args.query or "")
            for record in records:
                print(
                    f"{record['duration_seconds'] * 1e3:10.2f}ms  "
                    f"{record['trace_id']}  {record['name']:<28} "
                    f"{record['status']}"
                )
            if not records:
                print("(no spans recorded)")
            return 0
        if args.verb == "grep":
            if not args.query:
                print("error: trace grep requires a pattern", file=sys.stderr)
                return 1
            records = spans.grep(args.query, limit=args.limit)
            for record in records:
                print(
                    f"{record['trace_id']}  {record['name']:<28} "
                    f"{record['duration_seconds'] * 1e3:8.2f}ms  {record['status']}"
                )
            if not records:
                print(f"no spans matching {args.query!r}")
            return 0
        # list
        trace_ids = spans.trace_ids()[: args.limit]
        for trace_id in trace_ids:
            print(trace_id)
        if not trace_ids:
            print("(no traces recorded)")
        return 0
    finally:
        bank.db.close()


def cmd_metrics(args) -> int:
    """Dump the observability registry: per-operation request/error
    counters and latency histogram summaries (p50/p95/p99).

    Reads the ``metrics.json`` a previous ``serve`` wrote into the bank
    home; ``--live`` (or a home without one) shows the current process's
    registry instead.
    """
    source = Path(args.home) / _METRICS_FILE
    if not args.live and source.exists():
        data = json.loads(source.read_text())
    else:
        data = obs_metrics.snapshot()
    if getattr(args, "action", None) == "export":
        text = render_prometheus(data, exemplars=getattr(args, "exemplars", False))
        if args.out:
            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(text, encoding="utf-8")
            print(f"wrote {out}")
        else:
            print(text, end="")
        return 0
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(obs_metrics.render_snapshot(data))
    return 0


_STATE_RANK = {"ok": 0, "warning": 1, "page": 2}


def _gather_telemetry(addresses, identity, store, top: int) -> list[dict]:
    """One ``Telemetry.Snapshot`` per node; unreachable nodes become
    ``{"node": address, "error": ...}`` entries instead of failing the
    whole view (an operator runs ``top`` *because* something is wrong)."""
    from repro.net.rpc import RPCClient

    snapshots = []
    for address in addresses:
        try:
            client = RPCClient(_tcp_connect(address), identity, store)
            client.connect()
            try:
                snap = client.call("Telemetry.Snapshot", top=top)
            finally:
                client.close()
            snap.setdefault("node", address)
            snapshots.append(snap)
        except (ReproError, OSError) as exc:
            snapshots.append({"node": address, "error": f"{type(exc).__name__}: {exc}"})
    return snapshots


def render_top(snapshots: list[dict], top: int = 5) -> str:
    """The ``gridbank top`` screen: per-node roles/lag/SLO state, worst
    burn rates per objective, hottest ops, and top principals."""
    lines = [f"{'NODE':<22} {'ROLE':<8} {'EPOCH':>5} {'SEQ':>8} {'LAG(s)':>8} {'SLO':>8}"]
    reachable = []
    for snap in snapshots:
        if "error" in snap:
            lines.append(f"{snap['node']:<22} unreachable ({snap['error']})")
            continue
        reachable.append(snap)
        worst = "ok"
        for entry in snap.get("slo", {}).values():
            state = str(entry.get("state", "ok"))
            if _STATE_RANK.get(state, 0) > _STATE_RANK[worst]:
                worst = state
        lines.append(
            f"{snap['node']:<22} {snap['role']:<8} {snap['epoch']:>5} "
            f"{snap['seq']:>8} {snap['lag_seconds']:>8.2f} {worst:>8}"
        )

    # a corrupt node is the single most urgent thing this screen can say,
    # but it must not disturb the main table's layout — its own section
    corrupt = [snap for snap in reachable if not snap.get("integrity_ok", True)]
    if corrupt:
        lines.append("")
        lines.append("storage integrity:")
        for snap in corrupt:
            lines.append(f"  {snap['node']:<22} CORRUPT: {snap.get('corruption', '')}")

    burns: dict[str, dict] = {}
    for snap in reachable:
        for op, entry in snap.get("slo", {}).items():
            agg = burns.setdefault(
                op, {"burn_fast": 0.0, "burn_slow": 0.0, "state": "ok"}
            )
            agg["burn_fast"] = max(agg["burn_fast"], float(entry.get("burn_fast", 0.0)))
            agg["burn_slow"] = max(agg["burn_slow"], float(entry.get("burn_slow", 0.0)))
            state = str(entry.get("state", "ok"))
            if _STATE_RANK.get(state, 0) > _STATE_RANK[agg["state"]]:
                agg["state"] = state
    if burns:
        lines.append("")
        lines.append("slo burn rates (worst across nodes):")
        for op in sorted(burns):
            agg = burns[op]
            lines.append(
                f"  {op:<24} fast {agg['burn_fast']:>8.2f}  "
                f"slow {agg['burn_slow']:>8.2f}  [{agg['state']}]"
            )

    # front end: connection/queue pressure per node — the first thing to
    # look at when clients report Overloaded/RateLimited retries
    fronted = [snap for snap in reachable if snap.get("net")]
    if fronted:
        lines.append("")
        lines.append("front end:")
        for snap in fronted:
            net = snap["net"]
            lines.append(
                f"  {snap['node']:<22} {int(net.get('connections_open', 0)):>6} conns  "
                f"queue {int(net.get('dispatch_queue_depth', 0)):>4}  "
                f"shed {int(net.get('overload_rejections', 0)):>6}  "
                f"ratelim {int(net.get('rate_limited', 0)):>6}  "
                f"reaped {int(net.get('idle_reaped', 0)):>5}"
            )

    ops: dict[str, dict] = {}
    for snap in reachable:
        for entry in snap.get("hot_ops", []):
            agg = ops.setdefault(
                entry["op"], {"op": entry["op"], "requests": 0, "errors": 0, "p95_seconds": 0.0}
            )
            agg["requests"] += int(entry.get("requests", 0))
            agg["errors"] += int(entry.get("errors", 0))
            agg["p95_seconds"] = max(agg["p95_seconds"], float(entry.get("p95_seconds", 0.0)))
    hottest = sorted(ops.values(), key=lambda e: (-e["requests"], e["op"]))[:top]
    if hottest:
        lines.append("")
        lines.append("hottest ops:")
        for entry in hottest:
            lines.append(
                f"  {entry['op']:<24} {entry['requests']:>8} req  "
                f"{entry['errors']:>6} err  p95 {entry['p95_seconds'] * 1e3:8.2f}ms"
            )

    # persisted usage rows replicate to every node, so summing across the
    # cluster would multiply them; per-principal max keeps replicated
    # history counted once while still reflecting each node's live period
    principals: dict[str, dict] = {}
    for snap in reachable:
        for entry in (snap.get("usage", {}) or {}).get("top", []):
            agg = principals.setdefault(
                entry["principal"],
                {"principal": entry["principal"], "ops": 0, "errors": 0,
                 "currency_moved": 0.0},
            )
            agg["ops"] = max(agg["ops"], int(entry.get("ops", 0)))
            agg["errors"] = max(agg["errors"], int(entry.get("errors", 0)))
            agg["currency_moved"] = max(
                agg["currency_moved"], float(entry.get("currency_moved", 0.0))
            )
    ranked = sorted(principals.values(), key=lambda e: (-e["ops"], e["principal"]))[:top]
    if ranked:
        lines.append("")
        lines.append("top principals (max across nodes):")
        for entry in ranked:
            lines.append(
                f"  {entry['principal']:<40} {entry['ops']:>8} ops  "
                f"{entry['errors']:>6} err  G${entry['currency_moved']:.2f} moved"
            )
    return "\n".join(lines)


def cmd_profile(args) -> int:
    """Render a node's live CPU profile: per-op attribution from the
    always-on sampler plus stripe-lock and WAL-path contention tables."""
    from repro.obs.diag import render_profile

    client = _remote_client(args)
    try:
        profile = client.call("Diag.Profile", top=args.top)
    finally:
        client.close()
    if not profile.get("enabled", False) and "ops" not in profile:
        print("diagnosis plane is disabled on this node (serve --no-diag?)",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(render_profile(profile, top=args.top))
    return 0


def _collect_node_diag(address, identity, store, top: int, connect) -> dict:
    from repro.net.rpc import RPCClient

    client = RPCClient(connect(address), identity, store)
    client.connect()
    try:
        return {
            "profile": client.call("Diag.Profile", top=top),
            "flight": client.call("Diag.FlightRecord", limit=256),
            "telemetry": client.call("Telemetry.Snapshot", top=top),
        }
    finally:
        client.close()


def _gather_debug_bundle(
    addresses, identity, store, out_dir: Path, top: int = 25, connect=None
) -> tuple[dict, Path]:
    """Collect per-node diagnostics into ``out_dir/<node>/`` and tar the
    whole thing. Unreachable nodes land in the manifest's ``errors`` —
    an operator collects a bundle *because* something is wrong, so one
    dead node must not abort the evidence run."""
    import tarfile
    import time as _time

    if connect is None:
        connect = _tcp_connect
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"collected_epoch": _time.time(), "nodes": [], "errors": []}

    def _write(path: Path, payload) -> None:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    for address in addresses:
        try:
            data = _collect_node_diag(address, identity, store, top, connect)
        except (ReproError, OSError) as exc:
            manifest["errors"].append(
                {"node": address, "error": f"{type(exc).__name__}: {exc}"}
            )
            continue
        safe = address.replace(":", "_").replace("/", "_")
        node_dir = out_dir / safe
        node_dir.mkdir(parents=True, exist_ok=True)
        profile, flight, telemetry = data["profile"], data["flight"], data["telemetry"]
        _write(node_dir / "profile.json", profile)
        _write(node_dir / "flightrecord.json", flight)
        _write(node_dir / "metrics.json", flight.get("metrics", {}))
        _write(node_dir / "telemetry.json", telemetry)
        _write(node_dir / "slo.json", telemetry.get("slo", {}))
        with (node_dir / "slow_spans.jsonl").open("w", encoding="utf-8") as fh:
            for record in flight.get("slow_spans", []) or []:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        manifest["nodes"].append(
            {
                "node": address,
                "dir": safe,
                "role": telemetry.get("role", ""),
                "profiler_enabled": bool(profile.get("enabled", False)),
                "profile_samples": int(profile.get("samples", 0) or 0),
                "triggers": len(flight.get("recent_triggers", []) or []),
            }
        )
    _write(out_dir / "manifest.json", manifest)
    tar_path = out_dir.parent / (out_dir.name + ".tar.gz")
    with tarfile.open(tar_path, "w:gz") as tar:
        tar.add(out_dir, arcname=out_dir.name)
    return manifest, tar_path


def cmd_debug_bundle(args) -> int:
    """One tar of everything a post-incident analysis needs, from every
    reachable node: live profile (per-op CPU + contention), flight
    recorder rings, metrics snapshot, SLO state, recent slow traces."""
    identity, store = _load_credential(args.credential)
    manifest, tar_path = _gather_debug_bundle(
        args.address, identity, store, Path(args.out), top=args.top
    )
    for entry in manifest["nodes"]:
        print(f"collected {entry['node']} ({entry['role'] or 'unknown role'}): "
              f"{entry['profile_samples']} profile samples, "
              f"{entry['triggers']} recent trigger(s) -> {entry['dir']}/")
    for entry in manifest["errors"]:
        print(f"unreachable {entry['node']}: {entry['error']}", file=sys.stderr)
    print(f"bundle: {tar_path}")
    return 0 if manifest["nodes"] else 1


def cmd_top(args) -> int:
    """Aggregate ``Telemetry.Snapshot`` across cluster nodes — one pane
    for the whole replicated bank (repeat ``--address`` per node)."""
    import time as _time

    identity, store = _load_credential(args.credential)

    def once() -> str:
        snapshots = _gather_telemetry(args.address, identity, store, args.top)
        return render_top(snapshots, top=args.top)

    if not args.watch:
        print(once())
        return 0
    try:
        while True:
            sys.stdout.write("\x1b[2J\x1b[H" + once() + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="gridbank", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, **help_kw):
        p = sub.add_parser(name, **help_kw)
        p.add_argument("--home", required=True, help="bank home directory")
        p.set_defaults(fn=fn)
        return p

    p = add("init", cmd_init, help="create a new bank home")
    p.add_argument("--bank-number", type=int, default=1)
    p.add_argument("--branch-number", type=int, default=1)
    p.add_argument("--key-bits", type=int, default=1024)
    p.add_argument("--seed", type=int, default=None, help="deterministic keys (testing)")

    p = add("init-standby", cmd_init_standby,
            help="create a standby home sharing an existing bank's identity")
    p.add_argument("--primary-home", required=True, help="home of the bank to replicate")

    p = add("create-account", cmd_create_account, help="open an account")
    p.add_argument("--subject", required=True, help="certificate name of the owner")
    p.add_argument("--organization", default="")
    p.add_argument("--currency", default="GridDollar")

    for name, fn in (("deposit", cmd_deposit), ("withdraw", cmd_withdraw)):
        p = add(name, fn, help=f"{name} external funds")
        p.add_argument("--account", required=True)
        p.add_argument("--amount", type=float, required=True)

    p = add("transfer", cmd_transfer, help="move funds between accounts")
    p.add_argument("--from-account", required=True)
    p.add_argument("--to-account", required=True)
    p.add_argument("--amount", type=float, required=True)

    p = add("balance", cmd_balance, help="show one account")
    p.add_argument("--account", required=True)

    p = add("statement", cmd_statement, help="account statement")
    p.add_argument("--account", required=True)
    p.add_argument("--start", default=None, help="TIMESTAMP(14), default epoch")
    p.add_argument("--end", default=None, help="TIMESTAMP(14), default now")

    add("accounts", cmd_accounts, help="list all accounts")

    p = add("add-admin", cmd_add_admin, help="grant administrator privilege")
    p.add_argument("--subject", required=True)

    add("checkpoint", cmd_checkpoint, help="compact the journal")

    p = add("fsck", cmd_fsck,
            help="verify WAL/snapshot integrity; --repair restores from a peer")
    p.add_argument("--repair", action="store_true",
                   help="repair detected corruption from a healthy peer")
    p.add_argument("--peer", default=None, metavar="HOST:PORT",
                   help="healthy cluster primary to fetch verified bytes from")

    p = add("serve", cmd_serve, help="serve the bank over TCP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--duration", type=float, default=None, help="seconds to run (default: forever)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve Prometheus text on this localhost port (0 = ephemeral)")
    p.add_argument("--metrics-textfile", default=None,
                   help="rewrite a Prometheus textfile at this path every interval")
    p.add_argument("--metrics-interval", type=float, default=5.0,
                   help="textfile rewrite interval in seconds")
    p.add_argument("--span-log", default=None,
                   help="also append finished spans to this JSONL file")
    p.add_argument("--standby-of", default=None, metavar="HOST:PORT",
                   help="serve as a hot standby replicating from this primary")
    p.add_argument("--advertise", default=None, metavar="HOST:PORT",
                   help="address other nodes/clients should use to reach this node "
                        "(default: the bound host:port)")
    p.add_argument("--peer", action="append", default=None, metavar="SUBJECT",
                   help="certificate subject allowed to use the replication stream "
                        "(repeatable; administrators are always allowed)")
    p.add_argument("--auto-promote", action="store_true",
                   help="standby promotes itself when the primary lease expires")
    p.add_argument("--lease-timeout", type=float, default=None,
                   help="seconds of primary silence before the lease is considered lost")
    p.add_argument("--staleness-bound", type=float, default=None,
                   help="refuse standby reads older than this many seconds")
    p.add_argument("--sample-rate", type=float, default=1.0,
                   help="head-sampling keep rate for durable spans (0..1, default 1.0)")
    p.add_argument("--sample-op", action="append", default=None, metavar="OP=RATE",
                   help="per-op head-sampling rate override (repeatable)")
    p.add_argument("--slow-percentile", type=float, default=0.95,
                   help="tail-retention: always keep spans slower than this "
                        "percentile of their op's recent latency")
    p.add_argument("--slow-threshold", type=float, default=None,
                   help="tail-retention: static slow threshold in seconds "
                        "(overrides --slow-percentile)")
    p.add_argument("--slo-target", type=float, default=None,
                   help="availability target for the catch-all SLO (default 0.999)")
    p.add_argument("--slo-latency", type=float, default=None,
                   help="latency threshold in seconds for the catch-all SLO (default 0.5)")
    p.add_argument("--scrub-interval", type=float, default=None, metavar="SECONDS",
                   help="background-scrub the WAL/snapshot every this many seconds "
                        "(re-verifies every CRC; corruption triggers a replica-backed "
                        "repair when a peer is known)")
    p.add_argument("--profile-hz", type=float, default=25.0,
                   help="always-on sampling profiler rate (0 disables the "
                        "profiler but keeps the flight recorder)")
    p.add_argument("--diag-dir", default=None, metavar="DIR",
                   help="directory for flight-recorder post-mortem dumps "
                        "(default: HOME/diag)")
    p.add_argument("--no-diag", action="store_true",
                   help="disable the diagnosis plane entirely (profiler, "
                        "flight recorder, exemplars)")
    p.add_argument("--backend", choices=["threads", "async"], default="threads",
                   help="front-end concurrency model: thread-per-connection "
                        "or one event loop for all sockets (default: threads)")
    p.add_argument("--workers", type=int, default=4,
                   help="dispatch worker-pool size shared by both backends")
    p.add_argument("--max-connections", type=int, default=None,
                   help="admission control: accepts past this cap are shed "
                        "at the door (default: unbounded)")
    p.add_argument("--dispatch-queue", type=int, default=256,
                   help="async backend: bound on unwrapped-but-undispatched "
                        "requests; when full requests are answered with a "
                        "retryable Overloaded error")
    p.add_argument("--rate-limit", type=float, default=None, metavar="REQ_PER_SEC",
                   help="async backend: per-principal token-bucket rate "
                        "limit (default: unlimited)")
    p.add_argument("--handshake-timeout", type=float, default=5.0,
                   help="async backend: budget for unauthenticated reads and "
                        "for finishing any started frame (slow-loris reaping)")
    p.add_argument("--idle-timeout", type=float, default=None,
                   help="seconds of silence between frames before an "
                        "established connection is reaped (default: never)")
    p.add_argument("--shard-id", default=None, metavar="SHARD",
                   help="serve as this shard of a sharded deployment "
                        "(registers the Shard.* plane; see --shard-map)")
    p.add_argument("--shard-map", default=None, metavar="FILE",
                   help="JSON shard map to install at boot when newer than "
                        "the durably installed one (primary only)")
    p.add_argument("--resolve-interval", type=float, default=5.0,
                   help="seconds between background sweeps that re-drive "
                        "prepared cross-shard transfer intents")

    p = add("metrics", cmd_metrics, help="dump recorded metrics (text, JSON, or Prometheus)")
    p.add_argument("action", nargs="?", choices=["export"],
                   help="'export' renders Prometheus text instead of the human dump")
    p.add_argument("--json", action="store_true", help="machine-readable JSON dump")
    p.add_argument("--live", action="store_true",
                   help="show this process's registry, ignoring metrics.json")
    p.add_argument("--out", default=None, help="write Prometheus text here instead of stdout")
    p.add_argument("--exemplars", action="store_true",
                   help="attach trace-id exemplars to exported histogram buckets")

    p = add("trace", cmd_trace, help="query the durable span store")
    p.add_argument("verb", choices=["show", "grep", "slowest", "list"])
    p.add_argument("query", nargs="?", default=None,
                   help="trace id (show), pattern (grep), or name prefix (slowest)")
    p.add_argument("-n", "--limit", type=int, default=10, help="result cap for grep/slowest/list")

    p = add("issue-identity", cmd_issue_identity, help="enroll a user credential")
    p.add_argument("--organization", required=True)
    p.add_argument("--name", required=True)
    p.add_argument("--out", required=True, help="credential file to write")
    p.add_argument("--key-bits", type=int, default=1024)
    p.add_argument("--lifetime-days", type=float, default=365.0)

    def add_remote(name, fn, **help_kw):
        p = sub.add_parser(name, **help_kw)
        p.add_argument("--credential", required=True, help="credential file from issue-identity")
        p.add_argument("--address", required=True, help="host:port of a served bank")
        p.set_defaults(fn=fn)
        return p

    p = add_remote("remote-create-account", cmd_remote_create_account,
                   help="open an account over TCP")
    p.add_argument("--organization", default="")

    p = add_remote("remote-balance", cmd_remote_balance, help="check a balance over TCP")
    p.add_argument("--account", required=True)

    p = add_remote("remote-transfer", cmd_remote_transfer, help="pay over TCP")
    p.add_argument("--from-account", required=True)
    p.add_argument("--to-account", required=True)
    p.add_argument("--amount", type=float, required=True)

    p = add_remote("promote", cmd_promote,
                   help="promote a standby to primary (controlled failover)")
    p.add_argument("--reason", default="operator")

    add_remote("cluster-status", cmd_cluster_status,
               help="show a node's replication position and role")

    add_remote("shard-status", cmd_shard_status,
               help="show a node's shard id, installed map version, owned "
                    "ranges/accounts and prepared cross-shard intents")

    p = add_remote("profile", cmd_profile,
                   help="live CPU profile of a node: per-op attribution, "
                        "hot stacks, lock/WAL contention")
    p.add_argument("--top", type=int, default=10, help="rows per section")
    p.add_argument("--json", action="store_true", help="raw snapshot as JSON")

    p = sub.add_parser("debug-bundle",
                       help="collect profiles, flight-recorder rings, metrics "
                            "and SLO state from every node into one tarball")
    p.add_argument("--credential", required=True, help="credential file from issue-identity")
    p.add_argument("--address", action="append", required=True, metavar="HOST:PORT",
                   help="node to include (repeat per cluster node)")
    p.add_argument("--out", default="debug-bundle",
                   help="output directory (a sibling .tar.gz is also written)")
    p.add_argument("--top", type=int, default=25, help="profile rows per node")
    p.set_defaults(fn=cmd_debug_bundle)

    p = sub.add_parser("top", help="cluster-wide telemetry: per-node SLO state, "
                                   "replication lag, hottest ops and principals")
    p.add_argument("--credential", required=True, help="credential file from issue-identity")
    p.add_argument("--address", action="append", required=True, metavar="HOST:PORT",
                   help="node to include (repeat per cluster node)")
    p.add_argument("--top", type=int, default=5, help="rows per section")
    p.add_argument("--watch", action="store_true", help="refresh until interrupted")
    p.add_argument("--interval", type=float, default=2.0, help="refresh interval seconds")
    p.set_defaults(fn=cmd_top)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    configure_from_env()  # GRIDBANK_LOG_LEVEL / GRIDBANK_LOG_FORMAT=json
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CorruptionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "storage failed verification — run `gridbank fsck` "
            "(--repair --peer HOST:PORT to restore from a healthy peer)",
            file=sys.stderr,
        )
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: bank home not initialized ({exc})", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # downstream closed the pipe (e.g. `gridbank metrics | head`);
        # detach stdout so interpreter shutdown doesn't traceback on flush
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
