"""GSS-style security context establishment.

A three-token mutual-authentication handshake modelled on TLS-with-client-
certificates, built from our own primitives:

1. ``hello``      (initiator -> acceptor): initiator chain + nonce_i.
2. ``challenge``  (acceptor -> initiator): acceptor chain + nonce_a +
   acceptor's signature over both nonces (proves key possession).
3. ``exchange``   (initiator -> acceptor): pre-master secret encrypted to
   the acceptor's public key + initiator's signature over the transcript
   (proves the initiator's key possession — client authentication).

Both sides validate the peer chain against their trust store (proxy chains
resolve to the user's canonical subject) and derive directional channel
ciphers from the pre-master secret and both nonces. Tokens are plain dicts
so any transport can carry them.

The context is driven by :meth:`step`: feed it the peer's token, send what
it returns, until :attr:`established`.
"""

from __future__ import annotations

import enum
import random
from typing import Optional

from repro.crypto.cipher import ChannelCipher
from repro.crypto.hashes import sha256
from repro.crypto.rsa import decrypt_bytes, encrypt_bytes
from repro.crypto.signature import sign, verify
from repro.errors import AuthenticationError, ProtocolError, ValidationError
from repro.pki.ca import Identity
from repro.pki.certificate import Certificate
from repro.pki.proxy import ProxyCredential
from repro.pki.validation import CertificateStore, validate_chain
from repro.util.gbtime import Clock, SystemClock

__all__ = ["Role", "SecurityContext"]

_NONCE_LEN = 32


class Role(enum.Enum):
    INITIATE = "initiate"
    ACCEPT = "accept"


class _Credential:
    """Uniform view over Identity and ProxyCredential."""

    def __init__(self, cred) -> None:
        if isinstance(cred, ProxyCredential):
            self.chain = [c.to_dict() for c in cred.chain()]
            self.private_key = cred.private_key
            self.leaf = cred.proxy_certificate
        elif isinstance(cred, Identity):
            self.chain = [cred.certificate.to_dict()]
            self.private_key = cred.private_key
            self.leaf = cred.certificate
        else:
            raise ValidationError("credential must be Identity or ProxyCredential")


class SecurityContext:
    """One endpoint of a mutual-authentication handshake.

    After establishment, :meth:`wrap`/:meth:`unwrap` protect application
    payloads and :attr:`peer_subject` carries the authenticated canonical
    subject of the other side.
    """

    def __init__(
        self,
        role: Role,
        credential,
        trust_store: CertificateStore,
        clock: Optional[Clock] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.role = role
        self._cred = _Credential(credential)
        self._store = trust_store
        self._clock = clock if clock is not None else SystemClock()
        self._rng = rng if rng is not None else random.Random()
        self.peer_subject: Optional[str] = None
        self.established = False
        self.resumed = False
        self._nonce_i: Optional[bytes] = None
        self._nonce_a: Optional[bytes] = None
        self._peer_leaf: Optional[Certificate] = None
        self._send: Optional[ChannelCipher] = None
        self._recv: Optional[ChannelCipher] = None
        self._master: Optional[bytes] = None
        self._state = "new"

    # -- handshake ---------------------------------------------------------

    def step(self, token: Optional[dict] = None) -> Optional[dict]:
        """Advance the handshake.

        Initiator: ``step()`` -> hello; ``step(challenge)`` -> exchange.
        Acceptor: ``step(hello)`` -> challenge; ``step(exchange)`` -> None.
        """
        if self.established:
            raise ProtocolError("context already established")
        if self.role is Role.INITIATE:
            if self._state == "new":
                if token is not None:
                    raise ProtocolError("initiator's first step takes no token")
                return self._make_hello()
            if self._state == "hello-sent":
                if token is None:
                    raise ProtocolError("initiator expected a challenge token")
                return self._process_challenge(token)
        else:
            if token is None:
                raise ProtocolError("acceptor always consumes a token")
            if self._state == "new":
                return self._process_hello(token)
            if self._state == "challenge-sent":
                return self._process_exchange(token)
        raise ProtocolError(f"unexpected step in state {self._state!r}")

    def _nonce(self) -> bytes:
        return self._rng.getrandbits(8 * _NONCE_LEN).to_bytes(_NONCE_LEN, "big")

    def _make_hello(self) -> dict:
        self._nonce_i = self._nonce()
        self._state = "hello-sent"
        return {"type": "hello", "chain": self._cred.chain, "nonce": self._nonce_i}

    def _validate_peer_chain(self, chain_dicts: list) -> tuple[str, Certificate]:
        try:
            chain = [Certificate.from_dict(d) for d in chain_dicts]
        except (ValidationError, TypeError) as exc:
            raise AuthenticationError(f"malformed peer chain: {exc}") from exc
        try:
            subject = validate_chain(chain, self._store, self._clock.now())
        except Exception as exc:
            raise AuthenticationError(f"peer chain rejected: {exc}") from exc
        return subject, chain[0]

    def _process_hello(self, token: dict) -> dict:
        if token.get("type") != "hello":
            raise ProtocolError("expected hello token")
        self.peer_subject, self._peer_leaf = self._validate_peer_chain(token["chain"])
        self._nonce_i = token["nonce"]
        if not isinstance(self._nonce_i, bytes) or len(self._nonce_i) != _NONCE_LEN:
            raise AuthenticationError("bad initiator nonce")
        self._nonce_a = self._nonce()
        proof = sign(self._cred.private_key, {"handshake": "challenge", "ni": self._nonce_i, "na": self._nonce_a})
        self._state = "challenge-sent"
        return {
            "type": "challenge",
            "chain": self._cred.chain,
            "nonce": self._nonce_a,
            "proof": proof,
        }

    def _process_challenge(self, token: dict) -> dict:
        if token.get("type") != "challenge":
            raise ProtocolError("expected challenge token")
        self.peer_subject, self._peer_leaf = self._validate_peer_chain(token["chain"])
        self._nonce_a = token["nonce"]
        if not isinstance(self._nonce_a, bytes) or len(self._nonce_a) != _NONCE_LEN:
            raise AuthenticationError("bad acceptor nonce")
        challenge_body = {"handshake": "challenge", "ni": self._nonce_i, "na": self._nonce_a}
        if not verify(self._peer_leaf.public_key(), challenge_body, token["proof"]):
            raise AuthenticationError("acceptor failed proof of key possession")
        pre_master = self._nonce()
        encrypted = encrypt_bytes(self._peer_leaf.public_key(), pre_master, self._rng)
        proof = sign(
            self._cred.private_key,
            {"handshake": "exchange", "ni": self._nonce_i, "na": self._nonce_a, "epk": sha256(encrypted)},
        )
        self._derive(pre_master)
        self._state = "established"
        self.established = True
        return {"type": "exchange", "encrypted_pms": encrypted, "proof": proof}

    def _process_exchange(self, token: dict) -> None:
        if token.get("type") != "exchange":
            raise ProtocolError("expected exchange token")
        encrypted = token["encrypted_pms"]
        assert self._peer_leaf is not None
        exchange_body = {
            "handshake": "exchange",
            "ni": self._nonce_i,
            "na": self._nonce_a,
            "epk": sha256(encrypted),
        }
        if not verify(self._peer_leaf.public_key(), exchange_body, token["proof"]):
            raise AuthenticationError("initiator failed proof of key possession")
        try:
            pre_master = decrypt_bytes(self._cred.private_key, encrypted)
        except ValidationError as exc:
            raise AuthenticationError(f"key exchange failed: {exc}") from exc
        self._derive(pre_master)
        self._state = "established"
        self.established = True
        return None

    def _derive(self, pre_master: bytes) -> None:
        assert self._nonce_i is not None and self._nonce_a is not None
        master = sha256(pre_master + self._nonce_i + self._nonce_a)
        self._install_keys(master)

    def _install_keys(self, master: bytes) -> None:
        self._master = master
        c2s = sha256(master + b"c2s")
        s2c = sha256(master + b"s2c")
        if self.role is Role.INITIATE:
            self._send = ChannelCipher(c2s, rng=self._rng)
            self._recv = ChannelCipher(s2c, rng=self._rng)
        else:
            self._send = ChannelCipher(s2c, rng=self._rng)
            self._recv = ChannelCipher(c2s, rng=self._rng)

    # -- session resumption ---------------------------------------------------

    @property
    def master_secret(self) -> bytes:
        """The established session's master secret (resumption material)."""
        if not self.established or self._master is None:
            raise ProtocolError("context not established")
        return self._master

    def resume(self, master_secret: bytes, nonce_i: bytes, nonce_a: bytes, peer_subject: str) -> None:
        """Establish this context from a prior session's master secret.

        Both sides mix the stored secret with a fresh nonce pair so each
        resumed session gets its own channel keys (no cross-session
        replay), skipping the certificate-chain validation and RSA key
        exchange of the full handshake. The caller is responsible for
        having authenticated the peer via the resumption exchange's MACs
        (see :class:`repro.net.rpc.SessionTicketStore` and the
        ``gsi_resume`` message) — possession of the master secret is the
        proof of identity here, exactly as in TLS session tickets.
        """
        if self.established or self._state != "new":
            raise ProtocolError("cannot resume a used context")
        if len(nonce_i) != _NONCE_LEN or len(nonce_a) != _NONCE_LEN:
            raise ProtocolError("bad resumption nonces")
        self._nonce_i, self._nonce_a = nonce_i, nonce_a
        self.peer_subject = peer_subject
        self._install_keys(sha256(master_secret + nonce_i + nonce_a))
        self._state = "established"
        self.established = True
        self.resumed = True

    # -- record protection ---------------------------------------------------

    def wrap(self, plaintext: bytes) -> bytes:
        """Protect an application payload for the peer."""
        if not self.established or self._send is None:
            raise ProtocolError("context not established")
        return self._send.protect(plaintext)

    def unwrap(self, record: bytes) -> bytes:
        """Verify and decrypt a payload from the peer."""
        if not self.established or self._recv is None:
            raise ProtocolError("context not established")
        return self._recv.unprotect(record)
