"""GSI: GSS-style security contexts, secure channels, authorization.

Reproduces what the paper takes from Globus's GSI/GSS (sec 3.1-3.2):
mutual authentication of client and server via certificate chains, an
encrypted+integrity-protected session for "sensitive financial
information", and subject-name authorization gating connection
establishment ("Only clients with existing account or administrator
privilege are authorized and connected").
"""

from repro.gsi.context import SecurityContext, Role
from repro.gsi.authorization import (
    AuthorizationPolicy,
    AllowAllPolicy,
    SubjectListPolicy,
    CallbackPolicy,
)

__all__ = [
    "SecurityContext",
    "Role",
    "AuthorizationPolicy",
    "AllowAllPolicy",
    "SubjectListPolicy",
    "CallbackPolicy",
]
