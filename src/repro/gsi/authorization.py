"""Authorization policies over authenticated subject names.

The paper's server authorizes at *connection* time: "If the subject name
appears either in the accounts or in administrator tables, then the client
is authorized to establish a connection. Otherwise connection is refused,
and this provides a mechanism to limit denial-of-service attacks."
(sec 3.2). Policies here are small strategy objects the server consults
with the canonical subject produced by chain validation.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import AuthorizationError

__all__ = ["AuthorizationPolicy", "AllowAllPolicy", "SubjectListPolicy", "CallbackPolicy"]


class AuthorizationPolicy:
    """Interface: decide whether an authenticated subject may connect."""

    def is_authorized(self, subject: str) -> bool:
        raise NotImplementedError

    def require(self, subject: str) -> str:
        """Return *subject* if authorized, else raise AuthorizationError."""
        if not self.is_authorized(subject):
            raise AuthorizationError(f"subject not authorized: {subject!r}")
        return subject


class AllowAllPolicy(AuthorizationPolicy):
    """Accept any authenticated subject (open services, e.g. GMD queries)."""

    def is_authorized(self, subject: str) -> bool:
        return True


class SubjectListPolicy(AuthorizationPolicy):
    """Accept subjects from an explicit, mutable allow-list."""

    def __init__(self, subjects: Iterable[str] = ()) -> None:
        self._subjects = set(subjects)

    def add(self, subject: str) -> None:
        self._subjects.add(subject)

    def discard(self, subject: str) -> None:
        self._subjects.discard(subject)

    def is_authorized(self, subject: str) -> bool:
        return subject in self._subjects

    def __len__(self) -> int:
        return len(self._subjects)


class CallbackPolicy(AuthorizationPolicy):
    """Delegate to a predicate — e.g. the bank's 'has an account or is an
    administrator' check, evaluated live against the database."""

    def __init__(self, predicate: Callable[[str], bool], description: str = "") -> None:
        self._predicate = predicate
        self.description = description

    def is_authorized(self, subject: str) -> bool:
        return bool(self._predicate(subject))
