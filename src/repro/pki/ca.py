"""Certificate Authority.

"Certificates can be issued by the Globus Certificate Authority.
Alternatively, GridBank can set up its own CA." (paper sec 3.2). This CA
issues user/host certificates against its self-signed root, maintains a
revocation list, and hands back :class:`Identity` bundles (certificate +
private key) that the rest of the library uses as credentials.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, generate_keypair
from repro.pki.certificate import Certificate, DistinguishedName, make_body
from repro.errors import CertificateError
from repro.util.gbtime import Clock, SystemClock

__all__ = ["Identity", "CertificateAuthority", "DEFAULT_LIFETIME"]

DEFAULT_LIFETIME = 365 * 24 * 3600.0  # one year


@dataclass(frozen=True)
class Identity:
    """A principal's credential: certificate plus matching private key."""

    certificate: Certificate
    private_key: RSAPrivateKey

    @property
    def subject(self) -> str:
        return self.certificate.subject


class CertificateAuthority:
    """A self-signed root that issues and revokes certificates."""

    def __init__(
        self,
        name: DistinguishedName,
        clock: Optional[Clock] = None,
        rng: Optional[random.Random] = None,
        key_bits: int = 1024,
        keypair: Optional[RSAKeyPair] = None,
    ) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._rng = rng if rng is not None else random.Random()
        self._next_serial = 1
        self._revoked: set[int] = set()
        kp = keypair if keypair is not None else generate_keypair(bits=key_bits, rng=self._rng)
        self._private = kp.private
        body = make_body(
            subject=str(name),
            issuer=str(name),
            serial=0,
            public_key=kp.public,
            not_before=self._clock.now(),
            lifetime_seconds=10 * DEFAULT_LIFETIME,
            is_ca=True,
        )
        self._root = Certificate.issue(body, self._private)

    # -- accessors ---------------------------------------------------------

    @property
    def root_certificate(self) -> Certificate:
        return self._root

    @property
    def subject(self) -> str:
        return self._root.subject

    # -- issuance ----------------------------------------------------------

    def issue_identity(
        self,
        name: DistinguishedName,
        lifetime_seconds: float = DEFAULT_LIFETIME,
        key_bits: int = 1024,
        keypair: Optional[RSAKeyPair] = None,
        extensions: Optional[dict] = None,
    ) -> Identity:
        """Generate a keypair (unless given) and issue a certificate for it."""
        kp = keypair if keypair is not None else generate_keypair(bits=key_bits, rng=self._rng)
        cert = self.issue_certificate(name, kp.public, lifetime_seconds, extensions)
        return Identity(certificate=cert, private_key=kp.private)

    def issue_certificate(
        self,
        name: DistinguishedName,
        public_key,
        lifetime_seconds: float = DEFAULT_LIFETIME,
        extensions: Optional[dict] = None,
    ) -> Certificate:
        body = make_body(
            subject=str(name),
            issuer=self._root.subject,
            serial=self._allocate_serial(),
            public_key=public_key,
            not_before=self._clock.now(),
            lifetime_seconds=lifetime_seconds,
            extensions=extensions,
        )
        return Certificate.issue(body, self._private)

    def _allocate_serial(self) -> int:
        serial = self._next_serial
        self._next_serial += 1
        return serial

    # -- revocation --------------------------------------------------------

    def revoke(self, certificate: Certificate) -> None:
        if certificate.issuer != self._root.subject:
            raise CertificateError("cannot revoke a certificate from another CA")
        self._revoked.add(certificate.serial)

    def is_revoked(self, certificate: Certificate) -> bool:
        return certificate.serial in self._revoked

    def revocation_list(self) -> frozenset[int]:
        """Snapshot of revoked serials (a CRL)."""
        return frozenset(self._revoked)
