"""Public-key infrastructure: certificates, CA, proxies, grid-mapfile.

Reproduces the identity substrate GridBank gets from the Globus Security
Infrastructure (paper sec 3.1/3.2): X509v3-like certificates issued by a
Certificate Authority, *user proxy certificates* for single sign-on
("A user proxy is a certificate signed by the user, which is later used to
repeatedly authenticate the user to resources"), revocation, chain
validation, and the grid-mapfile that maps certificate subjects to local
accounts (sec 2.3).
"""

from repro.pki.certificate import Certificate, CertificateBody, DistinguishedName
from repro.pki.ca import CertificateAuthority, Identity
from repro.pki.proxy import issue_proxy, ProxyCredential
from repro.pki.validation import validate_chain, CertificateStore
from repro.pki.mapfile import GridMapfile

__all__ = [
    "Certificate",
    "CertificateBody",
    "DistinguishedName",
    "CertificateAuthority",
    "Identity",
    "issue_proxy",
    "ProxyCredential",
    "validate_chain",
    "CertificateStore",
    "GridMapfile",
]
