"""The grid-mapfile: certificate subject -> local account mapping.

Globus authorizes access by looking the authenticated subject up in a
``grid-mapfile``. The paper's access-scalability scheme (sec 2.3) *mutates*
this file dynamically: when a consumer presents a valid payment instrument,
GBCM maps their Certificate Name to a free template account, and removes
the entry after the job finishes.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import DuplicateError, NotFoundError, ValidationError

__all__ = ["GridMapfile"]


class GridMapfile:
    """An in-memory grid-mapfile with the classic one-line-per-entry format."""

    def __init__(self) -> None:
        self._entries: dict[str, str] = {}

    def add(self, subject: str, local_account: str) -> None:
        """Map *subject* to *local_account*; rejects duplicate subjects."""
        if not subject or not local_account:
            raise ValidationError("subject and local account must be non-empty")
        if subject in self._entries:
            raise DuplicateError(f"subject already mapped: {subject!r}")
        self._entries[subject] = local_account

    def remove(self, subject: str) -> str:
        """Remove and return the mapping for *subject*."""
        try:
            return self._entries.pop(subject)
        except KeyError:
            raise NotFoundError(f"subject not mapped: {subject!r}") from None

    def lookup(self, subject: str) -> str:
        """Local account for *subject*; raises :class:`NotFoundError`."""
        try:
            return self._entries[subject]
        except KeyError:
            raise NotFoundError(f"subject not mapped: {subject!r}") from None

    def get(self, subject: str) -> Optional[str]:
        return self._entries.get(subject)

    def __contains__(self, subject: str) -> bool:
        return subject in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._entries.items())

    def subjects_for_account(self, local_account: str) -> list[str]:
        return [s for s, a in self._entries.items() if a == local_account]

    # -- classic text format ------------------------------------------------

    def dumps(self) -> str:
        """Render in grid-mapfile syntax: ``"subject" account`` per line."""
        return "".join(f'"{subject}" {account}\n' for subject, account in sorted(self._entries.items()))

    @classmethod
    def loads(cls, text: str) -> "GridMapfile":
        mapfile = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith('"'):
                raise ValidationError(f"grid-mapfile line {lineno}: subject must be quoted")
            closing = line.find('"', 1)
            if closing < 0:
                raise ValidationError(f"grid-mapfile line {lineno}: unterminated subject")
            subject = line[1:closing]
            account = line[closing + 1 :].strip()
            if not account:
                raise ValidationError(f"grid-mapfile line {lineno}: missing account")
            mapfile.add(subject, account)
        return mapfile
