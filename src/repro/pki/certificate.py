"""X509v3-like certificates.

A certificate binds a distinguished name (the paper's "Certificate Name",
the globally unique client identifier stored in ACCOUNT records) to an RSA
public key, signed by an issuer. The ASN.1/DER wire format of real X.509 is
replaced by canonical-JSON bodies — the structure (subject, issuer, serial,
validity window, key, extensions, signature) and the validation semantics
are what the architecture depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import public_key_from_dict, public_key_to_dict
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.signature import sign, verify
from repro.errors import CertificateError, ValidationError
from repro.util.gbtime import Timestamp

__all__ = ["DistinguishedName", "CertificateBody", "Certificate"]


@dataclass(frozen=True)
class DistinguishedName:
    """An X.500-style name, rendered like ``/O=GridBank/OU=VO-A/CN=alice``."""

    organization: str
    common_name: str
    organizational_unit: str = ""

    def __post_init__(self) -> None:
        for label, value in (("O", self.organization), ("CN", self.common_name)):
            if not value or "/" in value or "=" in value:
                raise ValidationError(f"invalid DN component {label}={value!r}")
        if self.organizational_unit and ("/" in self.organizational_unit or "=" in self.organizational_unit):
            raise ValidationError("invalid DN component OU")

    def __str__(self) -> str:
        parts = [f"/O={self.organization}"]
        if self.organizational_unit:
            parts.append(f"/OU={self.organizational_unit}")
        parts.append(f"/CN={self.common_name}")
        return "".join(parts)

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse ``/O=.../OU=.../CN=...`` (OU optional)."""
        if not text.startswith("/"):
            raise ValidationError(f"not a distinguished name: {text!r}")
        fields = {}
        for chunk in text.strip("/").split("/"):
            if "=" not in chunk:
                raise ValidationError(f"malformed DN component: {chunk!r}")
            key, _, value = chunk.partition("=")
            fields[key] = value
        try:
            return cls(
                organization=fields["O"],
                common_name=fields["CN"],
                organizational_unit=fields.get("OU", ""),
            )
        except KeyError as exc:
            raise ValidationError(f"DN missing component {exc}") from exc


@dataclass(frozen=True)
class CertificateBody:
    """The to-be-signed portion of a certificate."""

    subject: str
    issuer: str
    serial: int
    public_key: dict
    not_before: float
    not_after: float
    is_ca: bool = False
    is_proxy: bool = False
    extensions: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "serial": self.serial,
            "public_key": self.public_key,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "is_ca": self.is_ca,
            "is_proxy": self.is_proxy,
            "extensions": self.extensions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CertificateBody":
        try:
            return cls(
                subject=data["subject"],
                issuer=data["issuer"],
                serial=data["serial"],
                public_key=data["public_key"],
                not_before=data["not_before"],
                not_after=data["not_after"],
                is_ca=data.get("is_ca", False),
                is_proxy=data.get("is_proxy", False),
                extensions=data.get("extensions", {}),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed certificate body: {exc}") from exc


@dataclass(frozen=True)
class Certificate:
    """A signed certificate body."""

    body: CertificateBody
    signature: bytes

    @classmethod
    def issue(
        cls,
        body: CertificateBody,
        issuer_private: RSAPrivateKey,
    ) -> "Certificate":
        return cls(body=body, signature=sign(issuer_private, body.to_dict()))

    # -- accessors ---------------------------------------------------------

    @property
    def subject(self) -> str:
        return self.body.subject

    @property
    def issuer(self) -> str:
        return self.body.issuer

    @property
    def serial(self) -> int:
        return self.body.serial

    def public_key(self) -> RSAPublicKey:
        return public_key_from_dict(self.body.public_key)

    # -- checks ------------------------------------------------------------

    def verify_signature(self, issuer_key: RSAPublicKey) -> bool:
        return verify(issuer_key, self.body.to_dict(), self.signature)

    def is_valid_at(self, when: Timestamp) -> bool:
        return self.body.not_before <= when.epoch <= self.body.not_after

    def require_valid_at(self, when: Timestamp) -> None:
        if when.epoch < self.body.not_before:
            raise CertificateError(f"certificate {self.subject!r} not yet valid")
        if when.epoch > self.body.not_after:
            raise CertificateError(f"certificate {self.subject!r} expired")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"body": self.body.to_dict(), "signature": self.signature}

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        try:
            return cls(body=CertificateBody.from_dict(data["body"]), signature=data["signature"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed certificate: {exc}") from exc


def make_body(
    subject: str,
    issuer: str,
    serial: int,
    public_key: RSAPublicKey,
    not_before: Timestamp,
    lifetime_seconds: float,
    is_ca: bool = False,
    is_proxy: bool = False,
    extensions: Optional[dict] = None,
) -> CertificateBody:
    """Convenience constructor used by the CA and proxy issuance."""
    if lifetime_seconds <= 0:
        raise ValidationError("certificate lifetime must be positive")
    return CertificateBody(
        subject=subject,
        issuer=issuer,
        serial=serial,
        public_key=public_key_to_dict(public_key),
        not_before=not_before.epoch,
        not_after=not_before.epoch + lifetime_seconds,
        is_ca=is_ca,
        is_proxy=is_proxy,
        extensions=extensions or {},
    )
