"""Certificate chain validation.

Validation walks a presented chain leaf-first, checking at every hop:
signature by the next certificate's key, validity window, revocation, and
proxy rules (a proxy must be issued by the certificate it extends and may
not outlive it). The chain must terminate at a trusted CA root held in the
verifier's :class:`CertificateStore`.

Returns the *canonical subject* — for proxy chains this is the user
certificate's subject, so accounting always records the real principal.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.pki.certificate import Certificate
from repro.pki.proxy import PROXY_CN_SUFFIX
from repro.errors import CertificateError
from repro.util.gbtime import Timestamp

__all__ = ["CertificateStore", "validate_chain"]


class CertificateStore:
    """Trust anchors plus an optional revocation view."""

    def __init__(self, roots: Iterable[Certificate] = ()) -> None:
        self._roots: dict[str, Certificate] = {}
        self._revoked: dict[str, set[int]] = {}
        for root in roots:
            self.add_root(root)

    def add_root(self, root: Certificate) -> None:
        if not root.body.is_ca:
            raise CertificateError("trust anchor must be a CA certificate")
        if not root.verify_signature(root.public_key()):
            raise CertificateError("trust anchor is not properly self-signed")
        self._roots[root.subject] = root

    def root_for(self, issuer: str) -> Optional[Certificate]:
        return self._roots.get(issuer)

    def update_crl(self, ca_subject: str, revoked_serials: Iterable[int]) -> None:
        """Install a CA's revocation list snapshot."""
        self._revoked[ca_subject] = set(revoked_serials)

    def is_revoked(self, certificate: Certificate) -> bool:
        return certificate.serial in self._revoked.get(certificate.issuer, ())

    def roots(self) -> list[Certificate]:
        return list(self._roots.values())


def validate_chain(
    chain: list[Certificate],
    store: CertificateStore,
    when: Timestamp,
) -> str:
    """Validate *chain* (leaf first) against *store* at time *when*.

    Returns the canonical subject name (user subject for proxy chains).
    Raises :class:`CertificateError` on any failure.
    """
    if not chain:
        raise CertificateError("empty certificate chain")

    canonical_subject: Optional[str] = None
    for position, cert in enumerate(chain):
        cert.require_valid_at(when)
        if store.is_revoked(cert):
            raise CertificateError(f"certificate {cert.subject!r} is revoked")

        if cert.body.is_proxy:
            if position + 1 >= len(chain):
                raise CertificateError("proxy certificate without its signing certificate")
            signer = chain[position + 1]
            if cert.issuer != signer.subject:
                raise CertificateError("proxy issuer does not match signing certificate")
            if cert.subject != signer.subject + PROXY_CN_SUFFIX:
                raise CertificateError("proxy subject must extend the user subject")
            if cert.body.not_after > signer.body.not_after:
                raise CertificateError("proxy outlives its signing certificate")
            if not cert.verify_signature(signer.public_key()):
                raise CertificateError("proxy signature invalid")
            continue

        # First non-proxy certificate is the canonical principal.
        if canonical_subject is None:
            canonical_subject = cert.subject

        root = store.root_for(cert.issuer)
        if root is not None:
            root.require_valid_at(when)
            if not cert.verify_signature(root.public_key()):
                raise CertificateError(f"certificate {cert.subject!r} not signed by trusted CA")
            return canonical_subject

        # Otherwise the next element must be an intermediate/issuer cert.
        if position + 1 >= len(chain):
            raise CertificateError(f"untrusted issuer {cert.issuer!r}")
        signer = chain[position + 1]
        if signer.subject != cert.issuer or not signer.body.is_ca:
            raise CertificateError(f"broken chain at {cert.subject!r}")
        if not cert.verify_signature(signer.public_key()):
            raise CertificateError(f"signature on {cert.subject!r} invalid")

    raise CertificateError("chain does not terminate at a trusted root")
