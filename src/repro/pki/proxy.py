"""User proxy certificates (single sign-on).

"A user proxy is a certificate signed by the user, which is later used to
repeatedly authenticate the user to resources. This preserves Grid's single
sign-in policy and avoids repeatedly entering user password." (paper sec 1.)

A proxy is a short-lived certificate whose *issuer* is the user and whose
subject is the user's subject with a ``/CN=proxy`` component appended, over
a fresh keypair. Authenticating with a proxy presents the chain
``[proxy, user-cert]``; validation in :mod:`repro.pki.validation` maps the
proxy back to the user's canonical Certificate Name, which is what the bank
records against accounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, generate_keypair
from repro.pki.ca import Identity
from repro.pki.certificate import Certificate, CertificateBody, make_body
from repro.errors import CertificateError
from repro.util.gbtime import Clock, SystemClock

__all__ = ["ProxyCredential", "issue_proxy", "DEFAULT_PROXY_LIFETIME", "proxy_base_subject"]

DEFAULT_PROXY_LIFETIME = 12 * 3600.0  # half a day, like grid-proxy-init
PROXY_CN_SUFFIX = "/CN=proxy"


@dataclass(frozen=True)
class ProxyCredential:
    """A delegated credential: proxy cert + key, plus the signing user cert."""

    proxy_certificate: Certificate
    private_key: RSAPrivateKey
    user_certificate: Certificate

    @property
    def subject(self) -> str:
        """The proxy's own subject (user subject + /CN=proxy)."""
        return self.proxy_certificate.subject

    @property
    def user_subject(self) -> str:
        """The canonical Certificate Name the bank accounts against."""
        return self.user_certificate.subject

    def chain(self) -> list[Certificate]:
        """Certificate chain to present during authentication."""
        return [self.proxy_certificate, self.user_certificate]


def proxy_base_subject(proxy_subject: str) -> str:
    """Strip trailing ``/CN=proxy`` components back to the user subject."""
    base = proxy_subject
    while base.endswith(PROXY_CN_SUFFIX):
        base = base[: -len(PROXY_CN_SUFFIX)]
    return base


def issue_proxy(
    identity: Identity,
    clock: Optional[Clock] = None,
    lifetime_seconds: float = DEFAULT_PROXY_LIFETIME,
    key_bits: int = 512,
    rng: Optional[random.Random] = None,
    keypair: Optional[RSAKeyPair] = None,
) -> ProxyCredential:
    """Create a proxy credential signed by *identity* (grid-proxy-init).

    The proxy lifetime may not outlive the signing certificate.
    """
    now = (clock if clock is not None else SystemClock()).now()
    identity.certificate.require_valid_at(now)
    if identity.certificate.body.is_proxy:
        raise CertificateError("proxies may not issue further proxies in this model")
    if now.epoch + lifetime_seconds > identity.certificate.body.not_after:
        lifetime_seconds = identity.certificate.body.not_after - now.epoch
    kp = keypair if keypair is not None else generate_keypair(
        bits=key_bits, rng=rng if rng is not None else random.Random()
    )
    body: CertificateBody = make_body(
        subject=identity.subject + PROXY_CN_SUFFIX,
        issuer=identity.subject,
        serial=0,
        public_key=kp.public,
        not_before=now,
        lifetime_seconds=lifetime_seconds,
        is_proxy=True,
    )
    cert = Certificate.issue(body, identity.private_key)
    return ProxyCredential(
        proxy_certificate=cert,
        private_key=kp.private,
        user_certificate=identity.certificate,
    )
